//! The data-plane forwarding model.
//!
//! The application experiments (§6.6) send sensor/VR packets through the
//! UPF; a packet forwards only while its UE's session is active. During a
//! handover or a failure-recovery window, packets queue (briefly) or miss
//! their deadline — exactly the effect Figs. 13/14 count.

use crate::session::SessionTable;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;

/// What happened to one data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// Forwarded; carries the data-plane transit delay.
    Forwarded {
        /// When the packet reaches the edge application.
        delivered_at: Instant,
    },
    /// No active session — the packet is held until the control plane
    /// restores connectivity (it will miss its deadline if that takes too
    /// long).
    Blocked,
}

/// Per-UPF data-plane model: constant per-packet forwarding latency over the
/// session table.
#[derive(Debug)]
pub struct DataPlane {
    /// One-way UE→UPF→edge-app transit time when the session is active.
    pub transit: Duration,
}

impl DataPlane {
    /// A data plane with the given transit latency.
    pub fn new(transit: Duration) -> Self {
        DataPlane { transit }
    }

    /// Attempts to forward a packet sent by `ue` at `sent_at`.
    pub fn forward(&self, table: &SessionTable, ue: UeId, sent_at: Instant) -> ForwardOutcome {
        if table.active(ue) {
            ForwardOutcome::Forwarded {
                delivered_at: sent_at + self.transit,
            }
        } else {
            ForwardOutcome::Blocked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::UpfCore;
    use neutrino_common::{CpfId, UpfId};
    use neutrino_messages::sysmsg::{S11Request, SessionOp};

    #[test]
    fn forwards_only_with_active_session() {
        let mut upf = UpfCore::new(UpfId::new(1));
        let dp = DataPlane::new(Duration::from_millis(2));
        let ue = UeId::new(7);
        let t = Instant::from_secs(1);

        assert_eq!(dp.forward(upf.table(), ue, t), ForwardOutcome::Blocked);

        upf.on_s11(S11Request {
            ue,
            cpf: CpfId::new(0),
            op: SessionOp::Create,
            session: None,
        });
        assert_eq!(
            dp.forward(upf.table(), ue, t),
            ForwardOutcome::Forwarded {
                delivered_at: t + Duration::from_millis(2)
            }
        );

        upf.table_mut().release(ue);
        assert_eq!(dp.forward(upf.table(), ue, t), ForwardOutcome::Blocked);
    }
}
