//! Session management: the S11-facing half of the UPF.

use neutrino_common::{CpfId, CtaId, SessionId, UeId, UpfId};
use neutrino_messages::sysmsg::{S11Request, S11Response, SessionOp, SysMsg};
use std::collections::BTreeMap;

/// Lifecycle of one UE's session on the UPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Session exists; bearers active — packets forward.
    Active,
    /// Session exists but bearers are idle (UE released to idle) — downlink
    /// packets would trigger paging; uplink cannot flow.
    Idle,
}

/// One session record.
#[derive(Debug, Clone, Copy)]
pub struct Session {
    /// The session id (deterministic per UE so replays/recoveries agree).
    pub id: SessionId,
    /// The controlling CPF (updated on handover/failover).
    pub cpf: CpfId,
    /// Current state.
    pub state: SessionState,
}

/// UE → session map.
#[derive(Debug, Default)]
pub struct SessionTable {
    sessions: BTreeMap<UeId, Session>,
}

impl SessionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session exists.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Read access.
    pub fn get(&self, ue: UeId) -> Option<&Session> {
        self.sessions.get(&ue)
    }

    /// Iterates all sessions (consistency audits).
    pub fn iter(&self) -> impl Iterator<Item = (&UeId, &Session)> {
        self.sessions.iter()
    }

    /// True when the UE's packets can flow right now.
    pub fn active(&self, ue: UeId) -> bool {
        matches!(
            self.sessions.get(&ue),
            Some(Session {
                state: SessionState::Active,
                ..
            })
        )
    }

    fn create(&mut self, ue: UeId, cpf: CpfId) -> SessionId {
        // Deterministic id: recovery replays and re-creates agree.
        let id = SessionId::new(ue.raw());
        self.sessions.insert(
            ue,
            Session {
                id,
                cpf,
                state: SessionState::Active,
            },
        );
        id
    }

    fn modify(&mut self, ue: UeId, cpf: CpfId) -> Option<SessionId> {
        self.sessions.get_mut(&ue).map(|s| {
            s.state = SessionState::Active;
            s.cpf = cpf;
            s.id
        })
    }

    fn delete(&mut self, ue: UeId) -> Option<SessionId> {
        self.sessions.remove(&ue).map(|s| s.id)
    }

    /// Marks a UE idle (connected→idle transition releases bearers).
    pub fn release(&mut self, ue: UeId) {
        if let Some(s) = self.sessions.get_mut(&ue) {
            s.state = SessionState::Idle;
        }
    }
}

/// What the UPF asks its driver to send.
#[derive(Debug, Clone, PartialEq)]
pub enum UpfOutput {
    /// Reply to the requesting CPF.
    ToCpf {
        /// Destination CPF.
        cpf: CpfId,
        /// Payload.
        msg: SysMsg,
    },
    /// Notify the control plane through the CTA (Downlink Data
    /// Notification — the CTA knows the UE's current primary CPF).
    ToCta {
        /// Destination CTA.
        cta: CtaId,
        /// Payload.
        msg: SysMsg,
    },
    /// A downlink packet reached the UE (session active).
    Delivered {
        /// The UE.
        ue: UeId,
    },
    /// A downlink packet could not be forwarded and no session exists to
    /// even notify about — the §3.1 disruption.
    Undeliverable {
        /// The UE.
        ue: UeId,
    },
}

/// The UPF's S11 state machine.
#[derive(Debug)]
pub struct UpfCore {
    id: UpfId,
    table: SessionTable,
    /// The CTA that fronts this UPF's region (DDN routing).
    cta: CtaId,
    /// `SysMsg` variants delivered here that the flow contract says a UPF
    /// never receives (misrouted traffic — counted, never silently
    /// swallowed).
    unexpected_msgs: u64,
}

impl UpfCore {
    /// Creates a UPF (DDNs route via CTA 0 unless overridden).
    pub fn new(id: UpfId) -> Self {
        Self::with_cta(id, CtaId::new(0))
    }

    /// Creates a UPF fronted by a specific CTA.
    pub fn with_cta(id: UpfId, cta: CtaId) -> Self {
        UpfCore {
            id,
            table: SessionTable::new(),
            cta,
            unexpected_msgs: 0,
        }
    }

    /// Misrouted `SysMsg`s this UPF has received (see `handle`).
    pub fn unexpected_msgs(&self) -> u64 {
        self.unexpected_msgs
    }

    /// Handles a downlink packet for `ue`: forwarded while the session is
    /// active; an idle session triggers a Downlink Data Notification so the
    /// control plane pages the UE; no session at all means the core cannot
    /// reach the UE (§3.1's inconsistency disruption).
    pub fn on_downlink_data(&mut self, ue: UeId) -> Vec<UpfOutput> {
        match self.table.get(ue) {
            Some(Session {
                state: SessionState::Active,
                ..
            }) => vec![UpfOutput::Delivered { ue }],
            Some(_) => vec![UpfOutput::ToCta {
                cta: self.cta,
                msg: SysMsg::DdnRequest { ue, upf: self.id },
            }],
            None => vec![UpfOutput::Undeliverable { ue }],
        }
    }

    /// This UPF's id.
    pub fn id(&self) -> UpfId {
        self.id
    }

    /// The session table (the data plane reads it).
    pub fn table(&self) -> &SessionTable {
        &self.table
    }

    /// Mutable access to the session table (the data-plane driver marks
    /// idle transitions).
    pub fn table_mut(&mut self) -> &mut SessionTable {
        &mut self.table
    }

    /// Handles an S11 request.
    pub fn on_s11(&mut self, req: S11Request) -> Vec<UpfOutput> {
        let (session, ok) = match req.op {
            SessionOp::Create => (Some(self.table.create(req.ue, req.cpf)), true),
            SessionOp::Modify => match self.table.modify(req.ue, req.cpf) {
                Some(id) => (Some(id), true),
                None => (None, false),
            },
            SessionOp::Delete => (self.table.delete(req.ue), true),
        };
        vec![UpfOutput::ToCpf {
            cpf: req.cpf,
            msg: SysMsg::S11Resp(S11Response {
                ue: req.ue,
                op: req.op,
                upf: self.id,
                session,
                ok,
            }),
        }]
    }

    /// Handles any system message addressed to this UPF.
    pub fn handle(&mut self, msg: SysMsg) -> Vec<UpfOutput> {
        match msg {
            SysMsg::S11(req) => self.on_s11(req),
            SysMsg::DownlinkData { ue } => self.on_downlink_data(ue),
            // lint-allow(flow-wildcard): counted — a misrouted SysMsg increments unexpected_msgs instead of vanishing
            _ => {
                self.unexpected_msgs += 1;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(ue: u64, op: SessionOp) -> S11Request {
        S11Request {
            ue: UeId::new(ue),
            cpf: CpfId::new(3),
            op,
            session: None,
        }
    }

    #[test]
    fn create_modify_delete_lifecycle() {
        let mut upf = UpfCore::new(UpfId::new(1));
        let outs = upf.on_s11(req(7, SessionOp::Create));
        let resp = match &outs[0] {
            UpfOutput::ToCpf {
                msg: SysMsg::S11Resp(r),
                ..
            } => *r,
            other => panic!("unexpected {other:?}"),
        };
        assert!(resp.ok);
        assert_eq!(resp.session, Some(SessionId::new(7)));
        assert!(upf.table().active(UeId::new(7)));

        upf.table_mut().release(UeId::new(7));
        assert!(!upf.table().active(UeId::new(7)));

        let outs = upf.on_s11(req(7, SessionOp::Modify));
        assert!(matches!(
            &outs[0],
            UpfOutput::ToCpf { msg: SysMsg::S11Resp(r), .. } if r.ok
        ));
        assert!(upf.table().active(UeId::new(7)));

        upf.on_s11(req(7, SessionOp::Delete));
        assert!(upf.table().get(UeId::new(7)).is_none());
    }

    #[test]
    fn modify_without_session_fails() {
        let mut upf = UpfCore::new(UpfId::new(1));
        let outs = upf.on_s11(req(9, SessionOp::Modify));
        assert!(matches!(
            &outs[0],
            UpfOutput::ToCpf { msg: SysMsg::S11Resp(r), .. } if !r.ok
        ));
    }

    #[test]
    fn session_ids_are_deterministic() {
        let mut a = UpfCore::new(UpfId::new(1));
        let mut b = UpfCore::new(UpfId::new(2));
        a.on_s11(req(42, SessionOp::Create));
        b.on_s11(req(42, SessionOp::Create));
        assert_eq!(
            a.table().get(UeId::new(42)).unwrap().id,
            b.table().get(UeId::new(42)).unwrap().id,
        );
    }

    #[test]
    fn delete_is_idempotent() {
        let mut upf = UpfCore::new(UpfId::new(1));
        upf.on_s11(req(7, SessionOp::Create));
        upf.on_s11(req(7, SessionOp::Delete));
        let outs = upf.on_s11(req(7, SessionOp::Delete));
        assert!(matches!(
            &outs[0],
            UpfOutput::ToCpf { msg: SysMsg::S11Resp(r), .. } if r.ok && r.session.is_none()
        ));
    }

    #[test]
    fn misrouted_sysmsg_is_counted_not_swallowed() {
        let mut upf = UpfCore::new(UpfId::new(1));
        // A UPF only ever receives S11 and DownlinkData; anything else is a
        // routing bug and must be observable.
        let outs = upf.handle(SysMsg::AskReAttach { ue: UeId::new(7) });
        assert!(outs.is_empty());
        assert_eq!(upf.unexpected_msgs(), 1);
    }
}
