//! The User Plane Function (UPF) substrate.
//!
//! The paper interfaces Intel's 5G UPF with Neutrino over S11 (§6.6); this
//! crate is the from-scratch stand-in: a session/bearer manager answering
//! S11 requests, plus a data-plane forwarding model the edge-application
//! experiments (self-driving car, VR) drive packets through. A packet can be
//! forwarded only while its UE's session exists and its bearers are active —
//! which is exactly what makes control-plane delays visible to applications.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod dataplane;
pub mod session;

pub use dataplane::{DataPlane, ForwardOutcome};
pub use session::{SessionState, SessionTable, UpfCore, UpfOutput};
