//! Statistics collection for the experiment harness.
//!
//! Two collectors cover everything the paper's figures need:
//!
//! * [`OnlineStats`] — constant-memory mean/variance/min/max (Welford).
//! * [`Percentiles`] — an exact percentile summary that keeps every sample.
//!   The paper reports box plots (median, quartiles, whiskers) of procedure
//!   completion times; runs here produce at most a few million samples, so
//!   exact collection is affordable and avoids sketch error in the figures.

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Streaming mean/variance/min/max using Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (unbiased; 0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile summary over all pushed samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

/// The box-plot shaped summary the paper's figures report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl Percentiles {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds a virtual-time duration, recorded in milliseconds (the unit all
    /// PCT figures use).
    pub fn push_duration_ms(&mut self, d: Duration) {
        self.push(d.as_millis_f64());
    }

    /// Number of samples collected.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    /// Returns `NaN` when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q.clamp(0.0, 1.0)) * n as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(n - 1)]
    }

    /// Median shortcut.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Produces the full box-plot summary.
    pub fn summary(&mut self) -> Summary {
        if self.samples.is_empty() {
            return Summary {
                count: 0,
                min: f64::NAN,
                p25: f64::NAN,
                p50: f64::NAN,
                p75: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        self.ensure_sorted();
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        Summary {
            count: self.count(),
            min: self.samples[0],
            p25: self.quantile(0.25),
            p50: self.quantile(0.50),
            p75: self.quantile(0.75),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: *self.samples.last().expect("non-empty"),
            mean,
        }
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl Summary {
    /// Formats the summary as the row layout used by the `repro` harness.
    pub fn row(&self) -> String {
        format!(
            "n={:<8} min={:<10.4} p25={:<10.4} p50={:<10.4} p75={:<10.4} p95={:<10.4} p99={:<10.4} max={:<10.4}",
            self.count, self.min, self.p25, self.p50, self.p75, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.5), 50.0);
        assert_eq!(p.quantile(0.95), 95.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 100.0);
    }

    #[test]
    fn percentiles_empty_is_nan() {
        let mut p = Percentiles::new();
        assert!(p.median().is_nan());
        assert_eq!(p.summary().count, 0);
    }

    #[test]
    fn percentiles_merge() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        for x in 1..=50 {
            a.push(x as f64);
        }
        for x in 51..=100 {
            b.push(x as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.median(), 50.0);
    }

    #[test]
    fn push_duration_records_millis() {
        let mut p = Percentiles::new();
        p.push_duration_ms(Duration::from_micros(1500));
        assert!((p.median() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_is_ordered() {
        let mut p = Percentiles::new();
        let mut rng_state = 12345u64;
        for _ in 0..1000 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.push((rng_state >> 20) as f64);
        }
        let s = p.summary();
        assert!(s.min <= s.p25 && s.p25 <= s.p50);
        assert!(s.p50 <= s.p75 && s.p75 <= s.p95);
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
    }
}
