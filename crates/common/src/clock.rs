//! The CTA's logical clock (§4.2.3 of the paper).
//!
//! On receiving each control message the CTA "associates with it a logical
//! clock (for tracking all messages and keeping those in order)". The clock
//! is a per-CTA monotone counter; ticks are totally ordered within a CTA and
//! used to (a) order the in-memory message log, (b) identify the last message
//! of a procedure when checkpointing state to replicas, and (c) let replicas
//! discard stale state updates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single tick of a CTA's logical clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ClockTick(pub u64);

impl ClockTick {
    /// The tick value meaning "no message has been stamped yet".
    pub const ZERO: ClockTick = ClockTick(0);

    /// Raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ClockTick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lc:{}", self.0)
    }
}

impl fmt::Display for ClockTick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lc:{}", self.0)
    }
}

/// A monotone logical clock. One instance lives inside each CTA.
///
/// The clock also implements the *merge* rule of a Lamport clock
/// ([`LogicalClock::observe`]) so that a CTA taking over traffic from a
/// failed CTA can stamp messages strictly after anything the old CTA issued
/// (learned from replica state), even though the paper's base protocol only
/// requires per-CTA monotonicity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogicalClock {
    current: u64,
}

impl LogicalClock {
    /// A fresh clock that will issue `lc:1` first.
    pub fn new() -> Self {
        Self { current: 0 }
    }

    /// Issues the next tick. Strictly greater than every tick issued or
    /// observed before.
    pub fn tick(&mut self) -> ClockTick {
        self.current += 1;
        ClockTick(self.current)
    }

    /// Folds in a tick observed from elsewhere (Lamport merge): subsequent
    /// ticks will be strictly greater than `observed`.
    pub fn observe(&mut self, observed: ClockTick) {
        self.current = self.current.max(observed.0);
    }

    /// The most recent tick issued (or [`ClockTick::ZERO`] if none yet).
    pub fn latest(&self) -> ClockTick {
        ClockTick(self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_strictly_increase() {
        let mut c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(a, ClockTick(1));
    }

    #[test]
    fn observe_jumps_forward() {
        let mut c = LogicalClock::new();
        c.tick();
        c.observe(ClockTick(100));
        assert_eq!(c.tick(), ClockTick(101));
    }

    #[test]
    fn observe_never_goes_backward() {
        let mut c = LogicalClock::new();
        for _ in 0..10 {
            c.tick();
        }
        c.observe(ClockTick(3));
        assert_eq!(c.tick(), ClockTick(11));
    }

    #[test]
    fn latest_reflects_last_tick() {
        let mut c = LogicalClock::new();
        assert_eq!(c.latest(), ClockTick::ZERO);
        let t = c.tick();
        assert_eq!(c.latest(), t);
    }
}
