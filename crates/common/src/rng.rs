//! Deterministic random sampling used by the traffic generator and the
//! simulator.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so the
//! distributions the evaluation needs — exponential inter-arrivals for
//! uniform(-rate) Poisson traffic, Poisson counts, Zipf popularity for UE
//! activity skew, and bounded Pareto for heavy-tailed think times — are
//! implemented here from `rand` primitives using standard inversion /
//! rejection methods.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace's standard deterministic RNG from a seed.
///
/// All experiments accept a seed and derive every random stream from it, so
/// any figure in EXPERIMENTS.md can be regenerated bit-for-bit.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used to give each simulated entity (UE population, failure injector, link
/// jitter) its own stream so adding events to one stream does not perturb
/// another — a standard variance-reduction practice in simulation.
pub fn substream(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Samples an exponential variate with the given rate (events per unit time).
///
/// Inversion method: `-ln(U)/rate`. Returns `f64::INFINITY` for a zero rate.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Samples a Poisson count with the given mean.
///
/// Knuth's product method for small means; normal approximation (rounded,
/// clamped at zero) for large means where the product method would need too
/// many uniforms.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = 1.0;
        let mut count = 0u64;
        loop {
            product *= rng.gen_range(0.0f64..1.0);
            if product <= limit {
                return count;
            }
            count += 1;
        }
    } else {
        let normal = standard_normal(rng);
        let v = mean + mean.sqrt() * normal;
        v.round().max(0.0) as u64
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples from a bounded Pareto distribution on `[lo, hi]` with shape
/// `alpha`, via inversion. Heavy-tailed think/dwell times in the mobility
/// model use this.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(alpha > 0.0 && lo > 0.0 && hi > lo, "invalid pareto params");
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF of the truncated Pareto.
    (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, used to skew per-UE
/// activity (a few chatty devices, many quiet ones).
///
/// Precomputes the CDF once (O(n) memory) and samples by binary search
/// (O(log n) per draw) — the populations here are ≤ a few million, which fits
/// comfortably.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is only the degenerate single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0-based; rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream(7, "arrivals");
        let mut b = substream(7, "failures");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = seeded(1);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut rng = seeded(1);
        assert!(exponential(&mut rng, 0.0).is_infinite());
    }

    #[test]
    fn poisson_mean_close_small_and_large() {
        let mut rng = seeded(2);
        for mean in [0.5, 5.0, 80.0] {
            let n = 20_000;
            let avg: f64 = (0..n).map(|_| poisson(&mut rng, mean) as f64).sum::<f64>() / n as f64;
            assert!(
                (avg - mean).abs() / mean.max(1.0) < 0.05,
                "mean {mean}: got {avg}"
            );
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = seeded(3);
        for _ in 0..10_000 {
            let v = bounded_pareto(&mut rng, 1.2, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = seeded(4);
        let z = Zipf::new(1000, 1.0);
        let mut count0 = 0;
        let mut count500 = 0;
        for _ in 0..50_000 {
            match z.sample(&mut rng) {
                0 => count0 += 1,
                500 => count500 += 1,
                _ => {}
            }
        }
        assert!(
            count0 > count500 * 10,
            "rank 0: {count0}, rank 500: {count500}"
        );
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = seeded(5);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "count {c}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
