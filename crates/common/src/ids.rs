//! Strongly-typed identifiers for cellular core entities.
//!
//! Every entity in the system gets its own newtype so that a CPF id can never
//! be confused with a CTA id at a call site. All ids are `Copy`, ordered, and
//! hashable so they can key maps and sort deterministically in the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw numeric identifier.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// International Mobile Subscriber Identity — the permanent identity of a
    /// subscriber. Used only during initial attach; afterwards the network
    /// refers to the UE by its [`Tmsi`].
    Imsi,
    "imsi-"
);

id_type!(
    /// MME Temporary Mobile Subscriber Identity (M-TMSI).
    ///
    /// The paper (§4.3, footnote 15) keys the consistent hash rings on the
    /// M-TMSI when the UE is idle and on the S1AP UE id when active, and has
    /// the CTA assign both the same value at initial attach — we therefore
    /// use a single [`UeId`] for hashing and keep `Tmsi` as the NAS-visible
    /// temporary identity.
    Tmsi,
    "tmsi-"
);

id_type!(
    /// The network-internal identity a CTA uses to route a UE's control
    /// traffic. Assigned at initial attach; equal-valued with the S1AP UE id
    /// as in the paper.
    UeId,
    "ue-"
);

id_type!(
    /// A base station (eNodeB / gNB).
    BsId,
    "bs-"
);

id_type!(
    /// A Control Traffic Aggregator node.
    CtaId,
    "cta-"
);

id_type!(
    /// A Control Plane Function instance (the re-architected MME / AMF+SMF).
    CpfId,
    "cpf-"
);

id_type!(
    /// A User Plane Function instance.
    UpfId,
    "upf-"
);

id_type!(
    /// A data session (PDN connection) on a UPF.
    SessionId,
    "sess-"
);

id_type!(
    /// A bearer within a session (E-RAB).
    BearerId,
    "bearer-"
);

id_type!(
    /// A level-1 location region (tracking/registration area analogue).
    RegionId,
    "region-"
);

/// Identifies one run of a control procedure for one UE.
///
/// Procedure ids are unique per UE and monotonically increasing, so
/// `(UeId, ProcedureId)` names a unique procedure execution across the whole
/// deployment. The CTA uses them to group logged messages into procedures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcedureId(pub u64);

impl ProcedureId {
    /// The first procedure a UE ever runs (its initial attach).
    pub const FIRST: ProcedureId = ProcedureId(1);

    /// Wraps a raw procedure sequence number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The procedure that follows this one for the same UE.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Debug for ProcedureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc-{}", self.0)
    }
}

impl fmt::Display for ProcedureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_do_not_cross_types() {
        // Compile-time property really, but assert the basic contracts.
        let a = CpfId::new(3);
        let b = CtaId::new(3);
        assert_eq!(a.raw(), b.raw());
        assert_eq!(format!("{a}"), "cpf-3");
        assert_eq!(format!("{b}"), "cta-3");
    }

    #[test]
    fn ids_order_and_hash() {
        let mut set = HashSet::new();
        for i in 0..100 {
            set.insert(UeId::new(i));
        }
        assert_eq!(set.len(), 100);
        assert!(UeId::new(1) < UeId::new(2));
    }

    #[test]
    fn procedure_id_advances() {
        let p = ProcedureId::FIRST;
        assert_eq!(p.next().raw(), 2);
        assert_eq!(p.next().next(), ProcedureId::new(3));
    }

    #[test]
    fn display_matches_debug() {
        let u = UeId::new(42);
        assert_eq!(format!("{u}"), format!("{u:?}"));
    }
}
