//! Shared foundation types for the Neutrino reproduction.
//!
//! This crate holds everything that more than one subsystem needs and that
//! carries no protocol logic of its own:
//!
//! * [`ids`] — strongly-typed identifiers for every entity in the cellular
//!   core (UEs, base stations, CTAs, CPFs, UPFs, sessions, procedures).
//! * [`time`] — a virtual time representation shared by the discrete-event
//!   simulator and the protocol state machines (sans-IO cores never read a
//!   wall clock; time is always handed to them).
//! * [`clock`] — the logical clock the CTA stamps onto every control message
//!   (§4.2.3 of the paper).
//! * [`error`] — the common error type.
//! * [`rng`] — deterministic random sampling (exponential, Poisson, Zipf,
//!   bounded Pareto) built on `rand` primitives.
//! * [`stats`] — streaming statistics and percentile summaries used by the
//!   experiment harness.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::LogicalClock;
pub use error::{Error, Result};
pub use ids::{
    BearerId, BsId, CpfId, CtaId, Imsi, ProcedureId, RegionId, SessionId, Tmsi, UeId, UpfId,
};
pub use time::{Duration, Instant};
