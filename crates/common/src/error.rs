//! The workspace-wide error type.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the Neutrino reproduction.
///
/// Protocol state machines are written so that *expected* protocol events
/// (e.g. "UE must re-attach") are modeled as ordinary outputs, not errors;
/// `Error` is reserved for genuine misuse or corruption (unknown ids,
/// malformed wire bytes, schema violations, exhausted resources).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Wire bytes could not be decoded under the selected codec.
    Codec {
        /// Codec that rejected the input (e.g. `"asn1-per"`).
        codec: &'static str,
        /// Human-readable cause.
        detail: String,
    },
    /// A value violated the schema it was encoded or validated against.
    Schema(String),
    /// An identifier was not known to the component that received it.
    UnknownId(String),
    /// An operation arrived in a state where it is not legal.
    InvalidState(String),
    /// A resource limit (queue depth, log size, ring capacity) was exceeded.
    Exhausted(String),
    /// A configuration value is inconsistent or out of range.
    Config(String),
    /// An I/O error from a real-time driver, captured as a string so the
    /// error type stays `Clone + Eq`.
    Io(String),
}

impl Error {
    /// Constructs a codec error.
    pub fn codec(codec: &'static str, detail: impl Into<String>) -> Self {
        Error::Codec {
            codec,
            detail: detail.into(),
        }
    }

    /// Constructs a schema violation error.
    pub fn schema(detail: impl Into<String>) -> Self {
        Error::Schema(detail.into())
    }

    /// Constructs an unknown-identifier error.
    pub fn unknown_id(detail: impl Into<String>) -> Self {
        Error::UnknownId(detail.into())
    }

    /// Constructs an invalid-state error.
    pub fn invalid_state(detail: impl Into<String>) -> Self {
        Error::InvalidState(detail.into())
    }

    /// Constructs a resource-exhaustion error.
    pub fn exhausted(detail: impl Into<String>) -> Self {
        Error::Exhausted(detail.into())
    }

    /// Constructs a configuration error.
    pub fn config(detail: impl Into<String>) -> Self {
        Error::Config(detail.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec { codec, detail } => write!(f, "codec error ({codec}): {detail}"),
            Error::Schema(d) => write!(f, "schema violation: {d}"),
            Error::UnknownId(d) => write!(f, "unknown identifier: {d}"),
            Error::InvalidState(d) => write!(f, "invalid state: {d}"),
            Error::Exhausted(d) => write!(f, "resource exhausted: {d}"),
            Error::Config(d) => write!(f, "configuration error: {d}"),
            Error::Io(d) => write!(f, "i/o error: {d}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::codec("asn1-per", "length determinant overflow");
        assert_eq!(
            e.to_string(),
            "codec error (asn1-per): length determinant overflow"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
