//! Virtual time for the sans-IO protocol cores and the discrete-event engine.
//!
//! Protocol state machines never read a wall clock. Every entry point takes a
//! `now: Instant` handed in by the driver — either the simulator's virtual
//! clock or a real-time driver's monotonic clock mapped to the same type.
//! Nanosecond resolution in a `u64` covers ~584 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Instant(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Instant {
    /// The origin of the simulation clock.
    pub const ZERO: Instant = Instant(0);

    /// A time later than any event a simulation will schedule; used as a
    /// sentinel for "never".
    pub const FAR_FUTURE: Instant = Instant(u64::MAX);

    /// Constructs an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Constructs an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// Constructs an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Instant(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the origin expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time since the origin expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` if the result would overflow.
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.0).map(Instant)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds, saturating at zero for
    /// negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Constructs a span from fractional microseconds, saturating at zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Duration((us.max(0.0) * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul_u64(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }

    /// Scales the span by a floating point factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, d: Duration) -> Instant {
        Instant(self.0 - d.0)
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, other: Duration) {
        self.0 -= other.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t0 = Instant::from_millis(5);
        let t1 = t0 + Duration::from_micros(250);
        assert_eq!((t1 - t0).as_micros_f64(), 250.0);
        assert_eq!(t1.as_nanos(), 5_250_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Instant::from_secs(1);
        let late = Instant::from_secs(2);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_secs(1));
    }

    #[test]
    fn conversions_match_units() {
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
        assert_eq!(Duration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn std_duration_round_trip() {
        let d = Duration::from_micros(123);
        let s: std::time::Duration = d.into();
        assert_eq!(Duration::from(s), d);
    }

    #[test]
    fn debug_picks_sensible_unit() {
        assert_eq!(format!("{:?}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{:?}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{:?}", Duration::from_secs(12)), "12.000s");
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_micros).sum();
        assert_eq!(total, Duration::from_micros(10));
    }
}
