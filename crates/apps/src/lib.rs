//! Edge application models (§6.6).
//!
//! The paper measures how control-plane latency reaches applications:
//! a CARLA-driven self-driving car streaming 1 kHz sensor data with ~100 ms
//! decision deadlines, a head-tracked VR stream with a 16 ms perceptual
//! budget, and stationary UEs starting video/web sessions (whose startup
//! latency is a function of the service-request PCT, with content served
//! from local replicas to exclude network variation).
//!
//! We reduce each application to what the paper itself measures:
//!
//! * [`deadline`] — given the data-access interruption windows a UE
//!   experienced (from the simulator's probe records) and a packet stream
//!   (rate + deadline budget), count the packets that miss their deadline.
//!   Packets sent during an interruption are buffered and delivered when
//!   connectivity returns — late by the remaining window length.
//! * [`experiments`] — end-to-end runs: the Fig. 12 drive with background
//!   signaling load (Figs. 13/14), and the idle-UE application-startup
//!   experiment (Fig. 3).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod deadline;
pub mod experiments;

pub use deadline::{missed_deadlines, StreamParams};
pub use experiments::{drive_experiment, startup_experiment, DriveOutcome, StartupOutcome};
