//! The §6.6 application experiments, end to end.

use crate::deadline::{missed_deadlines, StreamParams};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::experiment::{run_experiment, ExperimentSpec};
use neutrino_core::{ProcedureWindow, SystemConfig, Workload};
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{DriveModel, DriveParams};

/// Radio-layer interruption added to every handover's control window: RRC
/// re-establishment, random access at the target cell, and the user-plane
/// path switch. Control-plane latency (what the systems differ in) comes on
/// top of this floor; §2.2 reports total handover data-access gaps of up to
/// 1.9 s in deployed networks.
pub const RADIO_PATH_SWITCH_GAP: Duration = Duration::from_millis(150);

/// Per-active-user signaling rate used to turn the figures' "active users"
/// x-axis into background control load: one procedure every 5 s per user —
/// denser than the 106.9 s session-request mean because *active* users also
/// generate TAU, paging-response and handover signaling (§2.2), and chosen
/// so the x-axis's top (500K users = 100K proc/s) crosses the EPC's
/// saturation knee, as the paper's growing miss counts imply.
pub const PER_USER_SIGNALING_HZ: f64 = 1.0 / 5.0;

/// Result of one drive run.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// Packets that missed their deadline during the simulated drive.
    pub missed: u64,
    /// Handovers the probe executed.
    pub handovers: usize,
    /// Missed packets extrapolated to the paper's full 5-minute drive
    /// (misses per handover × the full drive's handover count).
    pub missed_full_drive: u64,
    /// The probe's raw interruption windows (control-plane part).
    pub windows: Vec<ProcedureWindow>,
}

/// Merges two time-ordered workloads.
fn merge(a: Workload, b: Workload) -> Workload {
    let mut a = a.into_arrivals().peekable();
    let mut b = b.into_arrivals().peekable();
    Workload::new(std::iter::from_fn(move || match (a.peek(), b.peek()) {
        (Some(x), Some(y)) => {
            if x.at <= y.at {
                a.next()
            } else {
                b.next()
            }
        }
        (Some(_), None) => a.next(),
        (None, Some(_)) => b.next(),
        (None, None) => None,
    }))
}

/// Runs the Fig. 13/14 drive: a probe UE performs the Fig. 12 drive while
/// `active_users` generate background signaling; returns deadline misses
/// for a stream with the given rate and budget.
pub fn drive_experiment(
    config: SystemConfig,
    active_users: u64,
    single_handover: bool,
    stream_rate_hz: u64,
    deadline: Duration,
) -> DriveOutcome {
    // A shortened drive keeps simulation affordable; results extrapolate
    // per-handover to the full 5-minute drive.
    let sim_drive = DriveParams {
        duration: if single_handover {
            Duration::from_secs(30)
        } else {
            Duration::from_secs(80)
        },
        start: Instant::from_millis(500),
        ..DriveParams::default()
    };
    let full_drive = DriveModel::new(DriveParams::default());
    let model = DriveModel::new(sim_drive);
    let probe = UeId::new(1_000_000_007); // outside the background pool
    let probe_workload = model.workload(probe, single_handover);

    // Background signaling proportional to the active-user count.
    let bg_rate = ((active_users as f64 * PER_USER_SIGNALING_HZ) as u64).max(100);
    let horizon = sim_drive.duration + Duration::from_secs(1);
    let pool = neutrino_trafficgen::UniformParams::pool_for_rate(bg_rate);
    let (background, _) = neutrino_trafficgen::uniform_with_pool(
        neutrino_trafficgen::UniformParams {
            rate_pps: bg_rate,
            duration: horizon,
            kind: ProcedureKind::ServiceRequest,
            ues: pool,
            first_ue: 0,
            start: Instant::ZERO,
        },
        50_000,
    );

    let mut spec = ExperimentSpec::new(config, merge(background, probe_workload));
    spec.uecfg.record_windows_for.insert(probe);
    spec.uecfg.pct_sample_every = 64; // PCTs are not the output here
    spec.horizon = horizon + Duration::from_secs(2);
    let results = run_experiment(spec);

    // Handover interruptions: the control window plus the radio-layer gap.
    let windows: Vec<ProcedureWindow> = results
        .windows
        .iter()
        .filter(|w| {
            w.ue == probe
                && matches!(
                    w.kind,
                    ProcedureKind::HandoverWithCpfChange | ProcedureKind::FastHandover
                )
        })
        .map(|w| ProcedureWindow {
            end: w.end + RADIO_PATH_SWITCH_GAP,
            ..*w
        })
        .collect();
    let stream = StreamParams {
        rate_hz: stream_rate_hz,
        deadline,
        transit: Duration::from_millis(2),
        start: Instant::ZERO,
        end: Instant::ZERO + horizon,
    };
    let missed = missed_deadlines(stream, &windows);
    let handovers = windows.len();
    let full_hos = if single_handover {
        1
    } else {
        full_drive.handover_count()
    };
    let missed_full_drive = if handovers == 0 {
        0
    } else {
        missed / handovers as u64 * full_hos as u64
    };
    DriveOutcome {
        missed,
        handovers,
        missed_full_drive,
        windows,
    }
}

/// Result of the Fig. 3 startup experiment.
#[derive(Debug, Clone, Copy)]
pub struct StartupOutcome {
    /// Median service-request PCT (ms).
    pub service_request_pct_ms: f64,
    /// Median video startup delay (ms): PCT + local manifest/first-segment
    /// fetch (content replayed from a local server, §6.6).
    pub video_startup_ms: f64,
    /// Median page load time (ms): PCT + the average locally-replayed
    /// top-10-Alexa page time.
    pub page_load_ms: f64,
}

/// Local-replay content constants (network variation excluded, §6.6).
pub const VIDEO_FETCH_MS: f64 = 20.0;
/// Average locally-replayed page render+fetch time.
pub const PAGE_FETCH_MS: f64 = 1_800.0;

/// Runs the Fig. 3 experiment: idle UEs start an application (one service
/// request each) while the control plane serves `rate_pps` of such
/// activations per second.
pub fn startup_experiment(config: SystemConfig, rate_pps: u64) -> StartupOutcome {
    let pool = neutrino_trafficgen::UniformParams::pool_for_rate(rate_pps);
    let (workload, _) = neutrino_trafficgen::uniform_with_pool(
        neutrino_trafficgen::UniformParams {
            rate_pps,
            duration: Duration::from_secs(2),
            kind: ProcedureKind::ServiceRequest,
            ues: pool,
            first_ue: 0,
            start: Instant::ZERO,
        },
        50_000,
    );
    let mut spec = ExperimentSpec::new(config, workload);
    spec.uecfg.pct_sample_every = 4;
    spec.horizon = Duration::from_secs(60);
    let mut results = run_experiment(spec);
    let pct = results.summary(ProcedureKind::ServiceRequest).p50;
    StartupOutcome {
        service_request_pct_ms: pct,
        video_startup_ms: pct + VIDEO_FETCH_MS,
        page_load_ms: pct + PAGE_FETCH_MS,
    }
}

/// Convenience used by tests and the harness: background-free single
/// handover windows for a config.
pub fn probe_handover_window_ms(config: SystemConfig) -> f64 {
    let outcome = drive_experiment(config, 1_000, true, 1_000, Duration::from_millis(100));
    outcome
        .windows
        .first()
        .map(|w| {
            w.end.saturating_since(w.start).as_millis_f64() - RADIO_PATH_SWITCH_GAP.as_millis_f64()
        })
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_single_handover_produces_one_window() {
        let o = drive_experiment(
            SystemConfig::neutrino(),
            2_000,
            true,
            1_000,
            Duration::from_millis(100),
        );
        assert_eq!(o.handovers, 1, "windows: {:?}", o.windows);
        // 150 ms radio gap − 98 ms slack ⇒ ≥ ~50 ms of 1 kHz misses.
        assert!(o.missed >= 40, "missed {}", o.missed);
    }

    #[test]
    fn epc_misses_more_than_neutrino() {
        let run = |c: SystemConfig| {
            drive_experiment(c, 20_000, true, 1_000, Duration::from_millis(100)).missed
        };
        let epc = run(SystemConfig::existing_epc());
        let neutrino = run(SystemConfig::neutrino());
        assert!(
            epc > neutrino,
            "EPC ({epc}) must miss more than Neutrino ({neutrino})"
        );
    }

    #[test]
    fn vr_budget_misses_more_than_car_budget() {
        let car = drive_experiment(
            SystemConfig::existing_epc(),
            5_000,
            true,
            1_000,
            Duration::from_millis(100),
        );
        let vr = drive_experiment(
            SystemConfig::existing_epc(),
            5_000,
            true,
            1_000,
            Duration::from_millis(16),
        );
        assert!(vr.missed > car.missed);
    }

    #[test]
    fn startup_outcome_orders_by_system() {
        let epc = startup_experiment(SystemConfig::existing_epc(), 10_000);
        let neu = startup_experiment(SystemConfig::neutrino(), 10_000);
        assert!(epc.service_request_pct_ms > neu.service_request_pct_ms);
        assert!(epc.video_startup_ms > neu.video_startup_ms);
        assert!(epc.page_load_ms > neu.page_load_ms);
        // PLT is fetch-dominated at this load; video is PCT-sensitive.
        let video_ratio = epc.video_startup_ms / neu.video_startup_ms;
        let plt_ratio = epc.page_load_ms / neu.page_load_ms;
        assert!(video_ratio > plt_ratio);
    }
}
