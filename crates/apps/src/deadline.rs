//! Deadline accounting for periodic data streams over interruption windows.

use neutrino_common::time::{Duration, Instant};
use neutrino_core::ProcedureWindow;

/// A periodic application stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Packets per second (the car streams sensors at 1 kHz).
    pub rate_hz: u64,
    /// Per-packet deadline budget (100 ms for driving decisions \[55\],
    /// 16 ms for perceptual stability in VR \[53\]).
    pub deadline: Duration,
    /// Data-plane transit when connectivity is up.
    pub transit: Duration,
    /// Stream start.
    pub start: Instant,
    /// Stream end.
    pub end: Instant,
}

impl StreamParams {
    /// Total packets the stream emits.
    pub fn total_packets(&self) -> u64 {
        (self.end.saturating_since(self.start).as_secs_f64() * self.rate_hz as f64) as u64
    }
}

/// Counts packets that miss their deadline given the UE's data-access
/// interruption windows.
///
/// A packet sent at `t` inside an interruption `[s, e)` is buffered and
/// delivered at `e + transit`: it misses when `e - t + transit > deadline`.
/// A packet sent outside every window is late only if `transit > deadline`.
pub fn missed_deadlines(stream: StreamParams, windows: &[ProcedureWindow]) -> u64 {
    if stream.transit > stream.deadline {
        return stream.total_packets();
    }
    let slack = stream.deadline - stream.transit;
    let period_ns = 1_000_000_000u64 / stream.rate_hz.max(1);
    let mut missed = 0u64;
    for w in windows {
        let (s, e) = (w.start.max(stream.start), w.end.min(stream.end));
        if e <= s {
            continue;
        }
        // Packets in [s, e) with e - t > slack ⇔ t < e - slack.
        let late_until = if e.saturating_since(s) > slack {
            e - slack
        } else {
            continue;
        };
        // Count emission instants in [s, late_until): the k-th packet fires
        // at start + k·period.
        let first_k = s
            .saturating_since(stream.start)
            .as_nanos()
            .div_ceil(period_ns);
        let end_k = late_until
            .saturating_since(stream.start)
            .as_nanos()
            .div_ceil(period_ns);
        missed += end_k.saturating_sub(first_k);
    }
    missed
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::UeId;
    use neutrino_messages::procedures::ProcedureKind;

    fn window(start_ms: u64, end_ms: u64) -> ProcedureWindow {
        ProcedureWindow {
            ue: UeId::new(1),
            procedure: neutrino_common::ProcedureId::new(1),
            kind: ProcedureKind::HandoverWithCpfChange,
            start: Instant::from_millis(start_ms),
            end: Instant::from_millis(end_ms),
        }
    }

    fn stream(rate_hz: u64, deadline_ms: u64) -> StreamParams {
        StreamParams {
            rate_hz,
            deadline: Duration::from_millis(deadline_ms),
            transit: Duration::from_millis(2),
            start: Instant::ZERO,
            end: Instant::from_secs(10),
        }
    }

    #[test]
    fn no_windows_no_misses() {
        assert_eq!(missed_deadlines(stream(1_000, 100), &[]), 0);
    }

    #[test]
    fn short_window_within_budget_misses_nothing() {
        // 50 ms interruption, 100 ms budget: every buffered packet still
        // arrives in time.
        let w = [window(1_000, 1_050)];
        assert_eq!(missed_deadlines(stream(1_000, 100), &w), 0);
    }

    #[test]
    fn long_window_misses_the_early_packets() {
        // 300 ms interruption, 100 ms budget (2 ms transit → 98 ms slack):
        // packets sent in the first 202 ms of the window miss.
        let w = [window(1_000, 1_300)];
        let missed = missed_deadlines(stream(1_000, 100), &w);
        assert!(
            (195..=210).contains(&missed),
            "expected ≈202 misses, got {missed}"
        );
    }

    #[test]
    fn tighter_deadline_misses_more() {
        let w = [window(1_000, 1_300)];
        let car = missed_deadlines(stream(1_000, 100), &w);
        let vr = missed_deadlines(stream(1_000, 16), &w);
        assert!(vr > car);
        // VR misses ≈ 300 − 14 = 286 ms worth.
        assert!((280..=292).contains(&vr), "got {vr}");
    }

    #[test]
    fn multiple_windows_accumulate() {
        let w = [window(1_000, 1_300), window(5_000, 5_300)];
        let one = missed_deadlines(stream(1_000, 100), &w[..1]);
        let two = missed_deadlines(stream(1_000, 100), &w);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn windows_outside_the_stream_are_ignored() {
        let w = [window(20_000, 21_000)];
        assert_eq!(missed_deadlines(stream(1_000, 100), &w), 0);
    }

    #[test]
    fn impossible_transit_misses_everything() {
        let s = StreamParams {
            transit: Duration::from_millis(200),
            ..stream(1_000, 100)
        };
        assert_eq!(missed_deadlines(s, &[]), s.total_packets());
    }

    #[test]
    fn rate_scales_miss_count() {
        let w = [window(1_000, 1_300)];
        let slow = missed_deadlines(stream(100, 100), &w);
        let fast = missed_deadlines(stream(1_000, 100), &w);
        assert!(fast >= slow * 9, "fast {fast} vs slow {slow}");
    }
}
