//! Sharded-engine bench core: the multi-region ring workload driven
//! through [`ShardedSim`] at several shard counts.
//!
//! Both the `engine` criterion bench (shards axis) and `repro --bench-out`
//! (the `engine_sharded` key in BENCH_netsim.json) run this driver, so the
//! numbers they report come from the identical topology and schedule. The
//! workload is the paper's deployment shape reduced to its scaling
//! skeleton: per region a 5 µs ring of nodes churning local tokens, and a
//! 500 µs inter-region hop every [`CROSS_EVERY`]-th forward, which both
//! couples the shards and fixes the conservative lookahead at 500 µs —
//! one barrier per ~100 local hops.
//!
//! Every run folds its delivery history into an order checksum; a shard
//! count that dispatched even two equal-time events in a different order
//! produces a different checksum, so callers assert identity across shard
//! counts before trusting the throughput numbers.

use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, ShardedSim};
use serde::Serialize;

/// Every this-many forwards, a token jumps to the next region instead of
/// the next ring neighbor.
const CROSS_EVERY: u64 = 64;

/// One measured shard count on the multi-region ring (`engine_sharded`
/// entries in BENCH_netsim.json).
#[derive(Debug, Serialize)]
pub struct ShardBenchPoint {
    /// Engine shard count (1 = the sequential engine).
    pub shards: usize,
    /// Engine events processed over the virtual horizon.
    pub events: u64,
    /// Host seconds spent inside `run_until`.
    pub wall_s: f64,
    /// Throughput in events per wall-clock second.
    pub events_per_sec: f64,
    /// `events_per_sec` over the `shards = 1` run's (1.0 for that run).
    pub speedup_vs_sequential: f64,
    /// Order checksum over every node's delivery history — must be equal
    /// across all shard counts (asserted by [`measure`]).
    pub order_hash: u64,
}

/// Forwards tokens around its region's ring, detouring to the next region
/// every [`CROSS_EVERY`]-th forward, and folds each arrival into an
/// FNV-style checksum of `(token, virtual time)` in arrival order.
struct RegionHop {
    next_local: NodeId,
    next_region: NodeId,
    hash: u64,
}

impl Node<u64> for RegionHop {
    fn service_time(&self, _msg: &u64) -> Duration {
        Duration::from_nanos(500)
    }

    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        if let NodeEvent::Message { msg, .. } = event {
            self.hash = (self.hash ^ msg ^ out.now().as_nanos())
                .wrapping_mul(0x0000_0100_0000_01B3);
            let hops = msg >> 32;
            let token = msg & 0xFFFF_FFFF;
            let fwd = ((hops + 1) << 32) | token;
            if hops % CROSS_EVERY == CROSS_EVERY - 1 {
                out.send(self.next_region, fwd);
            } else {
                out.send(self.next_local, fwd);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Region `r`, ring position `i` → node id (region-banded like the
/// cluster's id scheme, exercising the sparse id → shard map).
fn ring_node(region: usize, i: usize) -> NodeId {
    NodeId::new(1 + region as u64 * 1000 + i as u64)
}

/// Runs the ring on `shards` shards; returns (events, wall seconds,
/// order hash).
fn run_ring(
    regions: usize,
    nodes_per_region: usize,
    balls_per_region: u64,
    horizon: Duration,
    shards: usize,
) -> (u64, f64, u64) {
    // Cross-region hops take the 500 µs default (the lookahead); ring
    // neighbors inside a region get 5 µs overrides.
    let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(500)));
    for r in 0..regions {
        for i in 0..nodes_per_region {
            links.set(
                ring_node(r, i),
                ring_node(r, (i + 1) % nodes_per_region),
                LinkSpec::fixed(Duration::from_micros(5)),
            );
        }
    }
    let mut sim = ShardedSim::new(links, shards);
    for r in 0..regions {
        for i in 0..nodes_per_region {
            sim.add_node(
                ring_node(r, i),
                Box::new(RegionHop {
                    next_local: ring_node(r, (i + 1) % nodes_per_region),
                    next_region: ring_node((r + 1) % regions, 0),
                    hash: 0xCBF2_9CE4_8422_2325,
                }),
                r % shards.max(1),
            );
        }
    }
    for r in 0..regions {
        for b in 0..balls_per_region {
            sim.inject_at(
                Instant::from_nanos(b * 100),
                ring_node(r, (b as usize) % nodes_per_region),
                b & 0xFFFF_FFFF,
            );
        }
    }
    let start = std::time::Instant::now();
    sim.run_until(Instant::ZERO + horizon);
    let wall = start.elapsed().as_secs_f64();
    let mut hash = 0u64;
    for r in 0..regions {
        for i in 0..nodes_per_region {
            let node = sim
                .node_as::<RegionHop>(ring_node(r, i))
                .expect("ring node registered");
            hash = (hash ^ node.hash).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    (sim.events_processed(), wall, hash)
}

/// Measures the multi-region ring at each shard count (1 is always run
/// first as the sequential baseline) and asserts that every run processed
/// the same events in the same order before reporting throughput.
pub fn measure(horizon: Duration, shard_counts: &[usize]) -> Vec<ShardBenchPoint> {
    const REGIONS: usize = 4;
    const NODES_PER_REGION: usize = 8;
    const BALLS_PER_REGION: u64 = 16;
    let mut points: Vec<ShardBenchPoint> = Vec::new();
    let mut counts = vec![1usize];
    counts.extend(shard_counts.iter().copied().filter(|&s| s > 1));
    for shards in counts {
        let (events, wall_s, order_hash) =
            run_ring(REGIONS, NODES_PER_REGION, BALLS_PER_REGION, horizon, shards);
        let events_per_sec = if wall_s > 0.0 {
            events as f64 / wall_s
        } else {
            0.0
        };
        if let Some(seq) = points.first() {
            assert_eq!(
                (events, order_hash),
                (seq.events, seq.order_hash),
                "sharded run (shards={shards}) diverged from the sequential engine"
            );
        }
        let speedup_vs_sequential = points
            .first()
            .map(|seq| {
                if seq.events_per_sec > 0.0 {
                    events_per_sec / seq.events_per_sec
                } else {
                    0.0
                }
            })
            .unwrap_or(1.0);
        points.push(ShardBenchPoint {
            shards,
            events,
            wall_s,
            events_per_sec,
            speedup_vs_sequential,
            order_hash,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_byte_identical_across_shard_counts() {
        // measure() itself asserts (events, order_hash) identity for every
        // listed shard count against the sequential baseline.
        let points = measure(Duration::from_millis(5), &[2, 4]);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.events > 0));
    }
}
