//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p neutrino-bench --bin repro --release -- all
//! cargo run -p neutrino-bench --bin repro --release -- fig8 fig10
//! cargo run -p neutrino-bench --bin repro --release -- fig9 --huge   # 2M-user burst
//! cargo run -p neutrino-bench --bin repro --release -- all --quick   # small sweep
//! cargo run -p neutrino-bench --bin repro --release -- all --json out.json
//! cargo run -p neutrino-bench --bin repro --release -- all --jobs 8  # worker count
//! cargo run -p neutrino-bench --bin repro --release -- all --bench-out BENCH_netsim.json
//! cargo run -p neutrino-bench --bin repro --release -- fig10 --faults  # lossy links
//! ```
//!
//! Figure cells run across a worker pool (`--jobs N`, default: all host
//! cores); results are collected in input order, so the tables and the
//! `--json` file are byte-identical to a `--jobs 1` run. `--bench-out`
//! records engine throughput (events/sec, wall-clock) per figure cell.
//!
//! Absolute latencies come from a calibrated simulator (DESIGN.md §3);
//! the reproduction target is each figure's *shape*.

use neutrino_bench::figures::{
    ablation, appsfig, burst, failure, handover, logsize, overload, pct, serialization,
};
use neutrino_bench::figures::{PctPoint, Profile};
use neutrino_bench::{render, schedbench, shardbench, sweep};
use neutrino_netsim::alloc_count;
use serde::Serialize;
use std::collections::BTreeMap;

/// Engine throughput of one figure cell (`--bench-out`).
#[derive(Debug, Serialize)]
struct CellBench {
    /// The cell's index in the figure's input order.
    index: usize,
    /// Simulation runs the cell executed.
    sim_runs: usize,
    /// Engine events processed across those runs.
    events_processed: u64,
    /// Host seconds the engine spent inside `run_until`.
    sim_wall_s: f64,
    /// Engine throughput in events per wall-clock second.
    events_per_sec: f64,
}

/// One figure's perf record (`--bench-out`).
#[derive(Debug, Serialize)]
struct FigBench {
    /// End-to-end wall seconds for the figure (includes sweep overhead).
    wall_s: f64,
    /// Engine events summed over every cell.
    events_processed: u64,
    /// Engine wall seconds summed over every cell (exceeds `wall_s` when
    /// cells overlap on multiple workers).
    sim_wall_s: f64,
    /// Aggregate engine throughput: events over summed engine wall time.
    events_per_sec: f64,
    /// Per-cell breakdown in input order.
    cells: Vec<CellBench>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let huge = args.iter().any(|a| a == "--huge");
    let faults = args.iter().any(|a| a == "--faults");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_path = flag_value("--json");
    let bench_path = flag_value("--bench-out");
    if let Some(jobs) = flag_value("--jobs") {
        let jobs: usize = jobs.parse().expect("--jobs takes a worker count");
        sweep::set_jobs(jobs);
    }
    if let Some(shards) = flag_value("--shards") {
        let shards: usize = shards.parse().expect("--shards takes a shard count");
        neutrino_core::experiment::set_shards(shards);
    }
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let mut figs: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with("fig") || a.as_str() == "ablation" || a.as_str() == "overload")
        .cloned()
        .collect();
    if figs.is_empty() || args.iter().any(|a| a == "all") {
        figs = vec![
            "fig3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "fig20", "ablation", "overload",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let mut json: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut bench: BTreeMap<String, FigBench> = BTreeMap::new();
    let run_started = std::time::Instant::now();
    let allocs_at_start = alloc_count::current();
    for fig in &figs {
        let started = std::time::Instant::now();
        let _ = sweep::take_cell_perf();
        match fig.as_str() {
            "fig3" => run_fig3(profile, &mut json),
            "fig7" => run_pct_fig(
                "Fig. 7: service request PCT (uniform traffic)",
                "fig7",
                pct::fig7(profile),
                &mut json,
            ),
            "fig8" => run_pct_fig(
                "Fig. 8: attach PCT (uniform traffic)",
                "fig8",
                pct::fig8(profile),
                &mut json,
            ),
            "fig9" => run_pct_fig(
                "Fig. 9: attach PCT (bursty IoT traffic, by active users)",
                "fig9",
                burst::fig9(profile, huge),
                &mut json,
            ),
            "fig10" if faults => run_fig10_faults(profile, &mut json),
            "fig10" => run_pct_fig(
                "Fig. 10: handover PCT under CPF failure",
                "fig10",
                failure::fig10(profile),
                &mut json,
            ),
            "fig11" => run_pct_fig(
                "Fig. 11: fast handover PCT",
                "fig11",
                handover::fig11(profile),
                &mut json,
            ),
            "fig13" => run_drive_fig(
                "Fig. 13: self-driving car missed deadlines (100 ms budget)",
                "fig13",
                appsfig::fig13(profile),
                &mut json,
            ),
            "fig14" => run_drive_fig(
                "Fig. 14: VR missed deadlines (16 ms budget)",
                "fig14",
                appsfig::fig14(profile),
                &mut json,
            ),
            "fig15" => run_pct_fig(
                "Fig. 15: state synchronization ablation (attach PCT)",
                "fig15",
                pct::fig15(profile),
                &mut json,
            ),
            "fig16" => run_pct_fig(
                "Fig. 16: CTA message logging overhead (attach PCT)",
                "fig16",
                pct::fig16(profile),
                &mut json,
            ),
            "fig17" => run_fig17(profile, &mut json),
            "fig18" => run_fig18(quick, &mut json),
            "fig19" | "fig20" => run_fig19_20(fig, &mut json),
            "ablation" => run_ablation(&mut json),
            "overload" => run_overload(profile, &mut json),
            other => eprintln!("unknown figure: {other}"),
        }
        let wall = started.elapsed();
        let cells: Vec<CellBench> = sweep::take_cell_perf()
            .into_iter()
            .map(|c| CellBench {
                index: c.index,
                sim_runs: c.runs,
                events_processed: c.events_processed,
                sim_wall_s: c.sim_wall.as_secs_f64(),
                events_per_sec: c.events_per_sec(),
            })
            .collect();
        let events_processed: u64 = cells.iter().map(|c| c.events_processed).sum();
        let sim_wall_s: f64 = cells.iter().map(|c| c.sim_wall_s).sum();
        let events_per_sec = if sim_wall_s > 0.0 {
            events_processed as f64 / sim_wall_s
        } else {
            0.0
        };
        eprintln!(
            "[{fig} done in {:.1}s — {} engine events, {:.0} events/sec]",
            wall.as_secs_f64(),
            events_processed,
            events_per_sec
        );
        bench.insert(
            fig.clone(),
            FigBench {
                wall_s: wall.as_secs_f64(),
                events_processed,
                sim_wall_s,
                events_per_sec,
                cells,
            },
        );
    }

    if let Some(path) = json_path {
        let body = serde_json::to_string_pretty(&json).expect("serializable");
        std::fs::write(&path, body).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = bench_path {
        write_bench(
            &path,
            &bench,
            json.get("overload"),
            run_started.elapsed(),
            quick,
            alloc_count::current() - allocs_at_start,
        );
    }
}

/// Writes the `--bench-out` perf report (BENCH_netsim.json shape).
fn write_bench(
    path: &str,
    bench: &BTreeMap<String, FigBench>,
    overload: Option<&serde_json::Value>,
    total_wall: std::time::Duration,
    quick: bool,
    allocs: u64,
) {
    let events_processed: u64 = bench.values().map(|f| f.events_processed).sum();
    let sim_wall_s: f64 = bench.values().map(|f| f.sim_wall_s).sum();
    #[derive(Serialize)]
    struct Totals {
        wall_s: f64,
        events_processed: u64,
        sim_wall_s: f64,
        events_per_sec: f64,
    }
    let totals = Totals {
        wall_s: total_wall.as_secs_f64(),
        events_processed,
        sim_wall_s,
        events_per_sec: if sim_wall_s > 0.0 {
            events_processed as f64 / sim_wall_s
        } else {
            0.0
        },
    };
    let mut report = vec![
        (
            "profile".to_string(),
            serde_json::to_value(&if quick { "quick" } else { "full" }).expect("ser"),
        ),
        ("jobs".to_string(), serde_json::to_value(&sweep::jobs()).expect("ser")),
        (
            "shards".to_string(),
            serde_json::to_value(&neutrino_core::experiment::shards()).expect("ser"),
        ),
        (
            "host_cores".to_string(),
            serde_json::to_value(
                &std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
            .expect("ser"),
        ),
        ("totals".to_string(), serde_json::to_value(&totals).expect("ser")),
        (
            // Process-wide heap allocations per engine event across the
            // whole run. Nonzero only under `--features count-allocs`
            // (the counting global allocator); 0.0 otherwise.
            "allocs_per_event".to_string(),
            serde_json::to_value(&if events_processed > 0 {
                allocs as f64 / events_processed as f64
            } else {
                0.0
            })
            .expect("ser"),
        ),
        ("figures".to_string(), serde_json::to_value(bench).expect("ser")),
    ];
    // Scheduler microbench: the calendar-queue wheel vs. the binary-heap
    // reference on the shared engine-like workload (same drivers as
    // `cargo bench --bench wheel`), at a small and a large pending set.
    let sched_ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let engine_wheel: Vec<schedbench::SchedBenchPoint> = [64u64, 4096]
        .iter()
        .map(|&pending| schedbench::measure(sched_ops, pending))
        .collect();
    for p in &engine_wheel {
        eprintln!(
            "[engine_wheel pending={}: wheel {:.1}M ops/s, heap {:.1}M ops/s, speedup {:.2}x]",
            p.pending,
            p.wheel_ops_per_sec / 1e6,
            p.heap_ops_per_sec / 1e6,
            p.speedup
        );
    }
    report.push((
        "engine_wheel".to_string(),
        serde_json::to_value(&engine_wheel).expect("ser"),
    ));
    // Sharded-engine bench: the multi-region ring through ShardedSim at
    // 1/2/4 shards. `measure` asserts (events, order_hash) identity across
    // shard counts before reporting throughput, so these rows double as a
    // determinism check on every bench run. Speedups above 1 need real
    // parallel hardware — on a single-core host the window coordination is
    // pure overhead (see the `note` field written with the report).
    let sharded_horizon = neutrino_common::time::Duration::from_millis(if quick { 20 } else { 200 });
    let engine_sharded = shardbench::measure(sharded_horizon, &[2, 4]);
    for p in &engine_sharded {
        eprintln!(
            "[engine_sharded shards={}: {} events, {:.2}M events/s, {:.2}x vs sequential]",
            p.shards,
            p.events,
            p.events_per_sec / 1e6,
            p.speedup_vs_sequential
        );
    }
    report.push((
        "engine_sharded".to_string(),
        serde_json::to_value(&engine_sharded).expect("ser"),
    ));
    // Overload throughput/latency percentiles (admitted vs offered, p50/p99
    // by class) ride along whenever the `overload` figure ran.
    if let Some(points) = overload {
        report.push(("overload".to_string(), points.clone()));
    }
    let report = serde_json::Value::Map(report);
    let body = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(path, body).expect("write bench json");
    eprintln!("wrote {path}");
}

fn run_ablation(json: &mut BTreeMap<String, serde_json::Value>) {
    use neutrino_common::time::Duration;
    render::header("Ablation A: backup replica count N (attach, 40K PPS)");
    let reps = ablation::replica_sweep(40_000, Duration::from_millis(800));
    for p in &reps {
        println!(
            "  N={}  attach p50={:.3}ms  syncs={}  max_log={:.1} KB",
            p.replicas,
            p.attach_p50_ms,
            p.syncs_sent,
            p.max_log_bytes as f64 / 1e3
        );
    }
    render::header("Ablation B: inter-region latency vs failure recovery (40K PPS)");
    let lats = ablation::inter_region_sweep(40_000, Duration::from_millis(800));
    for p in &lats {
        println!(
            "  inter-region={:>5}us  Neutrino failure-PCT p50={:.3}ms",
            p.inter_region_us, p.neutrino_failure_p50_ms
        );
    }
    json.insert(
        "ablation_replicas".into(),
        serde_json::to_value(&reps).expect("ser"),
    );
    json.insert(
        "ablation_latency".into(),
        serde_json::to_value(&lats).expect("ser"),
    );
}

/// Overload figure: admitted-vs-offered throughput and per-class PCT
/// percentiles under a flash-crowd storm, admission gated vs ungated.
fn run_overload(profile: Profile, json: &mut BTreeMap<String, serde_json::Value>) {
    render::header("Overload: flash-crowd re-attach, admission gated vs ungated");
    let points = overload::overload(profile);
    for p in &points {
        println!(
            "{:>10}  {:<20} offered={:>7} admitted={:>7} shed={:>7} rejected={:>7}  depth={:>5} (cap {})",
            format_x(p.x),
            p.system,
            p.offered,
            p.admitted.iter().sum::<u64>(),
            p.shed.iter().sum::<u64>(),
            p.rejected,
            p.max_queue_depth,
            p.queue_cap,
        );
        println!(
            "            attach p50={:.2}ms p99={:.2}ms  service-request p50={:.2}ms p99={:.2}ms  exhausted={} failed={} audit_div={}",
            p.attach.p50,
            p.attach.p99,
            p.service_request.p50,
            p.service_request.p99,
            p.retries_exhausted,
            p.failed_procedures,
            p.audit_divergences,
        );
    }
    json.insert("overload".into(), serde_json::to_value(&points).expect("ser"));
}

fn run_pct_fig(
    title: &str,
    key: &str,
    points: Vec<PctPoint>,
    json: &mut BTreeMap<String, serde_json::Value>,
) {
    render::header(title);
    let mut by_x: BTreeMap<u64, Vec<&PctPoint>> = BTreeMap::new();
    for p in &points {
        by_x.entry(p.x).or_default().push(p);
    }
    for (x, ps) in &by_x {
        for p in ps {
            render::pct_row(&format_x(*x), &p.system, &p.summary);
        }
        // Ratio of the first system over the last (EPC over Neutrino in the
        // two-system figures).
        if ps.len() >= 2 {
            let first = ps.first().expect("non-empty");
            let best = ps
                .iter()
                .filter(|p| p.summary.p50.is_finite())
                .min_by(|a, b| a.summary.p50.total_cmp(&b.summary.p50));
            if let Some(best) = best {
                if best.system != first.system {
                    render::ratio_note(
                        &format!("{} over {} at {}", first.system, best.system, format_x(*x)),
                        first.summary.p50,
                        best.summary.p50,
                    );
                }
            }
        }
    }
    json.insert(key.to_string(), serde_json::to_value(&points).expect("ser"));
}

/// Fig. 10 under seeded link faults (`--faults`): the failure figure with
/// every link dropping/duplicating/reordering per the paper fault profile,
/// plus the per-cell consistency-audit verdict. Neutrino rows must report
/// zero divergences; re-attach baselines report their inconsistency windows.
fn run_fig10_faults(profile: Profile, json: &mut BTreeMap<String, serde_json::Value>) {
    render::header("Fig. 10 (faulty links): handover PCT under CPF failure + link faults");
    let points = failure::fig10_with(profile, failure::paper_fault_profile());
    for p in &points {
        render::pct_row(&format_x(p.x), &p.system, &p.summary);
        println!(
            "            audit: passes={} ues={} divergences={}  retx={} resyncs={} failed={}",
            p.audit_passes,
            p.audit_ues_checked,
            p.audit_divergences,
            p.retransmissions,
            p.resyncs_requested,
            p.failed_procedures
        );
    }
    json.insert(
        "fig10_faults".into(),
        serde_json::to_value(&points).expect("ser"),
    );
}

fn run_drive_fig(
    title: &str,
    key: &str,
    points: Vec<appsfig::DrivePoint>,
    json: &mut BTreeMap<String, serde_json::Value>,
) {
    render::header(title);
    for p in &points {
        println!(
            "{:>10}  {:<14} {:<12} missed={}",
            format_x(p.active_users),
            p.system,
            if p.single_handover {
                "single-HO"
            } else {
                "multi-HO"
            },
            p.missed_deadlines
        );
    }
    json.insert(key.to_string(), serde_json::to_value(&points).expect("ser"));
}

fn run_fig3(profile: Profile, json: &mut BTreeMap<String, serde_json::Value>) {
    render::header("Fig. 3: page load time and video startup delay");
    let points = appsfig::fig3(profile);
    for p in &points {
        println!(
            "{:>10}  {:<14} video={:>10.1}ms  plt={:>10.1}ms  (sr-pct={:.2}ms)",
            format_x(p.rate),
            p.system,
            p.video_startup_ms,
            p.page_load_ms,
            p.pct_ms
        );
    }
    for rate in points
        .iter()
        .map(|p| p.rate)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let epc = points
            .iter()
            .find(|p| p.rate == rate && p.system == "ExistingEPC");
        let neu = points
            .iter()
            .find(|p| p.rate == rate && p.system == "Neutrino");
        if let (Some(e), Some(n)) = (epc, neu) {
            render::ratio_note(
                &format!("video startup at {}", format_x(rate)),
                e.video_startup_ms,
                n.video_startup_ms,
            );
            render::ratio_note(
                &format!("page load at {}", format_x(rate)),
                e.page_load_ms,
                n.page_load_ms,
            );
        }
    }
    json.insert("fig3".into(), serde_json::to_value(&points).expect("ser"));
}

fn run_fig17(profile: Profile, json: &mut BTreeMap<String, serde_json::Value>) {
    render::header("Fig. 17: CTA message log size by active users");
    let points = logsize::fig17(profile);
    for p in &points {
        println!(
            "{:>10}  {:<22} max_log={:.2} MB",
            format_x(p.users),
            p.procedure,
            p.max_log_bytes as f64 / 1e6
        );
    }
    json.insert("fig17".into(), serde_json::to_value(&points).expect("ser"));
}

fn run_fig18(quick: bool, json: &mut BTreeMap<String, serde_json::Value>) {
    render::header("Fig. 18: encode+decode speedup vs ASN.1 (synthetic messages)");
    let elements = if quick {
        vec![3, 7, 25]
    } else {
        serialization::fig18_elements()
    };
    let points = serialization::fig18(&elements);
    for p in &points {
        println!(
            "{:>4} elements  {:<10} total={:>8}ns  speedup(raw asn1)={:>6.2}x  speedup(asn1c)={:>6.2}x",
            p.elements, p.codec, p.total_ns, p.speedup_vs_asn1_raw, p.speedup_vs_asn1c
        );
    }
    json.insert("fig18".into(), serde_json::to_value(&points).expect("ser"));
}

fn run_fig19_20(which: &str, json: &mut BTreeMap<String, serde_json::Value>) {
    let rows = serialization::fig19_20();
    if which == "fig19" {
        render::header("Fig. 19: encode+decode times, real S1AP messages");
        for r in &rows {
            println!(
                "{:<28} {:<16} total={:>8}ns",
                r.message, r.codec, r.total_ns
            );
        }
    } else {
        render::header("Fig. 20: encoded message sizes, real S1AP messages");
        for r in &rows {
            if r.codec == "asn1c-emulated" {
                continue; // same bytes as asn1-per
            }
            println!(
                "{:<28} {:<16} size={:>5} bytes",
                r.message, r.codec, r.wire_bytes
            );
        }
    }
    json.insert(which.to_string(), serde_json::to_value(&rows).expect("ser"));
}

fn format_x(x: u64) -> String {
    if x >= 1_000_000 && x.is_multiple_of(1_000_000) {
        format!("{}M", x / 1_000_000)
    } else if x >= 1_000 {
        format!("{}K", x / 1_000)
    } else {
        x.to_string()
    }
}
