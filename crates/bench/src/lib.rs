//! The experiment harness: one module per paper figure.
//!
//! Every public `figN` function regenerates the corresponding figure's data
//! series and returns it as structured rows; the `repro` binary renders them
//! as text tables and optionally JSON. The mapping from figure to module is
//! indexed in DESIGN.md; paper-vs-measured numbers live in EXPERIMENTS.md.
//!
//! Absolute latencies are not expected to match the authors' testbed — the
//! substrate here is a calibrated simulator (see DESIGN.md §3) — but the
//! *shape* of every figure (which system wins, by what factor, where the
//! saturation knees fall) is the reproduction target.

// `count-allocs` needs one unsafe impl (the counting GlobalAlloc below);
// everything else stays unsafe-free in both configurations.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_code))]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod figures;
pub mod render;
pub mod schedbench;
pub mod shardbench;
pub mod sweep;

pub use figures::*;

/// A counting global allocator: every allocation bumps
/// `neutrino_netsim::alloc_count`, which the engine samples around
/// `run_until` to surface `SimStats::allocs` / allocs-per-event. The
/// netsim crate forbids `unsafe`, so the allocator lives here, in the
/// harness that consumes the metric.
#[cfg(feature = "count-allocs")]
mod alloc_meter {
    use std::alloc::{GlobalAlloc, Layout, System};

    struct CountingAlloc;

    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            neutrino_netsim::alloc_count::record(1);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc that moves is a fresh allocation from the pressure
            // perspective; count it like one.
            neutrino_netsim::alloc_count::record(1);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;
}
