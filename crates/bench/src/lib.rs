//! The experiment harness: one module per paper figure.
//!
//! Every public `figN` function regenerates the corresponding figure's data
//! series and returns it as structured rows; the `repro` binary renders them
//! as text tables and optionally JSON. The mapping from figure to module is
//! indexed in DESIGN.md; paper-vs-measured numbers live in EXPERIMENTS.md.
//!
//! Absolute latencies are not expected to match the authors' testbed — the
//! substrate here is a calibrated simulator (see DESIGN.md §3) — but the
//! *shape* of every figure (which system wins, by what factor, where the
//! saturation knees fall) is the reproduction target.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod figures;
pub mod render;
pub mod sweep;

pub use figures::*;
