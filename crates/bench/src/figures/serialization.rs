//! Figures 18, 19, 20: serialization comparison.
//!
//! Fig. 18 sweeps a custom message over a growing number of information
//! elements and reports each codec's encode+decode speedup over ASN.1.
//! Figs. 19/20 measure the five real S1AP messages (times and encoded
//! sizes) for ASN.1, FlatBuffers, and Optimized FlatBuffers.
//!
//! Two ASN.1 series appear wherever times are reported: `asn1-raw` is this
//! repository's clean-room PER codec measured as-is; `asn1c-emulated`
//! applies [`ASN1C_RUNTIME_FACTOR`] to model the asn1c-generated runtime
//! the paper's baselines actually link (see `neutrino-messages::costs`).

use neutrino_codec::calibrate::{measure, CalibrationOptions, MsgCost};
use neutrino_codec::value::{FieldType, Schema, StructSchema, Value};
use neutrino_codec::CodecKind;
use neutrino_messages::costs::ASN1C_RUNTIME_FACTOR;
use neutrino_messages::MessageKind;
use serde::Serialize;

/// A synthetic control message with `n` information elements: a realistic
/// mix of constrained integers, a flag, and a short octet string every few
/// elements (cellular IEs are mostly small ints with occasional containers).
pub fn synthetic_schema(n: usize) -> (Schema, Value) {
    let mut b = StructSchema::builder(format!("Custom{n}"));
    let mut fields = Vec::with_capacity(n);
    for i in 0..n {
        match i % 5 {
            0 => {
                b = b.field(format!("f{i}"), FieldType::UInt { bits: 32 });
                fields.push(Value::U64(0xDEAD_0000 + i as u64));
            }
            1 => {
                b = b.field(
                    format!("f{i}"),
                    FieldType::Constrained { lo: 0, hi: 16_383 },
                );
                fields.push(Value::U64((i as u64 * 37) % 16_384));
            }
            2 => {
                b = b.field(format!("f{i}"), FieldType::Bool);
                fields.push(Value::Bool(i % 2 == 0));
            }
            3 => {
                b = b.field(format!("f{i}"), FieldType::UInt { bits: 16 });
                fields.push(Value::U64((i as u64 * 101) % 65_536));
            }
            _ => {
                b = b.field(format!("f{i}"), FieldType::Bytes { max: Some(32) });
                fields.push(Value::Bytes(vec![i as u8; 8]));
            }
        }
    }
    (b.build(), Value::Struct(fields))
}

/// One Fig. 18 point.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupPoint {
    /// Number of information elements.
    pub elements: usize,
    /// Codec name.
    pub codec: String,
    /// Encode+access time (ns) of this codec.
    pub total_ns: u64,
    /// Speedup of this codec over raw ASN.1 (our clean-room PER).
    pub speedup_vs_asn1_raw: f64,
    /// Speedup over the asn1c-emulated baseline (the paper's y-axis).
    pub speedup_vs_asn1c: f64,
}

/// Measurement options for the figure harness.
fn opts() -> CalibrationOptions {
    CalibrationOptions {
        iters_per_batch: 1_200,
        batches: 7,
        warmup_iters: 400,
    }
}

fn total_ns(c: &MsgCost) -> u64 {
    c.total().as_nanos()
}

/// Fig. 18: encode+decode speedup over ASN.1 for 1–35 elements.
pub fn fig18(element_counts: &[usize]) -> Vec<SpeedupPoint> {
    let mut out = Vec::new();
    for &n in element_counts {
        let (schema, value) = synthetic_schema(n);
        let per = CodecKind::Asn1Per.instance();
        let asn1_raw = total_ns(&measure(per.as_ref(), &schema, &value, opts()).unwrap());
        let asn1c = asn1_raw as f64 * ASN1C_RUNTIME_FACTOR;
        for kind in [
            CodecKind::Fastbuf,
            CodecKind::Cdr,
            CodecKind::Lcm,
            CodecKind::Proto,
            CodecKind::Flex,
        ] {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let t = total_ns(&measure(codec.as_ref(), &schema, &value, opts()).unwrap());
            out.push(SpeedupPoint {
                elements: n,
                codec: kind.name().to_string(),
                total_ns: t,
                speedup_vs_asn1_raw: asn1_raw as f64 / t as f64,
                speedup_vs_asn1c: asn1c / t as f64,
            });
        }
    }
    out
}

/// Default Fig. 18 x-axis.
pub fn fig18_elements() -> Vec<usize> {
    vec![1, 3, 5, 7, 10, 15, 20, 25, 30, 35]
}

/// The five real messages Figs. 19/20 benchmark.
pub fn fig19_messages() -> Vec<MessageKind> {
    vec![
        MessageKind::InitialContextSetupRequest,
        MessageKind::InitialContextSetupResponse,
        MessageKind::ERabSetupRequest,
        MessageKind::ERabSetupResponse,
        MessageKind::InitialUeMessage,
    ]
}

/// One Fig. 19/20 row.
#[derive(Debug, Clone, Serialize)]
pub struct MessageCodecRow {
    /// The S1AP message.
    pub message: String,
    /// Codec name (`asn1c-emulated` rows share ASN.1's size).
    pub codec: String,
    /// Encode+access time in ns.
    pub total_ns: u64,
    /// Encoded size in bytes.
    pub wire_bytes: usize,
}

/// Figs. 19/20: per-message times and sizes for ASN.1 (raw and emulated),
/// FlatBuffers, and Optimized FlatBuffers.
pub fn fig19_20() -> Vec<MessageCodecRow> {
    let mut out = Vec::new();
    for kind in fig19_messages() {
        let schema = kind.schema();
        let value = kind.sample(3).to_value();
        for codec_kind in [
            CodecKind::Asn1Per,
            CodecKind::Fastbuf,
            CodecKind::FastbufOptimized,
        ] {
            let codec = codec_kind.instance();
            let c = measure(codec.as_ref(), &schema, &value, opts()).unwrap();
            out.push(MessageCodecRow {
                message: kind.name().to_string(),
                codec: codec_kind.name().to_string(),
                total_ns: total_ns(&c),
                wire_bytes: c.wire_bytes,
            });
            if codec_kind == CodecKind::Asn1Per {
                out.push(MessageCodecRow {
                    message: kind.name().to_string(),
                    codec: "asn1c-emulated".to_string(),
                    total_ns: (total_ns(&c) as f64 * ASN1C_RUNTIME_FACTOR) as u64,
                    wire_bytes: c.wire_bytes,
                });
            }
        }
    }
    out
}

/// The "a single control message has ≥ 8 data elements" observation of
/// §6.7.4, checked against our real message set.
pub fn min_real_message_elements() -> usize {
    fig19_messages()
        .iter()
        .map(|k| k.schema().leaf_count())
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_schema_scales() {
        let (s1, v1) = synthetic_schema(1);
        let (s35, v35) = synthetic_schema(35);
        assert_eq!(s1.field_count(), 1);
        assert_eq!(s35.field_count(), 35);
        s1.validate(&v1).unwrap();
        s35.validate(&v35).unwrap();
    }

    #[test]
    fn synthetic_messages_round_trip_all_codecs() {
        for n in [1, 7, 25] {
            let (schema, value) = synthetic_schema(n);
            for kind in CodecKind::ALL {
                let codec = kind.instance();
                if !codec.supports(&schema) {
                    continue;
                }
                let mut buf = Vec::new();
                codec.encode(&schema, &value, &mut buf).unwrap();
                assert_eq!(codec.decode(&schema, &buf).unwrap(), value, "{kind} n={n}");
            }
        }
    }

    #[test]
    fn real_messages_are_ie_rich() {
        // §6.7.4: the authors' messages all have ≥8 data elements. Ours
        // carry ≥7 payload leaves — their count includes the per-message
        // S1AP header IEs (message type, criticality, transaction id) that
        // we do not model as payload.
        assert!(min_real_message_elements() >= 7);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "timing ratios need optimized code; run with --release"
    )]
    fn fig18_fastbuf_wins_at_scale() {
        let points = fig18(&[3, 25]);
        let fb25 = points
            .iter()
            .find(|p| p.codec == "fastbuf" && p.elements == 25)
            .unwrap();
        assert!(
            fb25.speedup_vs_asn1_raw > 1.0,
            "fastbuf must beat raw PER at 25 elements: {:.2}",
            fb25.speedup_vs_asn1_raw
        );
        assert!(fb25.speedup_vs_asn1c > 4.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "timing ratios need optimized code; run with --release"
    )]
    fn fig20_per_is_smallest_fbo_saves_over_fb() {
        let rows = fig19_20();
        for kind in fig19_messages() {
            let size = |codec: &str| {
                rows.iter()
                    .find(|r| r.message == kind.name() && r.codec == codec)
                    .unwrap()
                    .wire_bytes
            };
            assert!(size("asn1-per") < size("fastbuf"), "{kind}");
            assert!(size("fastbuf-opt") <= size("fastbuf"), "{kind}");
        }
    }
}
