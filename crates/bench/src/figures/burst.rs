//! Fig. 9: attach PCT under bursty IoT traffic, by active-user count.

use super::{PctPoint, Profile};
use crate::sweep::{run_cells, Cell};
use neutrino_common::time::{Duration, Instant};
use neutrino_core::experiment::{run_experiment, ExperimentSpec};
use neutrino_core::SystemConfig;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{bursty_attach, BurstParams};

/// One burst cell: N devices attach in a synchronized window; the PCT
/// distribution reflects the queue the burst builds.
pub fn burst_cell(config: SystemConfig, active_users: u64) -> neutrino_common::stats::Summary {
    let workload = bursty_attach(BurstParams {
        active_users,
        window: Duration::from_millis(100),
        kind: ProcedureKind::InitialAttach,
        first_ue: 0,
        start: Instant::from_millis(10),
    });
    let mut spec = ExperimentSpec::new(config, workload);
    // Draining a large burst takes a while; let it finish.
    spec.horizon = Duration::from_secs(600);
    spec.uecfg.pct_sample_every = (active_users / 50_000).max(1);
    // Burst retransmissions would only add load on a healthy system.
    spec.uecfg.retry_timeout = Duration::from_secs(120);
    let mut results = run_experiment(spec);
    results.summary(ProcedureKind::InitialAttach)
}

/// Fig. 9's active-user counts. The paper goes to 2M; the default full
/// profile stops at 500K to bound the harness's memory (the shape is linear
/// well before that); pass `--huge` to the repro binary for the full axis.
pub fn fig9_users(profile: Profile, huge: bool) -> Vec<u64> {
    match (profile, huge) {
        (Profile::Quick, _) => vec![10_000, 50_000],
        (Profile::Full, false) => vec![10_000, 50_000, 100_000, 500_000],
        (Profile::Full, true) => vec![10_000, 50_000, 100_000, 500_000, 1_000_000, 2_000_000],
    }
}

/// Fig. 9: attach PCT with bursty control traffic.
pub fn fig9(profile: Profile, huge: bool) -> Vec<PctPoint> {
    let mut cells: Vec<Cell<PctPoint>> = Vec::new();
    for &users in &fig9_users(profile, huge) {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || PctPoint {
                x: users,
                system: config.name.to_string(),
                summary: burst_cell(config, users),
            }));
        }
    }
    run_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn burst_pct_grows_with_users_and_epc_is_worse() {
        let neu_small = burst_cell(SystemConfig::neutrino(), 5_000);
        let neu_big = burst_cell(SystemConfig::neutrino(), 20_000);
        assert!(
            neu_big.p50 > neu_small.p50 * 2.0,
            "queueing must grow with the burst: {} vs {}",
            neu_big.p50,
            neu_small.p50
        );
        let epc_big = burst_cell(SystemConfig::existing_epc(), 20_000);
        assert!(
            epc_big.p50 > neu_big.p50 * 1.4,
            "EPC ({}) must drain the burst slower than Neutrino ({})",
            epc_big.p50,
            neu_big.p50
        );
        assert_eq!(neu_big.count, 20_000, "every attach completes");
    }
}
