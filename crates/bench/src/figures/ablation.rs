//! Ablations beyond the paper's figures (DESIGN.md §6): the replica count
//! N, and the inter-region latency sensitivity of failure recovery — the
//! tradeoffs §4.3's footnote 14 alludes to.

use crate::sweep::{run_cells, Cell};
use neutrino_common::stats::Summary;
use neutrino_common::time::Duration;
use neutrino_core::{LinkProfile, SystemConfig};
use neutrino_messages::procedures::ProcedureKind;
use serde::Serialize;

/// One replica-count ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaPoint {
    /// Backup replica count N.
    pub replicas: usize,
    /// Attach PCT summary at the probe rate.
    pub attach_p50_ms: f64,
    /// State checkpoints sent during the run.
    pub syncs_sent: u64,
    /// Peak CTA log bytes (more replicas → later full-ACK pruning).
    pub max_log_bytes: usize,
}

/// Sweeps the backup replica count N: failure-free cost of durability.
/// The paper fixes N implicitly; this quantifies the failure-free PCT and
/// sync-traffic price of each additional replica.
pub fn replica_sweep(rate_pps: u64, duration: Duration) -> Vec<ReplicaPoint> {
    use neutrino_core::experiment::{run_experiment, ExperimentSpec};
    use neutrino_trafficgen::{uniform, UniformParams};

    let cells: Vec<Cell<ReplicaPoint>> = [1usize, 2, 3, 4]
        .into_iter()
        .map(|replicas| {
            Box::new(move || {
                let mut config = SystemConfig::neutrino();
                config.replicas = replicas;
                let pool = (rate_pps * duration.as_nanos() / 1_000_000_000).max(1_000);
                let workload = uniform(UniformParams {
                    rate_pps,
                    duration,
                    kind: ProcedureKind::InitialAttach,
                    ues: pool,
                    first_ue: 0,
                    start: neutrino_common::time::Instant::ZERO,
                });
                let mut spec = ExperimentSpec::new(config, workload);
                spec.horizon = duration + Duration::from_secs(8);
                let mut results = run_experiment(spec);
                let s: Summary = results.summary(ProcedureKind::InitialAttach);
                ReplicaPoint {
                    replicas,
                    attach_p50_ms: s.p50,
                    syncs_sent: results.cpf.syncs_sent,
                    max_log_bytes: results.max_log_bytes,
                }
            }) as Cell<ReplicaPoint>
        })
        .collect();
    run_cells(cells)
}

/// One latency-sensitivity row.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyPoint {
    /// Inter-region one-way latency (µs).
    pub inter_region_us: u64,
    /// Handover-under-failure PCT median (ms) for Neutrino.
    pub neutrino_failure_p50_ms: f64,
}

/// Sweeps the inter-region link latency: how far away may the level-2
/// replicas live before failure recovery stops being cheap? (The paper's
/// two-server testbed could not expose this dimension.)
pub fn inter_region_sweep(rate_pps: u64, duration: Duration) -> Vec<LatencyPoint> {
    let cells: Vec<Cell<LatencyPoint>> = [100u64, 500, 2_000, 5_000]
        .into_iter()
        .map(|us| {
            Box::new(move || {
                let links = LinkProfile {
                    inter_region: Duration::from_micros(us),
                    ..LinkProfile::default()
                };
                let mut pct =
                    failure_cell_with_links(SystemConfig::neutrino(), rate_pps, duration, links);
                LatencyPoint {
                    inter_region_us: us,
                    neutrino_failure_p50_ms: pct.median(),
                }
            }) as Cell<LatencyPoint>
        })
        .collect();
    run_cells(cells)
}

/// `failure_cell` with an explicit link profile.
pub fn failure_cell_with_links(
    config: SystemConfig,
    rate_pps: u64,
    duration: Duration,
    links: LinkProfile,
) -> neutrino_common::stats::Percentiles {
    // Delegate through the failure module's machinery by temporarily
    // re-running its cell with modified links.
    crate::figures::failure::failure_cell_links(config, rate_pps, duration, links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn more_replicas_cost_more_syncs_not_more_latency() {
        let points = replica_sweep(20_000, Duration::from_millis(250));
        assert_eq!(points.len(), 4);
        // Sync traffic strictly grows with N.
        for w in points.windows(2) {
            assert!(
                w[1].syncs_sent > w[0].syncs_sent,
                "N={} sent {} vs N={} sent {}",
                w[1].replicas,
                w[1].syncs_sent,
                w[0].replicas,
                w[0].syncs_sent
            );
        }
        // Replication is off the critical path (§4.2.2): failure-free PCT
        // must stay within noise across N.
        let base = points[0].attach_p50_ms;
        for p in &points {
            assert!(
                (p.attach_p50_ms - base).abs() < base * 0.3 + 0.02,
                "N={} attach p50 {} drifted from {}",
                p.replicas,
                p.attach_p50_ms,
                base
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn farther_replicas_slow_failure_recovery() {
        let points = inter_region_sweep(20_000, Duration::from_millis(250));
        assert!(
            points.last().unwrap().neutrino_failure_p50_ms
                > points.first().unwrap().neutrino_failure_p50_ms,
            "recovery must pay the replica distance: {points:?}"
        );
    }

    const _: fn(u64, Duration) -> Vec<ReplicaPoint> = replica_sweep;
}
