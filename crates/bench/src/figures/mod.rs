//! One module per group of figures.

pub mod ablation;
pub mod appsfig;
pub mod burst;
pub mod failure;
pub mod handover;
pub mod logsize;
pub mod overload;
pub mod pct;
pub mod serialization;

use neutrino_common::stats::Summary;
use serde::Serialize;

/// One point of a PCT-vs-rate figure.
#[derive(Debug, Clone, Serialize)]
pub struct PctPoint {
    /// The x-axis value (procedures/second or active users).
    pub x: u64,
    /// System name.
    pub system: String,
    /// PCT distribution summary (milliseconds).
    pub summary: Summary,
}

/// Shared experiment sizing. `quick` keeps unit tests and criterion
/// iterations affordable; the full profile regenerates the paper's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small: for tests and criterion.
    Quick,
    /// Full: the paper's x-axes.
    Full,
}

impl Profile {
    /// Measurement duration per cell.
    pub fn duration_ms(self) -> u64 {
        match self {
            Profile::Quick => 300,
            Profile::Full => 1_500,
        }
    }

    /// Scales a rate list down in quick mode.
    pub fn rates(self, full: &[u64]) -> Vec<u64> {
        match self {
            Profile::Quick => vec![full[0], full[full.len() / 2]],
            Profile::Full => full.to_vec(),
        }
    }
}
