//! Fig. 10: handover PCT under CPF failure.
//!
//! Method (matching §6.4): a cohort of probe UEs — all mapped to one victim
//! CPF — are mid-handover when the victim crashes. Their PCT then includes
//! the pre-failure work plus recovery: log replay at a backup for Neutrino,
//! re-attach for existing EPC. Failure *detection* time is excluded in both
//! systems (the notice is delivered immediately). Background handover load
//! at the figure's x-axis rate provides the queueing context.

use super::{PctPoint, Profile};
use crate::sweep::{run_cells, Cell};
use neutrino_common::stats::Percentiles;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::experiment::{primary_cpf_for, run_experiment, ExperimentSpec, FailureSpec};
use neutrino_core::uepop::Arrival;
use neutrino_core::{SystemConfig, Workload};
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{uniform_with_pool, UniformParams};

/// Number of probe UEs whose failure-inclusive PCT is measured per cell.
const PROBES: usize = 100;

/// Finds `count` pool UEs whose primary is the victim CPF.
fn probes_on_victim(
    config: &SystemConfig,
    layout: RegionLayout,
    pool: u64,
    count: usize,
) -> (neutrino_common::CpfId, Vec<UeId>) {
    let victim = primary_cpf_for(config, layout, UeId::new(0)).expect("deployment has CPFs");
    let mut probes = Vec::new();
    for u in 0..pool {
        let ue = UeId::new(u);
        if primary_cpf_for(config, layout, ue) == Some(victim) {
            probes.push(ue);
            if probes.len() == count {
                break;
            }
        }
    }
    (victim, probes)
}

/// One cell: handover PCT distribution of the probes under failure.
pub fn failure_cell(config: SystemConfig, rate_pps: u64, duration: Duration) -> Percentiles {
    failure_cell_links(
        config,
        rate_pps,
        duration,
        neutrino_core::LinkProfile::default(),
    )
}

/// [`failure_cell`] with an explicit link profile (latency ablations).
pub fn failure_cell_links(
    config: SystemConfig,
    rate_pps: u64,
    duration: Duration,
    links: neutrino_core::LinkProfile,
) -> Percentiles {
    let layout = RegionLayout::default();
    let pool = UniformParams::pool_for_rate(rate_pps);
    let (victim, probes) = probes_on_victim(&config, layout, pool, PROBES);

    // Background handovers at the figure's rate (attach phase included).
    let (background, measured_start) = uniform_with_pool(
        UniformParams {
            rate_pps,
            duration,
            kind: ProcedureKind::HandoverWithCpfChange,
            ues: pool,
            first_ue: 0,
            start: Instant::ZERO,
        },
        40_000,
    );
    // The probes start handovers shortly before the crash, so the failure
    // lands mid-procedure.
    let fail_at = measured_start + Duration::from_millis(200);
    let probe_arrivals: Vec<Arrival> = probes
        .iter()
        .enumerate()
        .map(|(i, &ue)| Arrival {
            at: fail_at - Duration::from_micros(40 + (i as u64 % 50) * 20),
            ue,
            kind: ProcedureKind::HandoverWithCpfChange,
        })
        .collect();

    let mut merged: Vec<Arrival> = background.into_arrivals().collect();
    merged.extend(probe_arrivals);
    let mut spec = ExperimentSpec::new(config, Workload::from_vec(merged));
    spec.layout = layout;
    spec.failures.push(FailureSpec {
        at: fail_at,
        cpf: victim,
    });
    for &p in &probes {
        spec.uecfg.record_windows_for.insert(p);
    }
    spec.uecfg.pct_sample_every = 64; // probe windows carry the result
    spec.horizon = duration + Duration::from_secs(10);
    spec.links = links;
    let results = run_experiment(spec);

    // Probe PCTs: the window whose start is just before the failure.
    let mut pct = Percentiles::new();
    for w in &results.windows {
        if w.start < fail_at && w.end >= fail_at {
            pct.push(w.end.saturating_since(w.start).as_millis_f64());
        }
    }
    pct
}

/// Fig. 10: handover PCT under failure, 40K–160K PPS, EPC vs Neutrino.
pub fn fig10(profile: Profile) -> Vec<PctPoint> {
    let rates = profile.rates(&[40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000]);
    let duration = Duration::from_millis(profile.duration_ms());
    let mut cells: Vec<Cell<PctPoint>> = Vec::new();
    for &rate in &rates {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || PctPoint {
                x: rate,
                system: config.name.to_string(),
                summary: failure_cell(config, rate, duration).summary(),
            }));
        }
    }
    run_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn failure_recovery_gap_appears_under_load() {
        // The §6.4 gap (≤5.6x) comes from re-attach re-entering loaded ASN.1
        // queues; measure at a rate where the EPC pool is busy.
        let mut epc = failure_cell(
            SystemConfig::existing_epc(),
            50_000,
            Duration::from_millis(400),
        );
        let mut neu = failure_cell(SystemConfig::neutrino(), 50_000, Duration::from_millis(400));
        assert!(epc.count() > 10, "EPC probes measured: {}", epc.count());
        assert!(
            neu.count() > 10,
            "Neutrino probes measured: {}",
            neu.count()
        );
        let (e, n) = (epc.median(), neu.median());
        assert!(
            e > n * 1.5,
            "EPC failure PCT ({e} ms) must clearly exceed Neutrino ({n} ms)"
        );
    }
}
