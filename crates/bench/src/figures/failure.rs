//! Fig. 10: handover PCT under CPF failure.
//!
//! Method (matching §6.4): a cohort of probe UEs — all mapped to one victim
//! CPF — are mid-handover when the victim crashes. Their PCT then includes
//! the pre-failure work plus recovery: log replay at a backup for Neutrino,
//! re-attach for existing EPC. Failure *detection* time is excluded in both
//! systems (the notice is delivered immediately). Background handover load
//! at the figure's x-axis rate provides the queueing context.

use super::{PctPoint, Profile};
use crate::sweep::{run_cells, Cell};
use neutrino_common::stats::Percentiles;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::experiment::{primary_cpf_for, run_experiment, ExperimentSpec, FailureSpec};
use neutrino_core::uepop::Arrival;
use neutrino_core::{SystemConfig, Workload};
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{uniform_with_pool, UniformParams};

/// Number of probe UEs whose failure-inclusive PCT is measured per cell.
const PROBES: usize = 100;

/// Finds `count` pool UEs whose primary is the victim CPF.
fn probes_on_victim(
    config: &SystemConfig,
    layout: RegionLayout,
    pool: u64,
    count: usize,
) -> (neutrino_common::CpfId, Vec<UeId>) {
    let victim = primary_cpf_for(config, layout, UeId::new(0)).expect("deployment has CPFs");
    let mut probes = Vec::new();
    for u in 0..pool {
        let ue = UeId::new(u);
        if primary_cpf_for(config, layout, ue) == Some(victim) {
            probes.push(ue);
            if probes.len() == count {
                break;
            }
        }
    }
    (victim, probes)
}

/// Everything one failure cell produces beyond the PCT distribution:
/// retry/resync activity and the consistency-audit outcome.
#[derive(Debug)]
pub struct FailureOutcome {
    /// Probe PCT distribution (the figure's y-axis).
    pub pct: Percentiles,
    /// Audit passes executed (one per failure + one final).
    pub audit_passes: u64,
    /// Total divergences across all audit passes — must be 0 for Neutrino.
    pub audit_divergences: u64,
    /// UE records checked across all audit passes.
    pub audit_ues_checked: u64,
    /// S1AP retransmissions the UE population sent.
    pub retransmissions: u64,
    /// Checkpoint resends the CTA requested.
    pub resyncs_requested: u64,
    /// Procedures that never finished (incomplete + ACK-timeout pruned).
    pub failed_procedures: u64,
}

/// The fault profile failure figures run under `repro --faults`: the
/// paper's failover experiments assume a lossy edge WAN, so every link
/// drops 1% of messages, duplicates 0.5%, and reorders 2% within 200 µs.
pub fn paper_fault_profile() -> neutrino_netsim::FaultSpec {
    neutrino_netsim::FaultSpec {
        loss: 0.01,
        duplicate: 0.005,
        reorder: 0.02,
        reorder_window: Duration::from_micros(200),
    }
}

/// One cell: handover PCT distribution of the probes under failure.
pub fn failure_cell(config: SystemConfig, rate_pps: u64, duration: Duration) -> Percentiles {
    failure_cell_links(
        config,
        rate_pps,
        duration,
        neutrino_core::LinkProfile::default(),
    )
}

/// [`failure_cell`] with an explicit link profile (latency ablations).
pub fn failure_cell_links(
    config: SystemConfig,
    rate_pps: u64,
    duration: Duration,
    links: neutrino_core::LinkProfile,
) -> Percentiles {
    failure_cell_outcome(config, rate_pps, duration, links).pct
}

/// [`failure_cell_links`] returning the full [`FailureOutcome`] (audit and
/// retry counters included).
pub fn failure_cell_outcome(
    config: SystemConfig,
    rate_pps: u64,
    duration: Duration,
    links: neutrino_core::LinkProfile,
) -> FailureOutcome {
    let layout = RegionLayout::default();
    let pool = UniformParams::pool_for_rate(rate_pps);
    let (victim, probes) = probes_on_victim(&config, layout, pool, PROBES);

    // Background handovers at the figure's rate (attach phase included).
    let (background, measured_start) = uniform_with_pool(
        UniformParams {
            rate_pps,
            duration,
            kind: ProcedureKind::HandoverWithCpfChange,
            ues: pool,
            first_ue: 0,
            start: Instant::ZERO,
        },
        40_000,
    );
    // The probes start handovers shortly before the crash, so the failure
    // lands mid-procedure.
    let fail_at = measured_start + Duration::from_millis(200);
    let probe_arrivals: Vec<Arrival> = probes
        .iter()
        .enumerate()
        .map(|(i, &ue)| Arrival {
            at: fail_at - Duration::from_micros(40 + (i as u64 % 50) * 20),
            ue,
            kind: ProcedureKind::HandoverWithCpfChange,
        })
        .collect();

    let mut merged: Vec<Arrival> = background.into_arrivals().collect();
    merged.extend(probe_arrivals);
    let mut spec = ExperimentSpec::new(config, Workload::from_vec(merged));
    spec.layout = layout;
    spec.failures.push(FailureSpec {
        at: fail_at,
        cpf: victim,
    });
    for &p in &probes {
        spec.uecfg.record_windows_for.insert(p);
    }
    spec.uecfg.pct_sample_every = 64; // probe windows carry the result
    spec.horizon = duration + Duration::from_secs(10);
    spec.links = links;
    let results = run_experiment(spec);

    // Probe PCTs: the window whose start is just before the failure.
    let mut pct = Percentiles::new();
    for w in &results.windows {
        if w.start < fail_at && w.end >= fail_at {
            pct.push(w.end.saturating_since(w.start).as_millis_f64());
        }
    }
    let audit = results.audit.as_ref();
    FailureOutcome {
        pct,
        audit_passes: audit.map(|a| a.passes).unwrap_or(0),
        audit_divergences: audit.map(|a| a.divergences.len() as u64).unwrap_or(0),
        audit_ues_checked: audit.map(|a| a.ues_checked).unwrap_or(0),
        retransmissions: results.retransmissions,
        resyncs_requested: results.cta.resyncs_requested,
        failed_procedures: results.failed_procedures,
    }
}

/// Fig. 10: handover PCT under failure, 40K–160K PPS, EPC vs Neutrino.
pub fn fig10(profile: Profile) -> Vec<PctPoint> {
    let rates = profile.rates(&[40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000]);
    let duration = Duration::from_millis(profile.duration_ms());
    let mut cells: Vec<Cell<PctPoint>> = Vec::new();
    for &rate in &rates {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || PctPoint {
                x: rate,
                system: config.name.to_string(),
                summary: failure_cell(config, rate, duration).summary(),
            }));
        }
    }
    run_cells(cells)
}

/// One point of the fault-injected failure figure: the PCT summary plus the
/// consistency-audit outcome and retry activity of the cell.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FailurePoint {
    /// Background handover rate (procedures/second).
    pub x: u64,
    /// System name.
    pub system: String,
    /// Probe PCT summary (milliseconds).
    pub summary: neutrino_common::stats::Summary,
    /// Audit passes executed for the cell.
    pub audit_passes: u64,
    /// Divergences across all audit passes (0 = consistent throughout).
    pub audit_divergences: u64,
    /// UE records checked across all audit passes.
    pub audit_ues_checked: u64,
    /// S1AP retransmissions the UE population sent.
    pub retransmissions: u64,
    /// Checkpoint resends the CTA requested.
    pub resyncs_requested: u64,
    /// Procedures that never finished (incomplete + ACK-timeout pruned).
    pub failed_procedures: u64,
}

/// [`fig10`] under seeded link faults: every link additionally drops,
/// duplicates, and reorders messages per `faults`. Neutrino cells must
/// audit clean; re-attach baselines report their inconsistency windows as
/// nonzero divergence counts.
pub fn fig10_with(profile: Profile, faults: neutrino_netsim::FaultSpec) -> Vec<FailurePoint> {
    let rates = profile.rates(&[40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000]);
    let duration = Duration::from_millis(profile.duration_ms());
    let links = neutrino_core::LinkProfile {
        faults,
        ..neutrino_core::LinkProfile::default()
    };
    let mut cells: Vec<Cell<FailurePoint>> = Vec::new();
    for &rate in &rates {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || {
                let name = config.name;
                let mut o = failure_cell_outcome(config, rate, duration, links);
                FailurePoint {
                    x: rate,
                    system: name.to_string(),
                    summary: o.pct.summary(),
                    audit_passes: o.audit_passes,
                    audit_divergences: o.audit_divergences,
                    audit_ues_checked: o.audit_ues_checked,
                    retransmissions: o.retransmissions,
                    resyncs_requested: o.resyncs_requested,
                    failed_procedures: o.failed_procedures,
                }
            }));
        }
    }
    run_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn failure_recovery_gap_appears_under_load() {
        // The §6.4 gap (≤5.6x) comes from re-attach re-entering loaded ASN.1
        // queues; measure at a rate where the EPC pool is busy.
        let mut epc = failure_cell(
            SystemConfig::existing_epc(),
            50_000,
            Duration::from_millis(400),
        );
        let mut neu = failure_cell(SystemConfig::neutrino(), 50_000, Duration::from_millis(400));
        assert!(epc.count() > 10, "EPC probes measured: {}", epc.count());
        assert!(
            neu.count() > 10,
            "Neutrino probes measured: {}",
            neu.count()
        );
        let (e, n) = (epc.median(), neu.median());
        assert!(
            e > n * 1.5,
            "EPC failure PCT ({e} ms) must clearly exceed Neutrino ({n} ms)"
        );
    }
}
