//! Overload figure: admitted-vs-offered throughput and per-class latency
//! percentiles under a flash-crowd storm, admission gated vs ungated.
//!
//! Method: a region of UEs attaches, idles through a steady service-request
//! phase, then a CPF blackout hits and the whole region re-attaches at once
//! at the x-axis surge rate. The gated rows run the CTA ingress admission
//! layer (DESIGN.md §7b) at [`ADMISSION_RATE_PPS`]; the ungated rows run
//! the identical storm with admission off — their queue depths demonstrate
//! the overflow the gate prevents. CI asserts the contrast (gated depth ≤
//! cap and audit clean; some ungated depth > cap).

use super::Profile;
use crate::sweep::{run_cells, Cell};
use neutrino_common::stats::Summary;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::experiment::{primary_cpf_for, run_experiment, ExperimentSpec, FailureSpec};
use neutrino_core::{SystemConfig, Workload};
use neutrino_cta::AdmissionParams;
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{flash_crowd_reattach, FlashCrowdParams};
use serde::Serialize;

/// Admission rate every gated cell runs at (procedures/second). The bucket
/// sizing derives from it: burst = rate/8, queue cap = rate/4.
pub const ADMISSION_RATE_PPS: u64 = 4_000;

/// Steady-phase service-request rate between attach and blackout.
const STEADY_PPS: u64 = 600;

/// One cell of the overload figure.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadPoint {
    /// Offered re-attach surge rate (procedures/second) — the x-axis.
    pub x: u64,
    /// System label (`Neutrino (gated)` / `Neutrino (ungated)`).
    pub system: String,
    /// Whether the admission layer was enabled.
    pub gated: bool,
    /// Queue cap the admission sizing targets (binds gated rows only).
    pub queue_cap: u64,
    /// Largest control-plane engine queue depth observed.
    pub max_queue_depth: u64,
    /// Arrivals the workload offered (all classes).
    pub offered: u64,
    /// Procedures admitted through the gate, by class (HO, SR, Attach, Detach).
    pub admitted: Vec<u64>,
    /// Procedures shed at the gate, by class.
    pub shed: Vec<u64>,
    /// `Reject` frames UEs received.
    pub rejected: u64,
    /// S1AP retransmissions the UE population sent.
    pub retransmissions: u64,
    /// Procedures abandoned after exhausting the retry budget.
    pub retries_exhausted: u64,
    /// Procedures that never finished.
    pub failed_procedures: u64,
    /// Consistency-audit divergences (must be 0 — gated or not, shedding
    /// and overflow may cost latency but never consistency).
    pub audit_divergences: u64,
    /// Attach-class PCT summary (milliseconds) for admitted work.
    pub attach: Summary,
    /// Service-request-class PCT summary (milliseconds) for admitted work.
    pub service_request: Summary,
}

/// One storm cell: flash-crowd re-attach at `surge_rate_pps`, with or
/// without the admission gate.
fn overload_cell(gated: bool, surge_rate_pps: u64, ues: u64, steady: Duration) -> OverloadPoint {
    let params = AdmissionParams::for_rate(ADMISSION_RATE_PPS);
    let queue_cap = params.queue_cap;
    let mut config = SystemConfig::neutrino();
    if gated {
        config = config.with_admission(params);
    }
    let (workload, sched) = flash_crowd_reattach(FlashCrowdParams {
        ues,
        first_ue: 0,
        steady_pps: STEADY_PPS,
        // Pace the pre-storm attach at half the admission rate so the
        // setup phase registers without tripping the gate itself.
        attach_pps: ADMISSION_RATE_PPS / 2,
        steady,
        surge_delay: Duration::from_millis(300),
        surge_rate_pps,
        tail: Duration::from_millis(500),
        start: Instant::ZERO,
    });
    let arrivals: Vec<_> = workload.into_arrivals().collect();
    let offered = arrivals.len() as u64;

    let layout = RegionLayout::default();
    let victim =
        primary_cpf_for(&config, layout, UeId::new(0)).expect("deployment has CPFs");
    let mut spec = ExperimentSpec::new(config, Workload::from_vec(arrivals));
    spec.layout = layout;
    // The blackout that synchronizes the herd: a CPF crash at steady end.
    spec.failures.push(FailureSpec {
        at: sched.blackout_at,
        cpf: victim,
    });
    spec.horizon = sched.end.saturating_since(Instant::ZERO) + Duration::from_secs(5);
    let mut results = run_experiment(spec);

    OverloadPoint {
        x: surge_rate_pps,
        system: if gated {
            "Neutrino (gated)".to_string()
        } else {
            "Neutrino (ungated)".to_string()
        },
        gated,
        queue_cap,
        max_queue_depth: results.max_queue_depth as u64,
        offered,
        admitted: results.cta.admitted_by_class.to_vec(),
        shed: results.cta.shed_by_class.to_vec(),
        rejected: results.rejected,
        retransmissions: results.retransmissions,
        retries_exhausted: results.retries_exhausted,
        failed_procedures: results.failed_procedures,
        audit_divergences: results
            .audit
            .as_ref()
            .map(|a| a.divergences.len() as u64)
            .unwrap_or(0),
        attach: results.summary(ProcedureKind::InitialAttach),
        service_request: results.summary(ProcedureKind::ServiceRequest),
    }
}

/// The overload figure: gated vs ungated flash crowds across surge rates.
pub fn overload(profile: Profile) -> Vec<OverloadPoint> {
    let surges = profile.rates(&[120_000, 240_000, 360_000]);
    let ues = match profile {
        Profile::Quick => 4_000,
        Profile::Full => 8_000,
    };
    let steady = Duration::from_millis(profile.duration_ms());
    let mut cells: Vec<Cell<OverloadPoint>> = Vec::new();
    for &surge in &surges {
        for gated in [true, false] {
            cells.push(Box::new(move || overload_cell(gated, surge, ues, steady)));
        }
    }
    run_cells(cells)
}
