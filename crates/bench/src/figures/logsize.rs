//! Fig. 17: CTA message-log size vs. active users, for attach and handover
//! procedures under per-procedure synchronization.

use super::Profile;
use crate::sweep::{run_cells, Cell};
use neutrino_common::time::{Duration, Instant};
use neutrino_core::experiment::{run_experiment, ExperimentSpec};
use neutrino_core::SystemConfig;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{bursty_attach, BurstParams};
use serde::Serialize;

/// One point of Fig. 17.
#[derive(Debug, Clone, Serialize)]
pub struct LogSizePoint {
    /// Active users.
    pub users: u64,
    /// Procedure being performed.
    pub procedure: String,
    /// Peak log footprint in bytes across CTAs.
    pub max_log_bytes: usize,
}

/// One cell: N active users all run `kind`; report the peak log footprint.
pub fn log_cell(kind: ProcedureKind, users: u64) -> usize {
    let config = SystemConfig::neutrino();
    let workload = if kind == ProcedureKind::InitialAttach {
        bursty_attach(BurstParams {
            active_users: users,
            window: Duration::from_millis(500),
            kind,
            first_ue: 0,
            start: Instant::from_millis(10),
        })
    } else {
        // Handovers need attached UEs first: a paced attach phase (whose
        // log prunes as it goes), then every user hands over in one
        // synchronized window — the same burst shape as the attach series.
        let attach_spacing_ns = 1_000_000_000 / 50_000;
        let attach_end =
            Duration::from_nanos(users * attach_spacing_ns) + Duration::from_millis(300);
        let attaches = (0..users).map(move |i| neutrino_core::uepop::Arrival {
            at: Instant::ZERO + Duration::from_nanos(i * attach_spacing_ns),
            ue: neutrino_common::UeId::new(i),
            kind: ProcedureKind::InitialAttach,
        });
        let hos = bursty_attach(BurstParams {
            active_users: users,
            window: Duration::from_millis(500),
            kind,
            first_ue: 0,
            start: Instant::ZERO + attach_end,
        });
        neutrino_core::Workload::new(attaches.chain(hos.into_arrivals()))
    };
    let mut spec = ExperimentSpec::new(config, workload);
    spec.horizon = Duration::from_secs(600);
    spec.uecfg.pct_sample_every = 64;
    spec.uecfg.retry_timeout = Duration::from_secs(120);
    let results = run_experiment(spec);
    results.max_log_bytes
}

/// Fig. 17's user counts.
pub fn fig17_users(profile: Profile) -> Vec<u64> {
    match profile {
        Profile::Quick => vec![5_000, 20_000],
        Profile::Full => vec![10_000, 50_000, 100_000, 200_000],
    }
}

/// Fig. 17: peak log size for attach and handover bursts.
pub fn fig17(profile: Profile) -> Vec<LogSizePoint> {
    let mut cells: Vec<Cell<LogSizePoint>> = Vec::new();
    for &users in &fig17_users(profile) {
        for kind in [
            ProcedureKind::InitialAttach,
            ProcedureKind::HandoverWithCpfChange,
        ] {
            cells.push(Box::new(move || LogSizePoint {
                users,
                procedure: kind.name().to_string(),
                max_log_bytes: log_cell(kind, users),
            }));
        }
    }
    run_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn log_grows_with_users_and_stays_bounded() {
        let small = log_cell(ProcedureKind::InitialAttach, 2_000);
        let big = log_cell(ProcedureKind::InitialAttach, 10_000);
        assert!(small > 0);
        assert!(
            big > small * 2,
            "peak log must grow with the burst: {small} vs {big}"
        );
        // The paper's bound: even 200K users stay under 400 MB. Our 10K
        // burst must be well under proportionally (≤ 20 MB).
        assert!(big < 20_000_000, "log too large: {big} bytes");
    }
}
