//! Figures 7, 8, 15, 16: procedure completion time vs. uniform arrival rate.

use super::{PctPoint, Profile};
use crate::sweep::{run_cells, Cell};
use neutrino_common::stats::Summary;
use neutrino_common::time::{Duration, Instant};
use neutrino_core::experiment::{run_experiment, ExperimentSpec};
use neutrino_core::{SystemConfig, Workload};
use neutrino_messages::procedures::ProcedureKind;
use neutrino_trafficgen::{uniform, uniform_with_pool, UniformParams};

/// Runs one uniform-rate cell and summarizes the measured kind's PCT.
pub fn uniform_pct_cell(
    config: SystemConfig,
    kind: ProcedureKind,
    rate_pps: u64,
    duration: Duration,
) -> Summary {
    let (workload, measure_kind) = build_workload(kind, rate_pps, duration);
    let mut spec = ExperimentSpec::new(config, workload);
    // Saturated cells would otherwise drain for a long time; everything the
    // paper reports comes from procedures completing within the window.
    spec.horizon = duration + Duration::from_secs(8);
    spec.uecfg.pct_sample_every = if rate_pps > 60_000 { 4 } else { 1 };
    let mut results = run_experiment(spec);
    // The proactive policy may have rewritten the executed kind.
    let mut s = results.summary(measure_kind);
    if s.count == 0 && measure_kind == ProcedureKind::HandoverWithCpfChange {
        s = results.summary(ProcedureKind::FastHandover);
    }
    s
}

/// Builds the workload for a measured kind: attach procedures run directly
/// (each arrival is an attach); other kinds get an attach phase first.
fn build_workload(
    kind: ProcedureKind,
    rate_pps: u64,
    duration: Duration,
) -> (Workload, ProcedureKind) {
    if kind == ProcedureKind::InitialAttach {
        let pool = (rate_pps * duration.as_nanos() / 1_000_000_000).max(1_000);
        let w = uniform(UniformParams {
            rate_pps,
            duration,
            kind,
            ues: pool,
            first_ue: 0,
            start: Instant::ZERO,
        });
        (w, kind)
    } else {
        let pool = UniformParams::pool_for_rate(rate_pps);
        let (w, _) = uniform_with_pool(
            UniformParams {
                rate_pps,
                duration,
                kind,
                ues: pool,
                first_ue: 0,
                start: Instant::ZERO,
            },
            40_000,
        );
        (w, kind)
    }
}

fn sweep(
    systems: Vec<SystemConfig>,
    kind: ProcedureKind,
    rates: &[u64],
    profile: Profile,
) -> Vec<PctPoint> {
    let duration = Duration::from_millis(profile.duration_ms());
    let mut cells: Vec<Cell<PctPoint>> = Vec::new();
    for &rate in &profile.rates(rates) {
        for config in &systems {
            let config = config.clone();
            cells.push(Box::new(move || PctPoint {
                x: rate,
                system: config.name.to_string(),
                summary: uniform_pct_cell(config, kind, rate, duration),
            }));
        }
    }
    run_cells(cells)
}

/// Fig. 7: `service request` PCT, 100K–220K PPS, existing EPC / DPCM /
/// SkyCore / Neutrino.
pub fn fig7(profile: Profile) -> Vec<PctPoint> {
    sweep(
        SystemConfig::comparison_set(),
        ProcedureKind::ServiceRequest,
        // The paper's axis starts at 100K; the 40–80K points expose the
        // pre-knee comparison region, which sits lower on our calibrated
        // substrate (see EXPERIMENTS.md).
        &[
            40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000, 180_000, 200_000, 220_000,
        ],
        profile,
    )
}

/// Fig. 8: `attach` PCT, 40K–160K PPS, existing EPC vs Neutrino.
pub fn fig8(profile: Profile) -> Vec<PctPoint> {
    sweep(
        vec![SystemConfig::existing_epc(), SystemConfig::neutrino()],
        ProcedureKind::InitialAttach,
        &[40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000],
        profile,
    )
}

/// Fig. 15: state-synchronization ablation on `attach` PCT — No Rep /
/// Per Msg Rep / Per Proc Rep.
pub fn fig15(profile: Profile) -> Vec<PctPoint> {
    sweep(
        vec![
            SystemConfig::neutrino_no_replication(),
            SystemConfig::neutrino_per_message(),
            SystemConfig::neutrino(),
        ],
        ProcedureKind::InitialAttach,
        &[20_000, 40_000, 60_000, 80_000, 100_000],
        profile,
    )
}

/// Fig. 16: CTA message logging on/off on `attach` PCT.
pub fn fig16(profile: Profile) -> Vec<PctPoint> {
    sweep(
        vec![
            SystemConfig::neutrino(),
            SystemConfig::neutrino_no_logging(),
        ],
        ProcedureKind::InitialAttach,
        &[20_000, 40_000, 60_000, 80_000, 100_000, 120_000, 140_000],
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn fig8_quick_shows_the_epc_gap() {
        let points = fig8(Profile::Quick);
        assert_eq!(points.len(), 4); // 2 rates × 2 systems
        let epc = points
            .iter()
            .find(|p| p.system == "ExistingEPC" && p.x == 40_000)
            .unwrap();
        let neu = points
            .iter()
            .find(|p| p.system == "Neutrino" && p.x == 40_000)
            .unwrap();
        assert!(
            epc.summary.p50 > neu.summary.p50,
            "EPC {} vs Neutrino {}",
            epc.summary.p50,
            neu.summary.p50
        );
        assert!(neu.summary.count > 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn fig16_quick_logging_is_nearly_free() {
        let points = fig16(Profile::Quick);
        let on = points
            .iter()
            .find(|p| p.system == "Neutrino" && p.x == 20_000)
            .unwrap();
        let off = points
            .iter()
            .find(|p| p.system == "Neutrino-NoLog" && p.x == 20_000)
            .unwrap();
        let diff = (on.summary.p50 - off.summary.p50).abs();
        assert!(
            diff < on.summary.p50 * 0.25 + 0.05,
            "logging overhead too visible: {} vs {}",
            on.summary.p50,
            off.summary.p50
        );
    }
}
