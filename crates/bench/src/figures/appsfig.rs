//! Figures 3, 13, 14: application-level impact.

use super::Profile;
use crate::sweep::{run_cells, Cell};
use neutrino_apps::experiments::{drive_experiment, startup_experiment, StartupOutcome};
use neutrino_common::time::Duration;
use neutrino_core::SystemConfig;
use serde::Serialize;

/// One Fig. 3 row.
#[derive(Debug, Clone, Serialize)]
pub struct StartupPoint {
    /// Active users per second (service-request rate).
    pub rate: u64,
    /// System name.
    pub system: String,
    /// Outcomes (milliseconds).
    pub video_startup_ms: f64,
    /// Page load time (milliseconds).
    pub page_load_ms: f64,
    /// The underlying service-request PCT (milliseconds).
    pub pct_ms: f64,
}

/// Fig. 3's x-axis.
pub fn fig3_rates(profile: Profile) -> Vec<u64> {
    match profile {
        Profile::Quick => vec![180_000, 260_000],
        Profile::Full => vec![
            180_000, 200_000, 220_000, 240_000, 260_000, 280_000, 300_000,
        ],
    }
}

/// Fig. 3: video startup delay and page load time vs. active users/second.
pub fn fig3(profile: Profile) -> Vec<StartupPoint> {
    let mut cells: Vec<Cell<StartupPoint>> = Vec::new();
    for &rate in &fig3_rates(profile) {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || {
                let name = config.name.to_string();
                let o: StartupOutcome = startup_experiment(config, rate);
                StartupPoint {
                    rate,
                    system: name,
                    video_startup_ms: o.video_startup_ms,
                    page_load_ms: o.page_load_ms,
                    pct_ms: o.service_request_pct_ms,
                }
            }));
        }
    }
    run_cells(cells)
}

/// One Fig. 13/14 row.
#[derive(Debug, Clone, Serialize)]
pub struct DrivePoint {
    /// Active users generating background signaling.
    pub active_users: u64,
    /// System name.
    pub system: String,
    /// Single- or multiple-handover scenario.
    pub single_handover: bool,
    /// Packets missing their deadline, extrapolated to the full 5-minute
    /// drive.
    pub missed_deadlines: u64,
}

/// User counts of Figs. 13/14.
pub fn drive_users(profile: Profile) -> Vec<u64> {
    match profile {
        Profile::Quick => vec![50_000],
        Profile::Full => vec![50_000, 100_000, 200_000, 500_000],
    }
}

fn drive_fig(profile: Profile, rate_hz: u64, deadline: Duration) -> Vec<DrivePoint> {
    let mut cells: Vec<Cell<DrivePoint>> = Vec::new();
    for &users in &drive_users(profile) {
        for single in [true, false] {
            if profile == Profile::Quick && !single {
                continue;
            }
            for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
                cells.push(Box::new(move || {
                    let name = config.name.to_string();
                    let o = drive_experiment(config, users, single, rate_hz, deadline);
                    DrivePoint {
                        active_users: users,
                        system: name,
                        single_handover: single,
                        missed_deadlines: o.missed_full_drive,
                    }
                }));
            }
        }
    }
    run_cells(cells)
}

/// Fig. 13: the self-driving car (1 kHz sensors, 100 ms budget \[55\]).
pub fn fig13(profile: Profile) -> Vec<DrivePoint> {
    drive_fig(profile, 1_000, Duration::from_millis(100))
}

/// Fig. 14: the VR stream (16 ms perceptual budget \[53\]).
pub fn fig14(profile: Profile) -> Vec<DrivePoint> {
    drive_fig(profile, 1_000, Duration::from_millis(16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn fig13_quick_epc_misses_more() {
        let points = fig13(Profile::Quick);
        let epc = points
            .iter()
            .find(|p| p.system == "ExistingEPC")
            .unwrap()
            .missed_deadlines;
        let neu = points
            .iter()
            .find(|p| p.system == "Neutrino")
            .unwrap()
            .missed_deadlines;
        assert!(epc > neu, "EPC must miss more deadlines: {epc} vs {neu}");
    }
}
