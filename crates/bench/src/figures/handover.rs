//! Fig. 11: fast handover — existing EPC vs Neutrino-Default (on-demand
//! migration) vs Neutrino-Proactive (level-2 replica already in place).

use super::{PctPoint, Profile};
use crate::figures::pct::uniform_pct_cell;
use crate::sweep::{run_cells, Cell};
use neutrino_common::time::Duration;
use neutrino_core::SystemConfig;
use neutrino_messages::procedures::ProcedureKind;

/// Fig. 11's three systems.
pub fn systems() -> Vec<SystemConfig> {
    vec![
        SystemConfig::existing_epc(),
        SystemConfig::neutrino_default_handover(),
        SystemConfig::neutrino(), // proactive
    ]
}

/// Fig. 11: handover PCT, 40K–160K PPS.
pub fn fig11(profile: Profile) -> Vec<PctPoint> {
    let rates = profile.rates(&[40_000, 60_000, 80_000, 100_000, 120_000, 140_000, 160_000]);
    let duration = Duration::from_millis(profile.duration_ms());
    let mut cells: Vec<Cell<PctPoint>> = Vec::new();
    for &rate in &rates {
        for config in systems() {
            cells.push(Box::new(move || {
                let name = match config.name {
                    "Neutrino" => "Neutrino-Proactive".to_string(),
                    other => other.to_string(),
                };
                PctPoint {
                    x: rate,
                    system: name,
                    summary: uniform_pct_cell(
                        config,
                        ProcedureKind::HandoverWithCpfChange,
                        rate,
                        duration,
                    ),
                }
            }));
        }
    }
    run_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "simulation-scale test; run with --release"
    )]
    fn fig11_quick_ordering_holds() {
        let points = fig11(Profile::Quick);
        let rate = points[0].x;
        let get = |name: &str| {
            points
                .iter()
                .find(|p| p.system == name && p.x == rate)
                .map(|p| p.summary.p50)
                .unwrap()
        };
        let epc = get("ExistingEPC");
        let default = get("Neutrino-Default");
        let proactive = get("Neutrino-Proactive");
        assert!(
            epc > default && default > proactive,
            "Fig. 11 ordering: EPC ({epc}) > Default ({default}) > Proactive ({proactive})"
        );
        // The paper reports ≤7x proactive-vs-EPC and ≤3.1x default-vs-EPC.
        assert!(
            epc / proactive > 2.0,
            "proactive advantage too small: {:.2}x",
            epc / proactive
        );
    }
}
