//! Plain-text rendering of figure series.

use neutrino_common::stats::Summary;

/// Renders a header line.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Renders one labeled summary row (the box-plot figures).
pub fn pct_row(x_label: &str, system: &str, s: &Summary) {
    println!(
        "{x_label:>10}  {system:<18} p25={:>10.3}ms  p50={:>10.3}ms  p75={:>10.3}ms  p95={:>10.3}ms  n={}",
        s.p25, s.p50, s.p75, s.p95, s.count
    );
}

/// Renders a generic key/value row.
pub fn kv_row(x_label: &str, system: &str, key: &str, value: f64, unit: &str) {
    println!("{x_label:>10}  {system:<18} {key}={value:.3}{unit}");
}

/// A ratio annotation ("Neutrino is 2.3x better").
pub fn ratio_note(label: &str, num: f64, den: f64) {
    if den > 0.0 && num.is_finite() && den.is_finite() {
        println!("   -> {label}: {:.2}x", num / den);
    }
}
