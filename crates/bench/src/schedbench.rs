//! Scheduler microbench core: calendar-queue wheel vs. binary-heap
//! reference on a shared deterministic workload.
//!
//! Both the `wheel` criterion bench and `repro --bench-out` (the
//! `engine_wheel` key in BENCH_netsim.json) run these drivers, so the
//! numbers they report come from the identical push/pop schedule.

use neutrino_common::time::Instant;
use neutrino_netsim::{ReferenceHeap, SchedKey, Wheel};
use serde::Serialize;

/// One measured wheel-vs-heap comparison (`engine_wheel` entries in
/// BENCH_netsim.json).
#[derive(Debug, Serialize)]
pub struct SchedBenchPoint {
    /// Keys resident in the scheduler throughout the run.
    pub pending: u64,
    /// Push+pop pairs timed.
    pub ops: u64,
    /// Wheel throughput in push+pop operations per second.
    pub wheel_ops_per_sec: f64,
    /// Binary-heap reference throughput in push+pop operations per second.
    pub heap_ops_per_sec: f64,
    /// `wheel_ops_per_sec / heap_ops_per_sec`.
    pub speedup: f64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An engine-like delay mix, matching what the figure workloads schedule:
/// mostly sub-millisecond hops, some ACK/paging timers in the tens-of-ms
/// band, a few zero-delay self-sends, and a 1% tail of seconds-scale
/// timers (log-pruning scans). Correctness for pathological far-future
/// delays is covered by the order-equivalence proptest, not timed here.
fn next_delay(rng: &mut u64) -> u64 {
    match splitmix64(rng) % 100 {
        0..=4 => 0,                                       // same-instant self-send
        5..=91 => splitmix64(rng) % 2_000_000,            // < 2 ms hop
        92..=98 => splitmix64(rng) % 200_000_000,         // < 200 ms timer
        _ => 1_000_000_000 + splitmix64(rng) % (1 << 39), // seconds-scale timer
    }
}

/// Drives `total` push+pop pairs with `pending` keys resident, like the
/// engine does: every pop schedules a successor. Returns a checksum so
/// the work cannot be optimized away.
pub fn drive_wheel(total: u64, pending: u64) -> u64 {
    let mut w: Wheel<u64> = Wheel::new();
    let mut rng = 0x5EED_u64;
    let mut seq = 0u64;
    for _ in 0..pending {
        let at = Instant::from_nanos(next_delay(&mut rng));
        w.push(SchedKey { at, seq }, seq);
        seq += 1;
    }
    let mut sum = 0u64;
    for _ in 0..total {
        let (key, v) = w.pop().expect("pending keys resident");
        sum = sum.wrapping_add(key.at.as_nanos()).wrapping_add(v);
        let at = Instant::from_nanos(key.at.as_nanos() + next_delay(&mut rng));
        w.push(SchedKey { at, seq }, seq);
        seq += 1;
    }
    sum
}

/// The same workload through the binary-heap reference implementation.
pub fn drive_heap(total: u64, pending: u64) -> u64 {
    let mut h: ReferenceHeap<u64> = ReferenceHeap::new();
    let mut rng = 0x5EED_u64;
    let mut seq = 0u64;
    for _ in 0..pending {
        let at = Instant::from_nanos(next_delay(&mut rng));
        h.push(SchedKey { at, seq }, seq);
        seq += 1;
    }
    let mut sum = 0u64;
    for _ in 0..total {
        let (key, v) = h.pop().expect("pending keys resident");
        sum = sum.wrapping_add(key.at.as_nanos()).wrapping_add(v);
        let at = Instant::from_nanos(key.at.as_nanos() + next_delay(&mut rng));
        h.push(SchedKey { at, seq }, seq);
        seq += 1;
    }
    sum
}

/// Times wheel-vs-heap at `pending` resident keys over `total` push+pop
/// pairs. Asserts the two dispatch identically (the wheel's contract)
/// before timing, so the comparison is purely data-structure cost.
pub fn measure(total: u64, pending: u64) -> SchedBenchPoint {
    assert_eq!(
        drive_wheel(total.min(100_000), pending),
        drive_heap(total.min(100_000), pending),
        "wheel and heap must dispatch identically"
    );
    let start = std::time::Instant::now();
    let s1 = drive_wheel(total, pending);
    let wheel_secs = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let s2 = drive_heap(total, pending);
    let heap_secs = start.elapsed().as_secs_f64();
    assert_eq!(s1, s2, "wheel and heap must dispatch identically");
    let wheel_ops_per_sec = total as f64 / wheel_secs;
    let heap_ops_per_sec = total as f64 / heap_secs;
    SchedBenchPoint {
        pending,
        ops: total,
        wheel_ops_per_sec,
        heap_ops_per_sec,
        speedup: heap_secs / wheel_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_and_heap_checksums_agree() {
        for pending in [1, 64, 4096] {
            assert_eq!(drive_wheel(20_000, pending), drive_heap(20_000, pending));
        }
    }
}
