//! Parallel figure-cell executor.
//!
//! Every figure is a grid of independent experiment cells (config × kind ×
//! rate × seed). Each figure module enumerates its grid as boxed closures
//! in a fixed order; [`run_cells`] executes them across a scoped worker
//! pool and returns results **in input order**, so the rendered tables and
//! the emitted JSON are byte-identical to a sequential run regardless of
//! the worker count.
//!
//! The worker count comes from [`set_jobs`] (the `repro --jobs N` flag) and
//! defaults to [`std::thread::available_parallelism`]. Workers also drain
//! the engine's per-run perf records ([`drain_run_perf`]) around each cell,
//! so `repro --bench-out` can attribute simulator events/sec to individual
//! figure cells; see [`take_cell_perf`].

use neutrino_core::experiment::drain_run_perf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of figure work: runs on exactly one worker thread.
pub type Cell<T> = Box<dyn FnOnce() -> T + Send>;

/// Configured worker count; 0 = auto (`available_parallelism`).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Engine perf attributed to the cells of the most recent sweep(s).
static CELL_PERF: Mutex<Vec<CellPerf>> = Mutex::new(Vec::new());

/// Engine throughput of one executed cell (summed over the simulation runs
/// the cell performed — failure cells, for instance, run one experiment;
/// a cell that runs none reports zeros).
#[derive(Debug, Clone, Copy)]
pub struct CellPerf {
    /// The cell's index in its sweep's input order.
    pub index: usize,
    /// Simulation runs the cell executed.
    pub runs: usize,
    /// Engine events processed across those runs.
    pub events_processed: u64,
    /// Host time the engine spent inside `run_until` across those runs.
    pub sim_wall: std::time::Duration,
}

impl CellPerf {
    /// Engine throughput of this cell in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.sim_wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events_processed as f64 / secs
        }
    }
}

/// Overrides the worker count for all subsequent sweeps (0 = auto).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective worker count: the [`set_jobs`] override, else the host's
/// available parallelism.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Drains the per-cell engine perf accumulated since the last call.
pub fn take_cell_perf() -> Vec<CellPerf> {
    let mut perf = std::mem::take(&mut *CELL_PERF.lock().unwrap());
    perf.sort_by_key(|p| p.index);
    perf
}

/// Executes `cells` across the configured worker pool, returning results in
/// input order. With one worker (or one cell) this degenerates to a plain
/// sequential loop on the calling thread.
pub fn run_cells<T: Send>(cells: Vec<Cell<T>>) -> Vec<T> {
    run_cells_with(jobs(), cells)
}

/// [`run_cells`] with an explicit worker count.
pub fn run_cells_with<T: Send>(jobs: usize, cells: Vec<Cell<T>>) -> Vec<T> {
    let n = cells.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| run_one(index, cell))
            .collect();
    }

    // Work queue in reverse so `pop()` hands cells out in input order;
    // each worker writes its result into the cell's input-order slot.
    let queue: Mutex<Vec<(usize, Cell<T>)>> =
        Mutex::new(cells.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                let Some((index, cell)) = next else { break };
                let out = run_one(index, cell);
                results.lock().unwrap()[index] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker pool ran every cell"))
        .collect()
}

/// Runs one cell on the current thread, attributing the engine perf of the
/// simulation runs it performs.
fn run_one<T>(index: usize, cell: Cell<T>) -> T {
    // Anything left over belongs to no cell (e.g. a direct run_experiment
    // call outside a sweep); discard so attribution stays per-cell.
    let _ = drain_run_perf();
    let out = cell();
    let runs = drain_run_perf();
    let perf = CellPerf {
        index,
        runs: runs.len(),
        events_processed: runs.iter().map(|r| r.events_processed).sum(),
        sim_wall: runs.iter().map(|r| r.wall).sum(),
    };
    CELL_PERF.lock().unwrap().push(perf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let cells: Vec<Cell<usize>> = (0usize..32)
            .map(|i| {
                Box::new(move || {
                    // Uneven cell cost: later cells finish before earlier
                    // ones unless ordering is enforced at collection.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 7) as u64 * 100,
                    ));
                    i * 10
                }) as Cell<usize>
            })
            .collect();
        let out = run_cells_with(8, cells);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let make = || -> Vec<Cell<u64>> {
            (0..16)
                .map(|i| Box::new(move || (i as u64).wrapping_mul(0x9E37)) as Cell<u64>)
                .collect()
        };
        assert_eq!(run_cells_with(1, make()), run_cells_with(8, make()));
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let none: Vec<Cell<u8>> = Vec::new();
        assert!(run_cells_with(8, none).is_empty());
        let one: Vec<Cell<u8>> = vec![Box::new(|| 7)];
        assert_eq!(run_cells_with(64, one), vec![7]);
    }

    #[test]
    fn jobs_default_is_host_parallelism() {
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
    }
}
