//! Criterion benchmarks of the substrates: the discrete-event engine, the
//! consistent hash rings, the CTA message log, and the CPF procedure
//! machine — the pieces whose per-operation costs everything else rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use neutrino_common::clock::ClockTick;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, UeId, UpfId};
use neutrino_cpf::{CpfConfig, CpfCore};
use neutrino_cta::{CtaConfig, CtaCore};
use neutrino_geo::RingStack;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::sysmsg::{S11Response, SessionOp, SysMsg};
use neutrino_messages::{Envelope, MessageKind};
use neutrino_netsim::{LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, Sim};

/// A node that forwards each message to a peer (ping-pong pair).
struct Forwarder {
    peer: NodeId,
    hops_left: u32,
}

impl Node<u32> for Forwarder {
    fn service_time(&self, _msg: &u32) -> Duration {
        Duration::from_nanos(500)
    }
    fn handle(&mut self, event: NodeEvent<u32>, out: &mut Outbox<u32>) {
        if let NodeEvent::Message { msg, .. } = event {
            if msg > 0 {
                out.send(self.peer, msg - 1);
            }
        }
        self.hops_left = self.hops_left.saturating_sub(1);
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("netsim_100k_events", |b| {
        b.iter(|| {
            let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(5)));
            let mut sim = Sim::new(links);
            let a = NodeId::new(1);
            let bnode = NodeId::new(2);
            sim.add_node(
                a,
                Box::new(Forwarder {
                    peer: bnode,
                    hops_left: 0,
                }),
            );
            sim.add_node(
                bnode,
                Box::new(Forwarder {
                    peer: a,
                    hops_left: 0,
                }),
            );
            // One injected message bounces 100 000 times.
            sim.inject_at(Instant::ZERO, a, 100_000u32);
            sim.run_to_completion();
            std::hint::black_box(sim.events_processed())
        });
    });
}

fn bench_ring_lookup(c: &mut Criterion) {
    let l1: Vec<CpfId> = (0..5).map(CpfId::new).collect();
    let l2: Vec<CpfId> = (5..20).map(CpfId::new).collect();
    let ring = RingStack::new(&l1, &l2, 2);
    c.bench_function("ring_primary_plus_backups", |b| {
        let mut ue = 0u64;
        b.iter(|| {
            ue += 1;
            let p = ring.primary(UeId::new(ue));
            let backs = ring.backups(UeId::new(ue));
            std::hint::black_box((p, backs))
        });
    });
}

fn ul(ue: u64, proc: u64, kind: ProcedureKind, msg: MessageKind, clock: u64) -> Envelope {
    let mut e = Envelope::uplink(UeId::new(ue), ProcedureId::new(proc), kind, msg.sample(ue))
        .from_bs(BsId::new(0));
    e.clock = ClockTick(clock);
    e.via_cta = Some(CtaId::new(0));
    e
}

fn bench_cta_pipeline(c: &mut Criterion) {
    c.bench_function("cta_log_route_1k_msgs", |b| {
        b.iter(|| {
            let l1: Vec<CpfId> = (0..5).map(CpfId::new).collect();
            let l2: Vec<CpfId> = (5..20).map(CpfId::new).collect();
            let mut cta = CtaCore::new(
                CtaConfig::neutrino(CtaId::new(0), neutrino_codec::CodecKind::FastbufOptimized),
                RingStack::new(&l1, &l2, 2),
            );
            for i in 0..1_000u64 {
                let env = ul(
                    i % 64,
                    i / 64 + 1,
                    ProcedureKind::ServiceRequest,
                    MessageKind::ServiceRequest,
                    0,
                );
                std::hint::black_box(cta.on_uplink(env, Instant::ZERO));
            }
            std::hint::black_box(cta.log_bytes())
        });
    });
}

fn bench_cpf_attach_machine(c: &mut Criterion) {
    c.bench_function("cpf_full_attach_procedure", |b| {
        let l1: Vec<CpfId> = (0..5).map(CpfId::new).collect();
        let l2: Vec<CpfId> = (5..20).map(CpfId::new).collect();
        let ring = RingStack::new(&l1, &l2, 2);
        let mut cpf = CpfCore::new(CpfConfig::neutrino(
            CpfId::new(0),
            ring,
            vec![UpfId::new(0)],
        ));
        let mut ue = 0u64;
        b.iter(|| {
            ue += 1;
            let outs1 = cpf.on_control(ul(
                ue,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::InitialUeMessage,
                1,
            ));
            let outs2 = cpf.handle(SysMsg::S11Resp(S11Response {
                ue: UeId::new(ue),
                op: SessionOp::Create,
                upf: UpfId::new(0),
                session: Some(neutrino_common::SessionId::new(ue)),
                ok: true,
            }));
            let outs3 = cpf.on_control(ul(
                ue,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::InitialContextSetupResponse,
                2,
            ));
            let outs4 = cpf.on_control(ul(
                ue,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::AttachComplete,
                3,
            ));
            std::hint::black_box((outs1, outs2, outs3, outs4))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_engine, bench_ring_lookup, bench_cta_pipeline, bench_cpf_attach_machine
);
criterion_main!(benches);
