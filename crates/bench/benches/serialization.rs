//! Criterion micro-benchmarks behind Figs. 18, 19, 20: encode and
//! native-read paths of every codec on synthetic and real control messages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neutrino_bench::figures::serialization::synthetic_schema;
use neutrino_codec::CodecKind;
use neutrino_messages::MessageKind;

/// Fig. 18 core loop: encode+read a synthetic message per codec and size.
fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_synthetic_encode_read");
    for &n in &[3usize, 7, 25] {
        let (schema, value) = synthetic_schema(n);
        for kind in [
            CodecKind::Asn1Per,
            CodecKind::Fastbuf,
            CodecKind::Cdr,
            CodecKind::Lcm,
            CodecKind::Proto,
            CodecKind::Flex,
        ] {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                let mut buf = Vec::with_capacity(512);
                b.iter(|| {
                    codec.encode(&schema, &value, &mut buf).unwrap();
                    std::hint::black_box(codec.traverse(&schema, &buf).unwrap())
                });
            });
        }
    }
    group.finish();
}

/// Fig. 19 core loop: the five real S1AP messages through the three codecs
/// the paper's systems use.
fn bench_real_messages(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_real_messages");
    for kind in [
        MessageKind::InitialContextSetupRequest,
        MessageKind::InitialContextSetupResponse,
        MessageKind::ERabSetupRequest,
        MessageKind::ERabSetupResponse,
        MessageKind::InitialUeMessage,
    ] {
        let schema = kind.schema();
        let value = kind.sample(3).to_value();
        for codec_kind in [
            CodecKind::Asn1Per,
            CodecKind::Fastbuf,
            CodecKind::FastbufOptimized,
        ] {
            let codec = codec_kind.instance();
            group.bench_function(BenchmarkId::new(codec_kind.name(), kind.name()), |b| {
                let mut buf = Vec::with_capacity(1024);
                b.iter(|| {
                    codec.encode(&schema, &value, &mut buf).unwrap();
                    std::hint::black_box(codec.traverse(&schema, &buf).unwrap())
                });
            });
        }
    }
    group.finish();
}

/// The UE-state checkpoint that per-procedure replication serializes.
fn bench_state_sync(c: &mut Criterion) {
    use neutrino_messages::state::UeState;
    use neutrino_messages::Wire;
    let mut group = c.benchmark_group("state_sync_checkpoint");
    let state = UeState::sample(42);
    let schema = UeState::schema();
    let value = state.to_value();
    for codec_kind in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
        let codec = codec_kind.instance();
        group.bench_function(codec_kind.name(), |b| {
            let mut buf = Vec::with_capacity(1024);
            b.iter(|| {
                codec.encode(&schema, &value, &mut buf).unwrap();
                std::hint::black_box(codec.traverse(&schema, &buf).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(40).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_synthetic, bench_real_messages, bench_state_sync
);
criterion_main!(benches);
