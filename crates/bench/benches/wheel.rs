//! Scheduler microbench: the calendar-queue wheel against the binary-heap
//! reference, on the same deterministic pseudo-random schedule.
//!
//! This isolates the PR-level claim behind the engine speedup: pushing and
//! popping `(at, seq)` keys through `Wheel` must beat `ReferenceHeap` on
//! engine-like workloads (a bounded pending set, mostly near-future delays,
//! a tail of far-future timers). Both structures dispatch in the identical
//! order, so the comparison is purely about data-structure cost. The drive
//! loops live in `neutrino_bench::schedbench`, shared with the
//! `engine_wheel` key that `repro --bench-out` emits.
//!
//! Run with `cargo bench -p neutrino-bench --bench wheel`. Set
//! `NEUTRINO_BENCH_QUICK=1` (the CI smoke job does) to shrink the workload.
//! Build with `--features count-allocs` to also report allocations per
//! scheduler operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neutrino_bench::schedbench::{drive_heap, drive_wheel};
use neutrino_netsim::alloc_count;

fn quick() -> bool {
    std::env::var("NEUTRINO_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn wheel_vs_heap(c: &mut Criterion) {
    let total: u64 = if quick() { 200_000 } else { 2_000_000 };
    let mut group = c.benchmark_group("sched");
    group.sample_size(10);
    for &pending in &[64u64, 4096] {
        // Identical dispatch order is the wheel's contract; assert it here
        // so the two timed loops are provably doing the same work.
        assert_eq!(
            drive_wheel(total.min(100_000), pending),
            drive_heap(total.min(100_000), pending),
            "wheel and heap must dispatch identically"
        );
        group.bench_function(BenchmarkId::new("wheel", pending), |b| {
            b.iter(|| drive_wheel(total, pending))
        });
        group.bench_function(BenchmarkId::new("heap", pending), |b| {
            b.iter(|| drive_heap(total, pending))
        });
    }
    group.finish();

    // Absolute rates + allocation counts once, outside the timing loops.
    for &pending in &[64u64, 4096] {
        let a0 = alloc_count::current();
        let start = std::time::Instant::now();
        let s1 = drive_wheel(total, pending);
        let wheel_secs = start.elapsed().as_secs_f64();
        let wheel_allocs = alloc_count::current() - a0;

        let a0 = alloc_count::current();
        let start = std::time::Instant::now();
        let s2 = drive_heap(total, pending);
        let heap_secs = start.elapsed().as_secs_f64();
        let heap_allocs = alloc_count::current() - a0;

        assert_eq!(s1, s2);
        eprintln!(
            "sched pending={pending}: wheel {:.1}M ops/s ({:.4} allocs/op), \
             heap {:.1}M ops/s ({:.4} allocs/op), speedup {:.2}x",
            total as f64 / wheel_secs / 1e6,
            wheel_allocs as f64 / total as f64,
            total as f64 / heap_secs / 1e6,
            heap_allocs as f64 / total as f64,
            heap_secs / wheel_secs,
        );
    }
}

criterion_group!(benches, wheel_vs_heap);
criterion_main!(benches);
