//! Criterion benchmarks behind the PCT figures (7, 8, 10, 11, 15, 16):
//! each target runs a quick-profile simulation cell end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neutrino_bench::figures::failure::failure_cell;
use neutrino_bench::figures::pct::uniform_pct_cell;
use neutrino_common::time::Duration;
use neutrino_core::SystemConfig;
use neutrino_messages::procedures::ProcedureKind;

const CELL_MS: u64 = 150;

/// Figs. 7/8: one uniform-rate PCT cell per system (the whole simulated
/// deployment: UE population, CTA, 5 CPFs, UPFs).
fn bench_uniform_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("pct_uniform_cell");
    group.sample_size(10);
    for (label, config, kind) in [
        (
            "epc_service_request_40k",
            SystemConfig::existing_epc(),
            ProcedureKind::ServiceRequest,
        ),
        (
            "neutrino_service_request_40k",
            SystemConfig::neutrino(),
            ProcedureKind::ServiceRequest,
        ),
        (
            "epc_attach_40k",
            SystemConfig::existing_epc(),
            ProcedureKind::InitialAttach,
        ),
        (
            "neutrino_attach_40k",
            SystemConfig::neutrino(),
            ProcedureKind::InitialAttach,
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(uniform_pct_cell(
                    config.clone(),
                    kind,
                    40_000,
                    Duration::from_millis(CELL_MS),
                ))
            });
        });
    }
    group.finish();
}

/// Fig. 10: a failure-recovery cell per system.
fn bench_failure_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("pct_failure_cell");
    group.sample_size(10);
    for (label, config) in [
        ("epc_40k", SystemConfig::existing_epc()),
        ("neutrino_40k", SystemConfig::neutrino()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                std::hint::black_box(failure_cell(
                    config.clone(),
                    40_000,
                    Duration::from_millis(CELL_MS),
                ))
            });
        });
    }
    group.finish();
}

/// Figs. 11/15: handover flavors and replication modes.
fn bench_ablation_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("pct_ablation_cell");
    group.sample_size(10);
    for (label, config, kind) in [
        (
            "handover_proactive",
            SystemConfig::neutrino(),
            ProcedureKind::HandoverWithCpfChange,
        ),
        (
            "handover_migrate",
            SystemConfig::neutrino_default_handover(),
            ProcedureKind::HandoverWithCpfChange,
        ),
        (
            "attach_per_msg_rep",
            SystemConfig::neutrino_per_message(),
            ProcedureKind::InitialAttach,
        ),
        (
            "attach_no_rep",
            SystemConfig::neutrino_no_replication(),
            ProcedureKind::InitialAttach,
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(uniform_pct_cell(
                    config.clone(),
                    kind,
                    40_000,
                    Duration::from_millis(CELL_MS),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_uniform_cells, bench_failure_cells, bench_ablation_cells
);
criterion_main!(benches);
