//! Raw engine throughput: events/sec through the netsim hot path with no
//! protocol logic on top. This isolates the discrete-event core (slab node
//! table, recycled outboxes, heap pops) from the Neutrino state machines,
//! so engine-level regressions show up undiluted.
//!
//! Run with `cargo bench -p neutrino-bench --bench engine`. The repro
//! binary's `--bench-out` flag reports the equivalent number for real
//! figure cells (protocol logic included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, Sim};

/// Forwards every message to the next node in the ring, charging a small
/// service time — the engine's per-event cost dominates.
struct RingHop {
    next: NodeId,
    cores: usize,
}

impl Node<u64> for RingHop {
    fn service_time(&self, _msg: &u64) -> Duration {
        Duration::from_nanos(500)
    }

    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        if let NodeEvent::Message { msg, .. } = event {
            out.send(self.next, msg);
        }
    }

    fn cores(&self) -> usize {
        self.cores
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds an N-node ring carrying `balls` messages and runs it for the
/// virtual horizon; returns events processed.
fn run_ring(nodes: u64, balls: u64, cores: usize, horizon: Duration) -> u64 {
    let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(2)));
    let mut sim = Sim::new(links);
    for i in 0..nodes {
        let next = NodeId::new((i + 1) % nodes);
        sim.add_node(NodeId::new(i), Box::new(RingHop { next, cores }));
    }
    for b in 0..balls {
        sim.inject_at(Instant::ZERO, NodeId::new(b % nodes), b);
    }
    sim.run_until(Instant::ZERO + horizon);
    sim.events_processed()
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &(nodes, balls, cores) in &[(8u64, 64u64, 1usize), (8, 64, 4), (64, 512, 1)] {
        let id = BenchmarkId::new("ring", format!("{nodes}n-{balls}b-{cores}c"));
        group.bench_function(id, |b| {
            b.iter(|| {
                let events = run_ring(nodes, balls, cores, Duration::from_millis(50));
                assert!(events > 0);
                events
            })
        });
    }
    // Print an absolute events/sec figure once, outside the timing loop:
    // the criterion stub reports per-iteration time, this reports rate.
    let start = std::time::Instant::now();
    let events = run_ring(8, 64, 1, Duration::from_millis(200));
    let secs = start.elapsed().as_secs_f64();
    eprintln!(
        "engine ring 8n-64b-1c: {events} events in {secs:.3}s = {:.0} events/sec",
        events as f64 / secs
    );
    group.finish();
}

/// The shards axis: the multi-region ring through the region-sharded PDES
/// engine at 1/2/4 shards. `shardbench::measure` asserts the event count
/// and delivery-order checksum match the sequential engine before any
/// number is reported, so this bench doubles as an order-identity check.
fn sharded_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-sharded");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        let id = BenchmarkId::new("region-ring", format!("{shards}s"));
        group.bench_function(id, |b| {
            b.iter(|| {
                let points =
                    neutrino_bench::shardbench::measure(Duration::from_millis(10), &[shards]);
                points.last().expect("measured").events
            })
        });
    }
    for p in neutrino_bench::shardbench::measure(Duration::from_millis(100), &[2, 4]) {
        eprintln!(
            "engine-sharded region-ring shards={}: {} events = {:.0} events/sec ({:.2}x vs sequential)",
            p.shards, p.events, p.events_per_sec, p.speedup_vs_sequential
        );
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, sharded_throughput);
criterion_main!(benches);
