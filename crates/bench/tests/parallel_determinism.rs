//! The parallel sweep must be invisible in the results: the same figure
//! run with 1 worker and with 8 workers serializes to byte-identical JSON.
//! Likewise the region-sharded engine: the same figure run with 1, 2, and
//! 4 engine shards serializes to byte-identical JSON — no re-blessing.

use neutrino_bench::figures::{failure, pct, Profile};
use neutrino_bench::sweep::{self, Cell};
use neutrino_common::time::Duration;
use neutrino_core::{experiment, SystemConfig};

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn jobs_1_and_jobs_8_serialize_byte_identically() {
    // One test drives both worker counts: `set_jobs` is process-global, so
    // the sequence must not interleave with other sweeps.
    sweep::set_jobs(1);
    let sequential = serde_json::to_string_pretty(&pct::fig8(Profile::Quick)).expect("ser");
    sweep::set_jobs(8);
    let parallel = serde_json::to_string_pretty(&pct::fig8(Profile::Quick)).expect("ser");
    sweep::set_jobs(0);
    assert_eq!(
        sequential, parallel,
        "figure JSON must not depend on the worker count"
    );
}

/// A miniature fault-injected failure grid (the `--faults` fig10 shape at a
/// fraction of the load), so the worker pool runs more cells than workers.
fn fault_grid() -> Vec<failure::FailurePoint> {
    let links = neutrino_core::LinkProfile {
        faults: failure::paper_fault_profile(),
        ..neutrino_core::LinkProfile::default()
    };
    let duration = Duration::from_millis(40);
    let mut cells: Vec<Cell<failure::FailurePoint>> = Vec::new();
    for &rate in &[20_000u64, 40_000] {
        for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
            cells.push(Box::new(move || {
                let name = config.name;
                let mut o = failure::failure_cell_outcome(config, rate, duration, links);
                failure::FailurePoint {
                    x: rate,
                    system: name.to_string(),
                    summary: o.pct.summary(),
                    audit_passes: o.audit_passes,
                    audit_divergences: o.audit_divergences,
                    audit_ues_checked: o.audit_ues_checked,
                    retransmissions: o.retransmissions,
                    resyncs_requested: o.resyncs_requested,
                    failed_procedures: o.failed_procedures,
                }
            }));
        }
    }
    sweep::run_cells(cells)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn fault_injected_cells_are_worker_count_independent() {
    sweep::set_jobs(1);
    let sequential = serde_json::to_string_pretty(&fault_grid()).expect("ser");
    sweep::set_jobs(8);
    let parallel = serde_json::to_string_pretty(&fault_grid()).expect("ser");
    sweep::set_jobs(0);
    assert_eq!(
        sequential, parallel,
        "fault-injected figure JSON must not depend on the worker count"
    );
}

/// Runs `f` at engine shard counts 1, 2, and 4 and asserts the serialized
/// results are byte-identical. `set_shards` is process-global, so each
/// identity test drives all counts itself (like the jobs tests above).
fn assert_shards_identical<T: serde::Serialize>(what: &str, mut f: impl FnMut() -> T) {
    experiment::set_shards(1);
    let sequential = serde_json::to_string_pretty(&f()).expect("ser");
    for shards in [2usize, 4] {
        experiment::set_shards(shards);
        let sharded = serde_json::to_string_pretty(&f()).expect("ser");
        assert_eq!(
            sequential, sharded,
            "{what} must not depend on the engine shard count (shards={shards})"
        );
    }
    experiment::set_shards(1);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn fig8_is_shard_count_independent() {
    assert_shards_identical("fig8 JSON", || pct::fig8(Profile::Quick));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn fig10_is_shard_count_independent() {
    assert_shards_identical("fig10 JSON", || failure::fig10(Profile::Quick));
}

/// The fault grid exercises the degradation path: faulty links make the
/// link table sequence-sensitive, so every shard count must fall back to
/// the one sequential engine — and the JSON stays byte-identical without
/// any re-blessing.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn fault_grid_is_shard_count_independent() {
    sweep::set_jobs(1);
    assert_shards_identical("fault-grid JSON", fault_grid);
    sweep::set_jobs(0);
}
