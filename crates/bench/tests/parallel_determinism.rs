//! The parallel sweep must be invisible in the results: the same figure
//! run with 1 worker and with 8 workers serializes to byte-identical JSON.

use neutrino_bench::figures::{pct, Profile};
use neutrino_bench::sweep;

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn jobs_1_and_jobs_8_serialize_byte_identically() {
    // One test drives both worker counts: `set_jobs` is process-global, so
    // the sequence must not interleave with other sweeps.
    sweep::set_jobs(1);
    let sequential = serde_json::to_string_pretty(&pct::fig8(Profile::Quick)).expect("ser");
    sweep::set_jobs(8);
    let parallel = serde_json::to_string_pretty(&pct::fig8(Profile::Quick)).expect("ser");
    sweep::set_jobs(0);
    assert_eq!(
        sequential, parallel,
        "figure JSON must not depend on the worker count"
    );
}
