//! Golden-file snapshots of the quick-profile repro figures.
//!
//! The jobs-independence tests (parallel_determinism.rs) prove two worker
//! counts agree *with each other*; these pin the actual bytes, so a silent
//! behavior change that shifts both runs equally still fails. Tolerance-
//! free: the simulator is deterministic, so the JSON must match to the
//! byte. To re-bless after an intended change:
//!
//! ```text
//! BLESS=1 cargo test --release -p neutrino-bench --test golden_repro
//! ```

use neutrino_bench::figures::{failure, pct, Profile};
use neutrino_bench::sweep;
use std::path::Path;

/// A named snapshot: golden file name plus its figure renderer.
type SnapshotCase = (&'static str, fn() -> String);

/// One test drives every snapshot: `set_jobs` is process-global, so the
/// jobs=1 / jobs=8 sequence must not interleave with another sweep.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn quick_figures_match_golden_snapshots() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let cases: [SnapshotCase; 2] = [
        ("fig8_quick.json", || {
            serde_json::to_string_pretty(&pct::fig8(Profile::Quick)).expect("ser")
        }),
        ("fig10_quick.json", || {
            serde_json::to_string_pretty(&failure::fig10(Profile::Quick)).expect("ser")
        }),
    ];
    for (name, render) in cases {
        sweep::set_jobs(1);
        let sequential = render();
        sweep::set_jobs(8);
        let parallel = render();
        sweep::set_jobs(0);
        assert_eq!(
            sequential, parallel,
            "{name}: figure JSON must not depend on the worker count"
        );
        let snapshot = sequential + "\n";
        let path = dir.join(name);
        if std::env::var("BLESS").is_ok() {
            std::fs::create_dir_all(&dir).expect("golden dir");
            std::fs::write(&path, &snapshot).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; generate it with BLESS=1 cargo test --release \
                 -p neutrino-bench --test golden_repro",
                path.display()
            )
        });
        assert_eq!(
            snapshot, golden,
            "{name} drifted from its golden snapshot; if the change is \
             intended, re-bless with BLESS=1"
        );
    }
}
