//! Rule family 4: the protocol-flow contract.
//!
//! Cross-parses the flow registry (`messages/src/flow.rs`, the `FLOWS`
//! table), the `SysMsg` enum, and every sans-IO source file, and builds the
//! *observed* send/handle graph: each `SysMsg::X` construction routed
//! through a node-output wrapper (`CtaOutput::ToCpf { .. }`,
//! `CpfOutput::ToCta { .. }`, …) or a simulator send
//! (`out.send(cta_node(..), SimMsg::Sys(SysMsg::X ..))` /
//! `inject_at(.., SimMsg::Sys(SysMsg::X ..))`), and each `SysMsg::X` match
//! arm inside the registered `handle()` functions. The observed graph is
//! checked against the declared one:
//!
//! | rule | what it rejects |
//! |---|---|
//! | `flow-table` | a `FLOWS` entry for a nonexistent variant, a variant with no entry, duplicates, empty edge lists, unknown roles |
//! | `flow-undeclared-send` | a send site whose `(src, dst)` role pair is not a declared edge |
//! | `flow-missing-handler` | a declared destination role whose `handle()` has no arm for the variant |
//! | `flow-dead-arm` | a handler arm for a variant that role is never declared to receive |
//! | `flow-orphan` | a variant declared but never sent anywhere, or sent but matched by no handler |
//! | `flow-wildcard` | a silent catch-all (`_ =>` or an irrefutable binding) in a `SysMsg` handler match — make it explicit or carry `// lint-allow(flow-wildcard): reason` |
//!
//! The same analysis emits the deterministic static graph behind
//! `neutrino-lint --flow-graph out.json`, which `explore --flow-coverage`
//! diffs against dynamically witnessed edges.

use crate::findings::Finding;
use crate::lexer::{lex, TokKind, Token};
use crate::{determinism, wire};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Every role name the flow table may use (lower-cased `Role::X` idents).
pub const ROLE_NAMES: &[&str] = &["cta", "cpf", "upf", "uepop", "harness"];

/// One source file handed to the flow pass.
pub struct FlowFile {
    /// Label used in findings (workspace-relative path).
    pub label: String,
    /// File contents.
    pub src: String,
    /// The role whose code this file is, if any (`None` = roleless support
    /// code: codecs, message definitions, the netsim engine, …).
    pub role: Option<String>,
    /// Whether this file carries the role's registered `fn handle`.
    pub handler: bool,
}

/// Workspace classification of a sans-IO source file: `(role, handler)`.
/// CTA/CPF/UPF crates are their role; `uepop.rs` is the UE-population side;
/// the rest of `neutrino-core` (cluster wiring, failure injectors, repro
/// drivers) acts as the test harness / environment role.
pub fn classify(label: &str) -> (Option<&'static str>, bool) {
    match label {
        "crates/cta/src/core.rs" => (Some("cta"), true),
        "crates/cpf/src/core.rs" => (Some("cpf"), true),
        "crates/upf/src/session.rs" => (Some("upf"), true),
        "crates/neutrino-core/src/uepop.rs" => (Some("uepop"), true),
        l if l.starts_with("crates/cta/") => (Some("cta"), false),
        l if l.starts_with("crates/cpf/") => (Some("cpf"), false),
        l if l.starts_with("crates/upf/") => (Some("upf"), false),
        l if l.starts_with("crates/neutrino-core/") => (Some("harness"), false),
        _ => (None, false),
    }
}

/// One declared `(variant, src, dst)` edge of the static graph.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeclaredEdge {
    /// Variant name, e.g. `StateSync`.
    pub variant: String,
    /// Source role name.
    pub src: String,
    /// Destination role name.
    pub dst: String,
}

/// One observed send site.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendSite {
    /// Variant name.
    pub variant: String,
    /// Sending role.
    pub src: String,
    /// Destination role.
    pub dst: String,
    /// File the construction sits in.
    pub file: String,
    /// 1-based line of the `SysMsg::X` token.
    pub line: u32,
}

/// One observed handler match arm.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct HandlerArm {
    /// Handling role.
    pub role: String,
    /// Variant name.
    pub variant: String,
    /// Handler file.
    pub file: String,
    /// 1-based arm line.
    pub line: u32,
}

/// One catch-all arm in a `SysMsg` handler match.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct WildcardArm {
    /// Handling role.
    pub role: String,
    /// Handler file.
    pub file: String,
    /// 1-based arm line.
    pub line: u32,
}

/// The static protocol-flow graph: declared edges plus everything observed
/// in source. All vectors are sorted, so serializing is byte-stable.
#[derive(Debug, Clone, Serialize, Default)]
pub struct FlowGraph {
    /// Declared `(variant, src, dst)` edges from the `FLOWS` table.
    pub declared: Vec<DeclaredEdge>,
    /// Observed send sites.
    pub sends: Vec<SendSite>,
    /// Observed handler arms.
    pub handlers: Vec<HandlerArm>,
    /// Observed catch-all arms (audited or not).
    pub wildcards: Vec<WildcardArm>,
}

/// A parsed `FLOWS` table entry.
struct TableEntry {
    variant: String,
    edges: Vec<(String, String)>,
    line: u32,
}

/// Run the flow-contract checks and build the static graph.
///
/// `sysmsg` and `table` are `(label, source)` pairs for the enum and the
/// registry; `files` is every sans-IO source file (roles pre-assigned via
/// [`classify`] or explicitly, for fixtures). Returned findings are **raw**:
/// the caller applies inline-allow suppression per file (see
/// `lint_workspace`), so `flow-wildcard` sites can carry an audited
/// `// lint-allow(flow-wildcard): reason`.
pub fn check(
    sysmsg: (&str, &str),
    table: (&str, &str),
    files: &[FlowFile],
) -> (FlowGraph, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut graph = FlowGraph::default();

    let sys_tokens = determinism::strip_test_mods(&lex(sysmsg.1).tokens);
    let variants = wire::enum_variants(&sys_tokens, "SysMsg");
    if variants.is_empty() {
        findings.push(finding(sysmsg.0, 1, "flow-table", "could not find `enum SysMsg` — flow contract unverifiable".into()));
        return (graph, findings);
    }

    let table_tokens = determinism::strip_test_mods(&lex(table.1).tokens);
    let entries = parse_table(&table_tokens);
    if entries.is_empty() {
        findings.push(finding(table.0, 1, "flow-table", "could not find any `FlowSpec { variant: \"..\", edges: &[..] }` entries — flow contract unverifiable".into()));
        return (graph, findings);
    }

    // --- Table sanity: totality both ways, uniqueness, edges, role names.
    let variant_names: BTreeSet<&str> = variants.iter().map(|v| v.name.as_str()).collect();
    let mut seen = BTreeSet::new();
    for e in &entries {
        if !variant_names.contains(e.variant.as_str()) {
            findings.push(finding(table.0, e.line, "flow-table", format!("FLOWS declares `{}`, which is not a SysMsg variant", e.variant)));
        }
        if !seen.insert(e.variant.as_str()) {
            findings.push(finding(table.0, e.line, "flow-table", format!("duplicate FLOWS entry for `{}`", e.variant)));
        }
        if e.edges.is_empty() {
            findings.push(finding(table.0, e.line, "flow-table", format!("FLOWS entry for `{}` declares no edges", e.variant)));
        }
        for (src, dst) in &e.edges {
            for role in [src, dst] {
                if !ROLE_NAMES.contains(&role.as_str()) {
                    findings.push(finding(table.0, e.line, "flow-table", format!("FLOWS entry for `{}` names unknown role `{role}`", e.variant)));
                }
            }
        }
    }
    for v in &variants {
        if !seen.contains(v.name.as_str()) {
            findings.push(finding(
                sysmsg.0,
                v.line,
                "flow-table",
                format!("SysMsg::{} has no FLOWS entry in {} — declare its allowed (src, dst) roles", v.name, table.0),
            ));
        }
    }

    // --- Observed graph from the source files. `present` records, per role
    // with a registered handler file, where its `fn handle` starts (the
    // anchor line for missing-arm reports).
    let mut present: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for f in files {
        let tokens = determinism::strip_test_mods(&lex(&f.src).tokens);
        extract_sends(&tokens, f, &mut graph.sends);
        if f.handler {
            let role = f.role.as_deref().unwrap_or("?");
            if let Some((open, close)) = wire::fn_body(&tokens, "handle") {
                let handle_line = tokens[open].line;
                collect_arms(&tokens[open..=close], role, f, &mut graph.handlers, &mut graph.wildcards);
                present.insert(role.to_string(), (f.label.clone(), handle_line));
            } else {
                findings.push(finding(&f.label, 1, "flow-table", format!("registered handler file for role `{role}` has no `fn handle`")));
            }
        }
    }
    graph.sends.sort();
    graph.sends.dedup();
    graph.handlers.sort();
    graph.handlers.dedup();
    graph.wildcards.sort();
    graph.wildcards.dedup();
    for e in &entries {
        for (src, dst) in &e.edges {
            graph.declared.push(DeclaredEdge { variant: e.variant.clone(), src: src.clone(), dst: dst.clone() });
        }
    }
    graph.declared.sort();

    let by_variant: BTreeMap<&str, &TableEntry> =
        entries.iter().map(|e| (e.variant.as_str(), e)).collect();

    // --- flow-undeclared-send.
    for s in &graph.sends {
        let Some(entry) = by_variant.get(s.variant.as_str()) else {
            // Variant missing from the table entirely — flow-table already
            // fired (or the variant doesn't exist; the compiler owns that).
            continue;
        };
        if !entry.edges.iter().any(|(a, b)| a == &s.src && b == &s.dst) {
            let declared: Vec<String> =
                entry.edges.iter().map(|(a, b)| format!("{a}→{b}")).collect();
            findings.push(finding(
                &s.file,
                s.line,
                "flow-undeclared-send",
                format!(
                    "SysMsg::{} sent {}→{} but the flow table declares only [{}]",
                    s.variant,
                    s.src,
                    s.dst,
                    declared.join(", ")
                ),
            ));
        }
    }

    // --- flow-missing-handler: every declared destination with a registered
    // handler file must match the variant.
    for e in &entries {
        if !variant_names.contains(e.variant.as_str()) {
            continue; // flow-table already fired; don't demand handlers for it
        }
        let dsts: BTreeSet<&str> = e.edges.iter().map(|(_, d)| d.as_str()).collect();
        for dst in dsts {
            let Some((file, line)) = present.get(dst) else { continue };
            let handled = graph.handlers.iter().any(|h| h.role == dst && h.variant == e.variant);
            if !handled {
                findings.push(finding(
                    file,
                    *line,
                    "flow-missing-handler",
                    format!(
                        "role `{dst}` is a declared destination of SysMsg::{} ({}:{}) but its handle() has no arm for it",
                        e.variant, table.0, e.line
                    ),
                ));
            }
        }
    }

    // --- flow-dead-arm: arms for variants the role never receives.
    for h in &graph.handlers {
        let dead = match by_variant.get(h.variant.as_str()) {
            Some(e) => !e.edges.iter().any(|(_, d)| d == &h.role),
            // Arm for a variant the table (and possibly the enum) does not
            // know — dead by definition.
            None => true,
        };
        if dead {
            findings.push(finding(
                &h.file,
                h.line,
                "flow-dead-arm",
                format!("handler arm for SysMsg::{} in role `{}`, which is never a declared destination for it", h.variant, h.role),
            ));
        }
    }

    // --- flow-orphan: declared but never sent; sent but matched nowhere.
    let sent: BTreeSet<&str> = graph.sends.iter().map(|s| s.variant.as_str()).collect();
    let handled: BTreeSet<&str> = graph.handlers.iter().map(|h| h.variant.as_str()).collect();
    for e in &entries {
        if !variant_names.contains(e.variant.as_str()) {
            continue; // flow-table already fired
        }
        if !sent.contains(e.variant.as_str()) {
            findings.push(finding(
                table.0,
                e.line,
                "flow-orphan",
                format!("SysMsg::{} is declared but no send site constructs it — a dead protocol path", e.variant),
            ));
        }
    }
    for s in &graph.sends {
        let missing_already = by_variant
            .get(s.variant.as_str())
            .is_some_and(|e| e.edges.iter().any(|(_, d)| present.contains_key(d.as_str())));
        if !handled.contains(s.variant.as_str()) && !missing_already {
            findings.push(finding(
                &s.file,
                s.line,
                "flow-orphan",
                format!("SysMsg::{} is sent here but no registered handler matches it", s.variant),
            ));
        }
    }

    // --- flow-wildcard.
    for w in &graph.wildcards {
        findings.push(finding(
            &w.file,
            w.line,
            "flow-wildcard",
            format!(
                "silent catch-all arm in a SysMsg handler match (role `{}`) — make the expected variants explicit, count the rest, or audit with `// lint-allow(flow-wildcard): reason`",
                w.role
            ),
        ));
    }

    (graph, findings)
}

impl FlowGraph {
    /// Serialize to pretty JSON (trailing newline, byte-stable).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("flow graph serializes");
        s.push('\n');
        s
    }
}

fn finding(file: &str, line: u32, rule: &str, message: String) -> Finding {
    Finding { file: file.into(), line, rule: rule.into(), message }
}

/// Parse `FlowSpec { variant: "X", edges: &[(Role::A, Role::B), ...] }`
/// entries out of the registry source. Struct/impl declarations of
/// `FlowSpec` itself are skipped.
fn parse_table(tokens: &[Token]) -> Vec<TableEntry> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "FlowSpec"
            || (i > 0 && matches!(tokens[i - 1].text.as_str(), "struct" | "impl" | "for"))
        {
            i += 1;
            continue;
        }
        // Find the opening brace of the literal.
        let mut j = i + 1;
        if j >= tokens.len() || tokens[j].text != "{" {
            i += 1;
            continue;
        }
        let open = j;
        let mut depth = 0usize;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &tokens[open..j.min(tokens.len())];
        let mut entry = TableEntry { variant: String::new(), edges: Vec::new(), line: tokens[i].line };
        let mut k = 0;
        while k < body.len() {
            if body[k].text == "variant"
                && k + 2 < body.len()
                && body[k + 1].text == ":"
                && body[k + 2].kind == TokKind::Lit
            {
                entry.variant = unquote(&body[k + 2].text);
                k += 3;
                continue;
            }
            // ( Role :: A , Role :: B )
            if body[k].text == "("
                && k + 7 < body.len()
                && body[k + 1].text == "Role"
                && body[k + 2].text == "::"
                && body[k + 4].text == ","
                && body[k + 5].text == "Role"
                && body[k + 6].text == "::"
            {
                entry
                    .edges
                    .push((body[k + 3].text.to_lowercase(), body[k + 7].text.to_lowercase()));
                k += 8;
                continue;
            }
            k += 1;
        }
        if !entry.variant.is_empty() {
            out.push(entry);
        }
        i = j + 1;
    }
    out
}

/// Strip the quotes off a string literal token.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Output-wrapper conventions: `Wrapper::Variant` implies `(src, dst)`.
const WRAPPERS: &[(&str, &str, &str, &str)] = &[
    ("CtaOutput", "ToCpf", "cta", "cpf"),
    ("CtaOutput", "ToBs", "cta", "uepop"),
    ("CpfOutput", "ToCta", "cpf", "cta"),
    ("CpfOutput", "ToCpf", "cpf", "cpf"),
    ("CpfOutput", "ToUpf", "cpf", "upf"),
    ("UpfOutput", "ToCta", "upf", "cta"),
    ("UpfOutput", "ToCpf", "upf", "cpf"),
];

/// Simulator address helpers: `fn_name` implies the destination role.
const NODE_FNS: &[(&str, &str)] = &[
    ("cta_node", "cta"),
    ("cpf_node", "cpf"),
    ("upf_node", "upf"),
    ("UEPOP_NODE", "uepop"),
];

/// How far back to look from a `SimMsg::Sys(SysMsg::X` construction for the
/// address expression of the enclosing `send`/`inject_at` call.
const SEND_LOOKBACK: usize = 16;

/// Extract observed send sites from one file's token stream.
fn extract_sends(tokens: &[Token], f: &FlowFile, out: &mut Vec<SendSite>) {
    for i in 0..tokens.len() {
        // (a) Output-wrapper constructions: `CtaOutput::ToCpf { .., msg:
        // SysMsg::X .. }`. Pattern matches over wrappers bind `msg` without
        // naming a variant, so requiring `SysMsg::` inside the braces keeps
        // this to construction sites.
        if tokens[i].kind == TokKind::Ident
            && i + 3 < tokens.len()
            && tokens[i + 1].text == "::"
            && tokens[i + 3].text == "{"
        {
            if let Some(&(_, _, src, dst)) = WRAPPERS
                .iter()
                .find(|(w, v, _, _)| tokens[i].text == *w && tokens[i + 2].text == *v)
            {
                let mut depth = 0usize;
                let mut j = i + 3;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "SysMsg"
                            if j + 2 < tokens.len()
                                && tokens[j + 1].text == "::"
                                && tokens[j + 2].kind == TokKind::Ident =>
                        {
                            out.push(SendSite {
                                variant: tokens[j + 2].text.clone(),
                                src: src.to_string(),
                                dst: dst.to_string(),
                                file: f.label.clone(),
                                line: tokens[j].line,
                            });
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // (b) Direct simulator sends: `out.send(cta_node(x), SimMsg::Sys(
        // SysMsg::X ..))` and `inject_at(.., upf_node(y), SimMsg::Sys(..))`.
        // The address helper within the lookback window resolves the
        // destination; without one this is a match pattern, not a send.
        if tokens[i].text == "SimMsg"
            && i + 6 < tokens.len()
            && tokens[i + 1].text == "::"
            && tokens[i + 2].text == "Sys"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "SysMsg"
            && tokens[i + 5].text == "::"
            && tokens[i + 6].kind == TokKind::Ident
        {
            let Some(src) = f.role.as_deref() else { continue };
            let start = i.saturating_sub(SEND_LOOKBACK);
            let dst = tokens[start..i]
                .iter()
                .rev()
                .find_map(|t| NODE_FNS.iter().find(|(n, _)| t.text == *n).map(|(_, d)| *d));
            if let Some(dst) = dst {
                out.push(SendSite {
                    variant: tokens[i + 6].text.clone(),
                    src: src.to_string(),
                    dst: dst.to_string(),
                    file: f.label.clone(),
                    line: tokens[i + 4].line,
                });
            }
        }
    }
}

/// One parsed match arm: pattern token range plus body token range.
struct Arm {
    pat: (usize, usize),
    body: (usize, usize),
    line: u32,
}

/// Parse the arms of the `match` starting at `tokens[m]` (the `match`
/// keyword). Returns the arms and the index just past the match block.
fn parse_match(tokens: &[Token], m: usize) -> (Vec<Arm>, usize) {
    // The match body is the first `{` at paren/bracket depth 0.
    let mut i = m + 1;
    let mut pdepth = 0i32;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" => pdepth += 1,
            ")" | "]" => pdepth -= 1,
            "{" if pdepth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= tokens.len() {
        return (Vec::new(), tokens.len());
    }
    let mut arms = Vec::new();
    i += 1; // past `{`
    loop {
        // Skip separators; detect end of match.
        while i < tokens.len() && tokens[i].text == "," {
            i += 1;
        }
        if i >= tokens.len() || tokens[i].text == "}" {
            return (arms, i.saturating_add(1));
        }
        // Pattern: up to `=>` at depth 0 (lexed as `=` `>`).
        let pat_start = i;
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && i + 1 < tokens.len() && tokens[i + 1].text == ">" => break,
                _ => {}
            }
            i += 1;
        }
        if i >= tokens.len() {
            return (arms, tokens.len());
        }
        let pat_end = i; // exclusive
        i += 2; // past `=` `>`
        // Body: a block, or an expression up to `,` / the match's `}`.
        let body_start = i;
        let body_end = if i < tokens.len() && tokens[i].text == "{" {
            let mut d = 0i32;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1; // past closing `}`
            i
        } else {
            let mut d = 0i32;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" => d -= 1,
                    "}" if d == 0 => break, // match block closes
                    "}" => d -= 1,
                    "," if d == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            i
        };
        arms.push(Arm {
            pat: (pat_start, pat_end),
            body: (body_start, body_end),
            line: tokens[pat_start].line,
        });
    }
}

/// Recursively collect `SysMsg` handler arms and catch-all arms from every
/// `match` in `tokens` (a `handle()` body). A match participates if at least
/// one arm pattern names `SysMsg::`.
fn collect_arms(
    tokens: &[Token],
    role: &str,
    f: &FlowFile,
    handlers: &mut Vec<HandlerArm>,
    wildcards: &mut Vec<WildcardArm>,
) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "match" {
            i += 1;
            continue;
        }
        let (arms, end) = parse_match(tokens, i);
        let involves_sysmsg = arms.iter().any(|a| {
            tokens[a.pat.0..a.pat.1]
                .windows(2)
                .any(|w| w[0].text == "SysMsg" && w[1].text == "::")
        });
        for a in &arms {
            let pat = &tokens[a.pat.0..a.pat.1];
            if involves_sysmsg {
                for k in 0..pat.len() {
                    if pat[k].text == "SysMsg"
                        && k + 2 < pat.len()
                        && pat[k + 1].text == "::"
                        && pat[k + 2].kind == TokKind::Ident
                    {
                        handlers.push(HandlerArm {
                            role: role.to_string(),
                            variant: pat[k + 2].text.clone(),
                            file: f.label.clone(),
                            line: a.line,
                        });
                    }
                }
                if pat.len() == 1 && (pat[0].text == "_" || pat[0].kind == TokKind::Ident) {
                    wildcards.push(WildcardArm {
                        role: role.to_string(),
                        file: f.label.clone(),
                        line: a.line,
                    });
                }
            }
            // Nested matches inside the arm body.
            collect_arms(&tokens[a.body.0..a.body.1.min(tokens.len())], role, f, handlers, wildcards);
        }
        i = end.max(i + 1);
    }
}
