//! `neutrino-lint` — workspace static analysis for the determinism contract.
//!
//! Every figure this reproduction produces is trustworthy only because the
//! sans-IO protocol crates are bit-deterministic from a seed. This crate
//! machine-checks that contract instead of leaving it to convention:
//!
//! 1. **Determinism rules** ([`determinism`]) over the sans-IO crates:
//!    no wall clocks, threads, sockets, ambient env/RNG, and no iteration
//!    over `HashMap`/`HashSet` (per-process-random order — the exact class
//!    behind the PR 2/PR 3 failover-ordering bugs).
//! 2. **Wire-contract rules** ([`wire`]): the `SysMsg` ⇄ frame-tag mapping
//!    in `framing.rs` must be total, injective and gap-free in both the
//!    encoder and the decoder.
//! 3. **Harness-coverage rules** ([`coverage`]): every `Invariant` impl must
//!    be in `ALL_INVARIANTS`, registered in a scenario family, and named in
//!    TESTING.md.
//! 4. **Protocol-flow rules** ([`flow`]): every `SysMsg` send site and
//!    `handle()` match arm must agree with the declared flow registry
//!    (`messages/src/flow.rs`) — no undeclared senders, missing handler
//!    arms, dead arms, orphan variants, or silent wildcard arms.
//!
//! Suppressions are inline `// lint-allow(<rule>): <reason>` comments or
//! `crates/lint/allowlist.json`; both are audited for staleness (see
//! [`findings`]). Run with `cargo run -p neutrino-lint --`; the TESTING.md
//! "Determinism contract" section is the user-facing rule catalog.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod coverage;
pub mod determinism;
pub mod findings;
pub mod flow;
pub mod lexer;
pub mod wire;

use findings::{Allowlist, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// The sans-IO crates subject to the determinism rules (crate dir names
/// under `crates/`). `neutrino-net`, `bench`, `check` and `apps` drive real
/// time, threads and files by design and are exempt.
pub const SANS_IO_CRATES: &[&str] = &[
    "messages",
    "codec",
    "cta",
    "cpf",
    "upf",
    "geo",
    "trafficgen",
    "netsim",
    "neutrino-core",
];

/// Lint one source file against the determinism rules, honouring its inline
/// `lint-allow` comments (and reporting stale ones). `label` is the path
/// used in findings.
pub fn lint_source(label: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let tokens = determinism::strip_test_mods(&lexed.tokens);
    let raw = determinism::check(label, &tokens);
    let (mut allows, mut out) = findings::parse_inline_allows(label, &lexed.comments);
    let surviving = findings::apply_inline_allows(raw, &mut allows);
    out.extend(surviving);
    out.extend(findings::stale_inline_allows(label, &allows));
    out
}

/// Lint the whole workspace rooted at `root`. Returns findings sorted by
/// (file, line, rule); empty means the tree is clean.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(lint_workspace_full(root)?.1)
}

/// Lint the whole workspace and also return the static protocol-flow graph
/// (the payload of `neutrino-lint --flow-graph`). Findings are sorted by
/// (file, line, rule).
pub fn lint_workspace_full(root: &Path) -> Result<(flow::FlowGraph, Vec<Finding>), String> {
    let mut all = Vec::new();

    // Read every sans-IO source file once; families 1 (determinism) and 4
    // (protocol flow) share the set, and their findings go through one
    // inline-allow application per file so a `lint-allow(flow-wildcard)`
    // is usable (and auditable for staleness) like any other rule.
    let mut sources: Vec<(String, String)> = Vec::new();
    for krate in SANS_IO_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in rust_files(&src_dir)? {
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("{}: {e}", file.display()))?;
            sources.push((rel_label(root, &file), src));
        }
    }

    // Family 4: protocol flow (graph + raw findings, grouped per file).
    let sysmsg_label = "crates/messages/src/sysmsg.rs".to_string();
    let flow_label = "crates/messages/src/flow.rs".to_string();
    let find_src = |label: &str| -> Result<&str, String> {
        sources
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| s.as_str())
            .ok_or_else(|| format!("{label}: missing from the sans-IO source set"))
    };
    let flow_files: Vec<flow::FlowFile> = sources
        .iter()
        .map(|(label, src)| {
            let (role, handler) = flow::classify(label);
            flow::FlowFile {
                label: label.clone(),
                src: src.clone(),
                role: role.map(String::from),
                handler,
            }
        })
        .collect();
    let (graph, flow_raw) = flow::check(
        (&sysmsg_label, find_src(&sysmsg_label)?),
        (&flow_label, find_src(&flow_label)?),
        &flow_files,
    );
    let mut flow_by_file: std::collections::BTreeMap<String, Vec<Finding>> = Default::default();
    for f in flow_raw {
        flow_by_file.entry(f.file.clone()).or_default().push(f);
    }

    // Families 1 + 4, with one allow application per file.
    for (label, src) in &sources {
        let lexed = lexer::lex(src);
        let tokens = determinism::strip_test_mods(&lexed.tokens);
        let mut raw = determinism::check(label, &tokens);
        raw.extend(flow_by_file.remove(label).unwrap_or_default());
        let (mut allows, bad) = findings::parse_inline_allows(label, &lexed.comments);
        all.extend(bad);
        all.extend(findings::apply_inline_allows(raw, &mut allows));
        all.extend(findings::stale_inline_allows(label, &allows));
    }
    // Flow findings on files outside the sans-IO set (shouldn't happen, but
    // never drop a finding on the floor).
    for (_, v) in flow_by_file {
        all.extend(v);
    }

    // Family 2: wire contract.
    let sysmsg_path = root.join("crates/messages/src/sysmsg.rs");
    let framing_path = root.join("crates/neutrino-net/src/framing.rs");
    let sysmsg = fs::read_to_string(&sysmsg_path)
        .map_err(|e| format!("{}: {e}", sysmsg_path.display()))?;
    let framing = fs::read_to_string(&framing_path)
        .map_err(|e| format!("{}: {e}", framing_path.display()))?;
    all.extend(wire::check(
        &rel_label(root, &sysmsg_path),
        &sysmsg,
        &rel_label(root, &framing_path),
        &framing,
    ));

    // Family 3: invariant coverage.
    let paths = [
        root.join("crates/neutrino-core/src/oracle.rs"),
        root.join("crates/check/src/invariants.rs"),
        root.join("crates/check/src/scenario.rs"),
        root.join("TESTING.md"),
        root.join("crates/check/tests/invariant_killswitch.rs"),
    ];
    let mut texts = Vec::new();
    for p in &paths {
        texts.push(fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    all.extend(coverage::check(
        (&rel_label(root, &paths[0]), &texts[0]),
        (&rel_label(root, &paths[1]), &texts[1]),
        (&rel_label(root, &paths[2]), &texts[2]),
        (&rel_label(root, &paths[3]), &texts[3]),
        (&rel_label(root, &paths[4]), &texts[4]),
    ));

    // The grandfathered-site allowlist, audited for staleness.
    let allow_path = root.join("crates/lint/allowlist.json");
    if allow_path.exists() {
        let json = fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        let mut allowlist = Allowlist::parse(&rel_label(root, &allow_path), &json)?;
        all = allowlist.apply(all);
        all.extend(allowlist.stale());
    }

    all.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok((graph, all))
}

/// Run only the protocol-flow rules over an explicit file set (the
/// `neutrino-lint --flow` fixture mode). Inline `lint-allow` comments in
/// every supplied file are honoured and audited for staleness, exactly as
/// in workspace mode.
pub fn lint_flow_fixture(
    sysmsg: (&str, &str),
    table: (&str, &str),
    files: &[flow::FlowFile],
) -> (flow::FlowGraph, Vec<Finding>) {
    let (graph, raw) = flow::check(sysmsg, table, files);
    let mut by_file: std::collections::BTreeMap<String, Vec<Finding>> = Default::default();
    for f in raw {
        by_file.entry(f.file.clone()).or_default().push(f);
    }
    let mut texts: Vec<(&str, &str)> = vec![sysmsg, table];
    texts.extend(files.iter().map(|f| (f.label.as_str(), f.src.as_str())));
    let mut seen = std::collections::BTreeSet::new();
    let mut all = Vec::new();
    for (label, src) in texts {
        if !seen.insert(label.to_string()) {
            continue;
        }
        let lexed = lexer::lex(src);
        let raw = by_file.remove(label).unwrap_or_default();
        let (mut allows, bad) = findings::parse_inline_allows(label, &lexed.comments);
        all.extend(bad);
        all.extend(findings::apply_inline_allows(raw, &mut allows));
        all.extend(findings::stale_inline_allows(label, &allows));
    }
    for (_, v) in by_file {
        all.extend(v);
    }
    all.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    (graph, all)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All `.rs` files under `dir`, recursively, in sorted order (so output is
/// stable across filesystems).
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("{}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative label for a path (falls back to the full path).
fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_inline_allows() {
        let dirty = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("x.rs", dirty).len(), 1);
        let allowed =
            "fn f() { let t = std::time::Instant::now(); } // lint-allow(wall-clock): calibration only\n";
        assert!(lint_source("x.rs", allowed).is_empty());
    }

    #[test]
    fn workspace_root_detection() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("in a workspace");
        assert!(root.join("crates/lint").is_dir());
    }
}
