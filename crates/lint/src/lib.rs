//! `neutrino-lint` — workspace static analysis for the determinism contract.
//!
//! Every figure this reproduction produces is trustworthy only because the
//! sans-IO protocol crates are bit-deterministic from a seed. This crate
//! machine-checks that contract instead of leaving it to convention:
//!
//! 1. **Determinism rules** ([`determinism`]) over the sans-IO crates:
//!    no wall clocks, threads, sockets, ambient env/RNG, and no iteration
//!    over `HashMap`/`HashSet` (per-process-random order — the exact class
//!    behind the PR 2/PR 3 failover-ordering bugs).
//! 2. **Wire-contract rules** ([`wire`]): the `SysMsg` ⇄ frame-tag mapping
//!    in `framing.rs` must be total, injective and gap-free in both the
//!    encoder and the decoder.
//! 3. **Harness-coverage rules** ([`coverage`]): every `Invariant` impl must
//!    be in `ALL_INVARIANTS`, registered in a scenario family, and named in
//!    TESTING.md.
//!
//! Suppressions are inline `// lint-allow(<rule>): <reason>` comments or
//! `crates/lint/allowlist.json`; both are audited for staleness (see
//! [`findings`]). Run with `cargo run -p neutrino-lint --`; the TESTING.md
//! "Determinism contract" section is the user-facing rule catalog.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod coverage;
pub mod determinism;
pub mod findings;
pub mod lexer;
pub mod wire;

use findings::{Allowlist, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// The sans-IO crates subject to the determinism rules (crate dir names
/// under `crates/`). `neutrino-net`, `bench`, `check` and `apps` drive real
/// time, threads and files by design and are exempt.
pub const SANS_IO_CRATES: &[&str] = &[
    "messages",
    "codec",
    "cta",
    "cpf",
    "upf",
    "geo",
    "trafficgen",
    "netsim",
    "neutrino-core",
];

/// Lint one source file against the determinism rules, honouring its inline
/// `lint-allow` comments (and reporting stale ones). `label` is the path
/// used in findings.
pub fn lint_source(label: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let tokens = determinism::strip_test_mods(&lexed.tokens);
    let raw = determinism::check(label, &tokens);
    let (mut allows, mut out) = findings::parse_inline_allows(label, &lexed.comments);
    let surviving = findings::apply_inline_allows(raw, &mut allows);
    out.extend(surviving);
    out.extend(findings::stale_inline_allows(label, &allows));
    out
}

/// Lint the whole workspace rooted at `root`. Returns findings sorted by
/// (file, line, rule); empty means the tree is clean.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut all = Vec::new();

    // Family 1: determinism over the sans-IO crates.
    for krate in SANS_IO_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in rust_files(&src_dir)? {
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("{}: {e}", file.display()))?;
            let label = rel_label(root, &file);
            all.extend(lint_source(&label, &src));
        }
    }

    // Family 2: wire contract.
    let sysmsg_path = root.join("crates/messages/src/sysmsg.rs");
    let framing_path = root.join("crates/neutrino-net/src/framing.rs");
    let sysmsg = fs::read_to_string(&sysmsg_path)
        .map_err(|e| format!("{}: {e}", sysmsg_path.display()))?;
    let framing = fs::read_to_string(&framing_path)
        .map_err(|e| format!("{}: {e}", framing_path.display()))?;
    all.extend(wire::check(
        &rel_label(root, &sysmsg_path),
        &sysmsg,
        &rel_label(root, &framing_path),
        &framing,
    ));

    // Family 3: invariant coverage.
    let paths = [
        root.join("crates/neutrino-core/src/oracle.rs"),
        root.join("crates/check/src/invariants.rs"),
        root.join("crates/check/src/scenario.rs"),
        root.join("TESTING.md"),
        root.join("crates/check/tests/invariant_killswitch.rs"),
    ];
    let mut texts = Vec::new();
    for p in &paths {
        texts.push(fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    all.extend(coverage::check(
        (&rel_label(root, &paths[0]), &texts[0]),
        (&rel_label(root, &paths[1]), &texts[1]),
        (&rel_label(root, &paths[2]), &texts[2]),
        (&rel_label(root, &paths[3]), &texts[3]),
        (&rel_label(root, &paths[4]), &texts[4]),
    ));

    // The grandfathered-site allowlist, audited for staleness.
    let allow_path = root.join("crates/lint/allowlist.json");
    if allow_path.exists() {
        let json = fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        let mut allowlist = Allowlist::parse(&rel_label(root, &allow_path), &json)?;
        all = allowlist.apply(all);
        all.extend(allowlist.stale());
    }

    all.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(all)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All `.rs` files under `dir`, recursively, in sorted order (so output is
/// stable across filesystems).
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("{}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative label for a path (falls back to the full path).
fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_inline_allows() {
        let dirty = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("x.rs", dirty).len(), 1);
        let allowed =
            "fn f() { let t = std::time::Instant::now(); } // lint-allow(wall-clock): calibration only\n";
        assert!(lint_source("x.rs", allowed).is_empty());
    }

    #[test]
    fn workspace_root_detection() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("in a workspace");
        assert!(root.join("crates/lint").is_dir());
    }
}
