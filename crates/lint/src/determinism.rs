//! Rule family 1: the sans-IO determinism contract.
//!
//! Applied to the non-test code of the sans-IO protocol crates. Bans the
//! ambient-environment escape hatches (`std::time::{Instant,SystemTime}`,
//! `std::thread`, `std::net`, `std::env`, `thread_rng`/`from_entropy`) and —
//! the class behind the PR 2/PR 3 failover bugs — flags iteration over
//! `HashMap`/`HashSet` values, which yields a per-process-random order.
//! Deterministic alternatives: `BTreeMap`/`BTreeSet`, or a helper whose name
//! ends in `sorted` (such helpers are never flagged because only the raw
//! std iteration methods are).

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};

/// Iteration/drain methods on std hash collections whose order is random.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Remove the bodies of `#[cfg(test)] mod ... { ... }` blocks: tests are
/// allowed to use wall clocks and hash iteration (they assert on their own
/// output and don't feed the simulation).
pub fn strip_test_mods(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            // Skip attribute tokens up to `]`, then expect `mod name {`.
            let mut j = i;
            while j < tokens.len() && tokens[j].text != "]" {
                j += 1;
            }
            j += 1; // past `]`
            if j + 2 < tokens.len()
                && tokens[j].text == "mod"
                && tokens[j + 1].kind == TokKind::Ident
                && tokens[j + 2].text == "{"
            {
                // Skip to the matching close brace.
                let mut depth = 0usize;
                let mut k = j + 2;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Is `tokens[i..]` the start of a `#[cfg(test)]` attribute?
fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    let texts: Vec<&str> = tokens[i..].iter().take(7).map(|t| t.text.as_str()).collect();
    texts.len() == 7 && texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// Run the determinism rules over one (already test-stripped) token stream.
pub fn check(file: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    banned_paths(file, tokens, &mut findings);
    hash_iteration(file, tokens, &mut findings);
    findings
}

/// Flag the banned `std::` modules and ambient RNG constructors.
fn banned_paths(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let push = |findings: &mut Vec<Finding>, line: u32, rule: &str, msg: String| {
        findings.push(Finding { file: file.into(), line, rule: rule.into(), message: msg });
    };
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text == "std" && i + 2 < tokens.len() && tokens[i + 1].text == "::"
        {
            let module = tokens[i + 2].text.as_str();
            match module {
                "time" => {
                    // Only Instant/SystemTime are banned (Duration is fine:
                    // it is a value type, not a clock). Look ahead to the end
                    // of the path or use-group for the offending names.
                    let mut j = i + 3;
                    let mut hit: Option<(&str, u32)> = None;
                    while j < tokens.len() && j < i + 24 {
                        match tokens[j].text.as_str() {
                            ";" | "=" | ")" => break,
                            "Instant" | "SystemTime" => {
                                hit = Some((if tokens[j].text == "Instant" {
                                    "std::time::Instant"
                                } else {
                                    "std::time::SystemTime"
                                }, tokens[j].line));
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    if let Some((what, line)) = hit {
                        push(findings, line, "wall-clock", format!(
                            "{what} reads the host clock; sans-IO crates must take time from the simulation (neutrino_common::Instant)"
                        ));
                    }
                }
                "thread" => push(findings, t.line, "thread", "std::thread in a sans-IO crate; concurrency lives in neutrino-net/bench drivers".into()),
                "net" => push(findings, t.line, "net", "std::net in a sans-IO crate; real sockets live in neutrino-net".into()),
                "env" => push(findings, t.line, "env", "std::env reads ambient process state; thread configuration through SystemConfig instead".into()),
                _ => {}
            }
        }
        if t.kind == TokKind::Ident && (t.text == "thread_rng" || t.text == "from_entropy") {
            push(findings, t.line, "ambient-rng", format!(
                "{} draws from ambient entropy; derive randomness from the experiment seed (SplitMix/StdRng::seed_from_u64)",
                t.text
            ));
        }
        i += 1;
    }
}

/// Flag iteration over `HashMap`/`HashSet`-typed bindings.
///
/// Pass 1 collects binding names whose declared type (field, let, or param)
/// mentions `HashMap`/`HashSet`, or that are initialized from
/// `HashMap::new()`-style constructors. Pass 2 flags `name.iter()` (and the
/// rest of [`ITER_METHODS`]) plus direct `for _ in name` loops over them.
fn hash_iteration(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if let Some(name) = binding_name_before(tokens, i) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    if names.is_empty() {
        return;
    }

    let mut flagged: Vec<(u32, String)> = Vec::new();
    let mut push = |line: u32, name: &str, via: &str, findings: &mut Vec<Finding>| {
        let key = (line, name.to_string());
        if flagged.contains(&key) {
            return;
        }
        flagged.push(key);
        findings.push(Finding {
            file: file.into(),
            line,
            rule: "hash-iter".into(),
            message: format!(
                "iteration over hash collection `{name}` ({via}) yields per-process-random order; use BTreeMap/BTreeSet or a `*_sorted` helper"
            ),
        });
    };

    for i in 0..tokens.len() {
        let t = &tokens[i];
        // name . method (
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && i + 3 < tokens.len()
            && tokens[i + 1].text == "."
            && tokens[i + 2].kind == TokKind::Ident
            && tokens[i + 3].text == "("
        {
            let m = tokens[i + 2].text.as_str();
            if ITER_METHODS.contains(&m) && !m.ends_with("sorted") {
                push(tokens[i + 2].line, &t.text, &format!(".{m}()"), findings);
            }
        }
        // for pat in [&[mut]] name
        if t.kind == TokKind::Ident && t.text == "in" && i > 0 {
            // Confirm a `for` opened this loop header within a few tokens back.
            let start = i.saturating_sub(8);
            let is_for = tokens[start..i].iter().any(|p| p.text == "for");
            if is_for {
                let mut j = i + 1;
                while j < tokens.len() && (tokens[j].text == "&" || tokens[j].text == "mut") {
                    j += 1;
                }
                // `for k in self.field` loops: step over the `self .` prefix.
                if j + 1 < tokens.len() && tokens[j].text == "self" && tokens[j + 1].text == "." {
                    j += 2;
                }
                if j < tokens.len()
                    && tokens[j].kind == TokKind::Ident
                    && names.contains(&tokens[j].text)
                {
                    // Direct loop only: `for k in map {`. A following `.` is
                    // a method chain and handled above.
                    if j + 1 < tokens.len() && tokens[j + 1].text == "{" {
                        push(tokens[j].line, &tokens[j].text, "for-loop", findings);
                    }
                }
            }
        }
    }
}

/// Given `tokens[i]` == `HashMap`/`HashSet`, walk backwards over the type
/// position to find the binding name (`name: HashMap<...>`, `name: &mut
/// std::collections::HashMap<...>`, or `name = HashMap::new()`).
fn binding_name_before(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // Walk back over path/reference noise: `std :: collections ::`, `&`, `mut`.
    while j > 0 {
        let p = &tokens[j - 1];
        let skip = match p.text.as_str() {
            "::" | "&" | "mut" => true,
            _ if p.kind == TokKind::Lifetime => true,
            // An ident is only type-position noise if it is a path segment,
            // i.e. the token we already accepted to its right is `::`.
            _ if p.kind == TokKind::Ident => tokens[j].text == "::",
            _ => false,
        };
        if !skip {
            break;
        }
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    match tokens[j - 1].text.as_str() {
        ":" => {
            // `name :` — the token before the colon is the binding.
            if j >= 2 && tokens[j - 2].kind == TokKind::Ident {
                let name = &tokens[j - 2];
                // Exclude syntactic positions that are not bindings
                // (e.g. `-> HashMap`, `as HashMap`).
                if name.text != "super" && name.text != "crate" {
                    return Some(name.text.clone());
                }
            }
            None
        }
        "=" => {
            // `name = HashMap::new()` or `let mut name = ...`.
            if j >= 2 && tokens[j - 2].kind == TokKind::Ident {
                return Some(tokens[j - 2].text.clone());
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let stripped = strip_test_mods(&lexed.tokens);
        check("t.rs", &stripped)
    }

    #[test]
    fn bans_wall_clock_but_not_duration() {
        let f = run("let t = std::time::Instant::now();\nlet d = std::time::Duration::from_secs(1);\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn bans_use_import_of_systemtime() {
        let f = run("use std::time::{Duration, SystemTime};\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
    }

    #[test]
    fn bans_thread_net_env_rng() {
        let f = run("use std::thread;\nuse std::net::UdpSocket;\nlet h = std::env::var(\"HOME\");\nlet r = thread_rng();\n");
        let rules: Vec<&str> = f.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, ["thread", "net", "env", "ambient-rng"]);
    }

    #[test]
    fn flags_hash_iteration_by_type() {
        let f = run("struct S { m: HashMap<u32, u32> }\nimpl S { fn f(&self) { for (k, v) in self.m.iter() { let _ = (k, v); } } }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hash-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn flags_constructor_binding_and_for_loop() {
        let f = run("fn f() { let mut seen = HashSet::new(); seen.insert(1);\nfor x in &seen { use_(x); } }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn btreemap_and_lookups_are_clean() {
        let f = run("struct S { m: BTreeMap<u32, u32>, h: HashMap<u32, u32> }\nimpl S { fn f(&self) -> Option<&u32> { let _ = self.m.iter(); self.h.get(&1) } }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let f = run("struct S;\n#[cfg(test)]\nmod tests {\n  use std::time::Instant;\n  fn f() { let m: HashMap<u32,u32> = HashMap::new(); for x in &m {} }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
