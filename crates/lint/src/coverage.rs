//! Rule family 3: harness coverage of the invariant catalog.
//!
//! Every `Invariant` implementation (in `neutrino-core/src/oracle.rs` and
//! `crates/check/src/invariants.rs`) must be (a) listed in
//! `ALL_INVARIANTS`, (b) registered — by its catalog-name string literal —
//! in at least one scenario family in `crates/check/src/scenario.rs`,
//! (c) documented by name in TESTING.md, and (d) exercised by name in the
//! kill-switch suite (`crates/check/tests/invariant_killswitch.rs`) — a
//! test that proves the invariant *can* fire. A new invariant that is
//! implemented but never scheduled, or scheduled but unfalsifiable, would
//! otherwise silently check nothing.

use crate::findings::Finding;
use crate::lexer::{lex, TokKind, Token};

const RULE: &str = "invariant-coverage";

/// Inputs are (path label, source text) pairs for the five files involved.
pub fn check(
    oracle: (&str, &str),
    invariants: (&str, &str),
    scenario: (&str, &str),
    testing_md: (&str, &str),
    killswitch: (&str, &str),
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let oracle_lex = lex(oracle.1);
    let inv_lex = lex(invariants.1);

    // Catalog-name constants from both files: CONSISTENCY -> "consistency".
    let mut consts = str_consts(&oracle_lex.tokens);
    consts.extend(str_consts(&inv_lex.tokens));

    // Every `impl Invariant for T` block, resolved to its catalog name.
    let mut impls: Vec<(String, String, u32)> = Vec::new(); // (file, name, line)
    for (path, lexed) in [(oracle.0, &oracle_lex), (invariants.0, &inv_lex)] {
        for (name, line) in impl_invariant_names(&lexed.tokens, &consts) {
            impls.push((path.to_string(), name, line));
        }
    }
    if impls.is_empty() {
        findings.push(Finding {
            file: oracle.0.into(),
            line: 1,
            rule: RULE.into(),
            message: "found no `impl Invariant for ...` blocks — coverage unverifiable".into(),
        });
        return findings;
    }

    // ALL_INVARIANTS membership (idents resolved through the const map).
    let all = slice_names(&inv_lex.tokens, "ALL_INVARIANTS", &consts);
    // Scenario registration: the name must appear as a string literal.
    let scenario_lits = string_literals(&lex(scenario.1).tokens);
    // Kill-switch coverage: same string-literal rule for the test suite.
    let killswitch_lits = string_literals(&lex(killswitch.1).tokens);

    for (file, name, line) in &impls {
        if !all.contains(name) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE.into(),
                message: format!("invariant \"{name}\" is implemented but missing from ALL_INVARIANTS in {}", invariants.0),
            });
        }
        if !scenario_lits.contains(name) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE.into(),
                message: format!("invariant \"{name}\" is not registered in any scenario family in {}", scenario.0),
            });
        }
        if !testing_md.1.contains(name.as_str()) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE.into(),
                message: format!("invariant \"{name}\" is not documented in {}", testing_md.0),
            });
        }
        if !killswitch_lits.contains(name) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: RULE.into(),
                message: format!(
                    "invariant \"{name}\" has no kill-switch test in {}",
                    killswitch.0
                ),
            });
        }
    }

    // The reverse direction: a name scheduled by ALL_INVARIANTS with no impl
    // would panic at runtime — catch it here too.
    for name in &all {
        if !impls.iter().any(|(_, n, _)| n == name) {
            findings.push(Finding {
                file: invariants.0.into(),
                line: 1,
                rule: RULE.into(),
                message: format!("ALL_INVARIANTS lists \"{name}\" but no impl Invariant resolves to that name"),
            });
        }
    }

    findings
}

/// Collect `const NAME: &str = "value";` pairs.
fn str_consts(tokens: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "const" {
            continue;
        }
        let Some(name) = tokens.get(i + 1) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        // Scan to the `;`, remembering the first string literal.
        let mut j = i + 2;
        let mut val = None;
        let mut is_str = false;
        while j < tokens.len() && tokens[j].text != ";" {
            if tokens[j].text == "str" {
                is_str = true;
            }
            if val.is_none() && tokens[j].kind == TokKind::Lit && tokens[j].text.starts_with('"') {
                val = Some(unquote(&tokens[j].text));
            }
            j += 1;
        }
        if let (true, Some(v)) = (is_str, val) {
            out.push((name.text.clone(), v));
        }
    }
    out
}

/// Find every `impl Invariant for T` block and resolve its `fn name` body to
/// a catalog-name string (literal, or const ident via `consts`).
fn impl_invariant_names(tokens: &[Token], consts: &[(String, String)]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < tokens.len() {
        if tokens[i].text == "impl" && tokens[i + 1].text == "Invariant" && tokens[i + 2].text == "for"
        {
            let impl_line = tokens[i].line;
            // Brace-match the impl body.
            let mut j = i + 3;
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            let open = j;
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let body = &tokens[open..j.min(tokens.len())];
            if let Some(name) = fn_name_value(body, consts) {
                out.push((name, impl_line));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Inside an impl body, find `fn name` and resolve its returned value.
fn fn_name_value(body: &[Token], consts: &[(String, String)]) -> Option<String> {
    let pos = body.windows(2).position(|w| w[0].text == "fn" && w[1].text == "name")?;
    // Scan the fn's body (to its closing brace) for the first resolvable value.
    let mut j = pos + 2;
    while j < body.len() && body[j].text != "{" {
        j += 1;
    }
    let mut depth = 0usize;
    while j < body.len() {
        match body[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if body[j].kind == TokKind::Lit && body[j].text.starts_with('"') {
                    return Some(unquote(&body[j].text));
                }
                if body[j].kind == TokKind::Ident {
                    if let Some((_, v)) = consts.iter().find(|(n, _)| n == &body[j].text) {
                        return Some(v.clone());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Resolve the contents of `const NAME: &[&str] = [...]` into name strings.
fn slice_names(tokens: &[Token], slice_name: &str, consts: &[(String, String)]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(pos) = tokens
        .windows(2)
        .position(|w| w[0].text == "const" && w[1].text == slice_name)
    else {
        return out;
    };
    let mut j = pos + 2;
    while j < tokens.len() && tokens[j].text != ";" {
        if tokens[j].kind == TokKind::Lit && tokens[j].text.starts_with('"') {
            out.push(unquote(&tokens[j].text));
        } else if tokens[j].kind == TokKind::Ident {
            // A path like neutrino_core::oracle::CONSISTENCY resolves by its
            // final segment — but only when the next token is not `::`
            // (i.e. this ident IS the final segment).
            let is_final = match tokens.get(j + 1) {
                Some(n) => n.text != "::",
                None => true,
            };
            if is_final {
                if let Some((_, v)) = consts.iter().find(|(n, _)| n == &tokens[j].text) {
                    out.push(v.clone());
                }
            }
        }
        j += 1;
    }
    out
}

/// All plain string literals in a token stream, unquoted.
fn string_literals(tokens: &[Token]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| t.kind == TokKind::Lit && t.text.starts_with('"'))
        .map(|t| unquote(&t.text))
        .collect()
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORACLE: &str = r#"
pub const CONSISTENCY: &str = "consistency";
pub trait Invariant { fn name(&self) -> &'static str; }
pub struct C;
impl Invariant for C { fn name(&self) -> &'static str { CONSISTENCY } }
"#;
    const INVS: &str = r#"
pub const LOST: &str = "no-lost";
pub const ALL_INVARIANTS: &[&str] = &[neutrino_core::oracle::CONSISTENCY, LOST];
pub struct L;
impl Invariant for L { fn name(&self) -> &'static str { LOST } }
"#;
    const SCENARIO: &str = r#"
const NEUTRINO_INVARIANTS: &[&str] = &["consistency", "no-lost"];
"#;
    const TESTING: &str = "The `consistency` and `no-lost` invariants are checked.";
    const KILLSWITCH: &str = r#"
fn kill_switch_consistency() { invariant_by_name("consistency"); }
fn kill_switch_no_lost() { invariant_by_name("no-lost"); }
"#;

    fn run(oracle: &str, invs: &str, scen: &str, md: &str) -> Vec<Finding> {
        run_with_killswitch(oracle, invs, scen, md, KILLSWITCH)
    }

    fn run_with_killswitch(
        oracle: &str,
        invs: &str,
        scen: &str,
        md: &str,
        ks: &str,
    ) -> Vec<Finding> {
        check(
            ("o.rs", oracle),
            ("i.rs", invs),
            ("s.rs", scen),
            ("TESTING.md", md),
            ("ks.rs", ks),
        )
    }

    #[test]
    fn full_coverage_passes() {
        let f = run(ORACLE, INVS, SCENARIO, TESTING);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_invariant_fails() {
        let scen = r#"const NEUTRINO_INVARIANTS: &[&str] = &["consistency"];"#;
        let f = run(ORACLE, INVS, scen, TESTING);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not registered in any scenario"));
        assert!(f[0].message.contains("no-lost"));
    }

    #[test]
    fn missing_from_all_invariants_fails() {
        let invs = INVS.replace(", LOST]", "]");
        let f = run(ORACLE, &invs, SCENARIO, TESTING);
        assert!(f.iter().any(|x| x.message.contains("missing from ALL_INVARIANTS")), "{f:?}");
    }

    #[test]
    fn undocumented_invariant_fails() {
        let f = run(ORACLE, INVS, SCENARIO, "Only `consistency` is described.");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not documented"));
    }

    #[test]
    fn orphan_catalog_name_fails() {
        let invs = INVS.replace("impl Invariant for L { fn name(&self) -> &'static str { LOST } }", "");
        let f = run(ORACLE, &invs, SCENARIO, TESTING);
        assert!(f.iter().any(|x| x.message.contains("no impl Invariant resolves")), "{f:?}");
    }

    #[test]
    fn missing_kill_switch_fails() {
        let ks = r#"fn kill_switch_consistency() { invariant_by_name("consistency"); }"#;
        let f = run_with_killswitch(ORACLE, INVS, SCENARIO, TESTING, ks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no kill-switch test"));
        assert!(f[0].message.contains("no-lost"));
    }
}
