//! Rule family 2: the wire-protocol registry.
//!
//! Cross-parses `messages/src/sysmsg.rs` (the `SysMsg` enum) and
//! `neutrino-net/src/framing.rs` (the `TAG_*` constants plus the
//! `encode_sysmsg` / `decode_sysmsg` match arms) and verifies the
//! variant ⇄ tag mapping is **total** (every variant encoded and decoded),
//! **injective** (no tag reuse), **gap-free** (tag values are a contiguous
//! `1..=N`), and **consistent** (encoder and decoder agree per variant).
//! This is the check that would have rejected a half-added "tag 17"
//! (`ResyncBehind`, PR 4) at CI time.

use crate::findings::Finding;
use crate::lexer::{lex, TokKind, Token};

/// All findings use this rule id (allowlistable as one family).
const RULE: &str = "wire-contract";

/// Run the wire-contract checks.
///
/// `sysmsg_path`/`framing_path` are labels for findings; the `*_src`
/// arguments are the file contents.
pub fn check(
    sysmsg_path: &str,
    sysmsg_src: &str,
    framing_path: &str,
    framing_src: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sys = lex(sysmsg_src);
    let fra = lex(framing_src);

    let variants = enum_variants(&sys.tokens, "SysMsg");
    if variants.is_empty() {
        findings.push(Finding {
            file: sysmsg_path.into(),
            line: 1,
            rule: RULE.into(),
            message: "could not find `enum SysMsg` — wire contract unverifiable".into(),
        });
        return findings;
    }

    let tags = tag_consts(&fra.tokens);
    if tags.is_empty() {
        findings.push(Finding {
            file: framing_path.into(),
            line: 1,
            rule: RULE.into(),
            message: "no `TAG_*` constants found — wire contract unverifiable".into(),
        });
        return findings;
    }

    let encode = encode_arms(&fra.tokens);
    let decode = decode_arms(&fra.tokens);

    let mut push = |file: &str, line: u32, message: String| {
        findings.push(Finding { file: file.into(), line, rule: RULE.into(), message });
    };

    // Tag registry itself: injective values, gap-free 1..=N.
    let mut by_value: Vec<(u64, &str)> = tags.iter().map(|t| (t.value, t.name.as_str())).collect();
    by_value.sort_unstable();
    for w in by_value.windows(2) {
        if w[0].0 == w[1].0 {
            push(
                framing_path,
                tags.iter().find(|t| t.name == w[1].1).map_or(1, |t| t.line),
                format!("tag value {} assigned to both {} and {}", w[0].0, w[0].1, w[1].1),
            );
        }
    }
    for (idx, (v, name)) in by_value.iter().enumerate() {
        let expect = idx as u64 + 1;
        if *v != expect && by_value.iter().all(|(x, _)| *x != expect) {
            push(
                framing_path,
                tags.iter().find(|t| t.name == *name).map_or(1, |t| t.line),
                format!("tag values have a gap: expected {expect}, found {v} ({name}); keep tags contiguous 1..=N"),
            );
            break;
        }
    }

    // Totality: every variant appears in both encoder and decoder.
    for v in &variants {
        if !encode.iter().any(|(var, _, _)| var == &v.name) {
            push(
                framing_path,
                v.line,
                format!("SysMsg::{} has no arm in encode_sysmsg (variant declared at {sysmsg_path}:{})", v.name, v.line),
            );
        }
        if !decode.iter().any(|(_, var, _)| var == &v.name) {
            push(
                framing_path,
                v.line,
                format!("SysMsg::{} has no arm in decode_sysmsg (variant declared at {sysmsg_path}:{})", v.name, v.line),
            );
        }
    }

    // Encoder: injective (no two variants share a tag, no variant twice),
    // and every arm must actually emit a tag.
    for (i, (var, tag, line)) in encode.iter().enumerate() {
        match tag {
            None => push(framing_path, *line, format!("encode arm for SysMsg::{var} never writes a TAG_* byte")),
            Some(t) => {
                for (var2, tag2, _) in encode.iter().skip(i + 1) {
                    if tag2.as_deref() == Some(t) && var2 != var {
                        push(framing_path, *line, format!("encoder maps both SysMsg::{var} and SysMsg::{var2} to {t}"));
                    }
                }
                if !tags.iter().any(|c| &c.name == t) {
                    push(framing_path, *line, format!("encode arm for SysMsg::{var} uses undeclared tag {t}"));
                }
            }
        }
        for (var2, _, _) in encode.iter().skip(i + 1) {
            if var2 == var {
                push(framing_path, *line, format!("duplicate encode arm for SysMsg::{var}"));
            }
        }
    }

    // Decoder: injective over tags and consistent with the encoder.
    for (i, (tag, var, line)) in decode.iter().enumerate() {
        for (tag2, var2, line2) in decode.iter().skip(i + 1) {
            if tag2 == tag {
                push(framing_path, *line2, format!("duplicate decode arm for {tag} (first at line {line}; second yields SysMsg::{var2})"));
            }
        }
        if let Some((_, enc_tag, _)) = encode.iter().find(|(v, _, _)| v == var) {
            if enc_tag.as_deref() != Some(tag.as_str()) {
                push(
                    framing_path,
                    *line,
                    format!(
                        "decoder maps {tag} to SysMsg::{var} but the encoder writes {} for that variant",
                        enc_tag.as_deref().unwrap_or("<none>")
                    ),
                );
            }
        }
    }

    // Every declared tag must be exercised by both sides.
    for t in &tags {
        if !encode.iter().any(|(_, tag, _)| tag.as_deref() == Some(t.name.as_str())) {
            push(framing_path, t.line, format!("{} is declared but never written by encode_sysmsg", t.name));
        }
        if !decode.iter().any(|(tag, _, _)| tag == &t.name) {
            push(framing_path, t.line, format!("{} is declared but never matched by decode_sysmsg", t.name));
        }
    }

    findings
}

/// A parsed enum variant.
pub(crate) struct Variant {
    pub(crate) name: String,
    pub(crate) line: u32,
}

/// A parsed `const TAG_X: u8 = N;`.
struct TagConst {
    name: String,
    value: u64,
    line: u32,
}

/// Extract the variant names of `enum <name> { ... }`.
pub(crate) fn enum_variants(tokens: &[Token], name: &str) -> Vec<Variant> {
    let mut out = Vec::new();
    let Some(start) = tokens.windows(2).position(|w| w[0].text == "enum" && w[1].text == name)
    else {
        return out;
    };
    // Find the opening brace of the enum body.
    let mut i = start + 2;
    while i < tokens.len() && tokens[i].text != "{" {
        i += 1;
    }
    let mut depth = 0usize;
    let mut expecting_variant = true;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" | "(" | "[" => {
                depth += 1;
                // Depth 2+ is a variant's payload; names only live at depth 1.
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expecting_variant = true,
            "#" if depth == 1 => {
                // Skip a variant attribute `#[...]`.
                if i + 1 < tokens.len() && tokens[i + 1].text == "[" {
                    let mut d = 0usize;
                    i += 1;
                    while i < tokens.len() {
                        match tokens[i].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            _ => {
                if depth == 1 && expecting_variant && tokens[i].kind == TokKind::Ident {
                    out.push(Variant { name: tokens[i].text.clone(), line: tokens[i].line });
                    expecting_variant = false;
                }
            }
        }
        i += 1;
    }
    out
}

/// Extract all `const TAG_*: u8 = <int>;` declarations.
fn tag_consts(tokens: &[Token]) -> Vec<TagConst> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "const" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { continue };
        if !name_tok.text.starts_with("TAG_") {
            continue;
        }
        // const TAG_X : u8 = N ;
        let mut j = i + 2;
        let mut value = None;
        while j < tokens.len() && tokens[j].text != ";" {
            if tokens[j].kind == TokKind::Lit {
                if let Ok(v) = tokens[j].text.replace('_', "").parse::<u64>() {
                    value = Some(v);
                }
            }
            j += 1;
        }
        if let Some(v) = value {
            out.push(TagConst { name: name_tok.text.clone(), value: v, line: name_tok.line });
        }
    }
    out
}

/// Locate a `fn <name>` and return its brace-matched body token range.
pub(crate) fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let start = tokens.windows(2).position(|w| w[0].text == "fn" && w[1].text == name)?;
    let mut i = start + 2;
    while i < tokens.len() && tokens[i].text != "{" {
        i += 1;
    }
    let open = i;
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse `encode_sysmsg` arms: (variant, tag written, arm line).
/// Each `SysMsg::V` pattern is paired with the first `put_u8(TAG_X)` that
/// follows it before the next `SysMsg::` pattern.
fn encode_arms(tokens: &[Token]) -> Vec<(String, Option<String>, u32)> {
    let Some((open, close)) = fn_body(tokens, "encode_sysmsg") else {
        return Vec::new();
    };
    let body = &tokens[open..close];
    let mut arms: Vec<(String, Option<String>, u32)> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i].text == "SysMsg"
            && i + 2 < body.len()
            && body[i + 1].text == "::"
            && body[i + 2].kind == TokKind::Ident
        {
            arms.push((body[i + 2].text.clone(), None, body[i].line));
            i += 3;
            continue;
        }
        if body[i].text == "put_u8"
            && i + 2 < body.len()
            && body[i + 1].text == "("
            && body[i + 2].text.starts_with("TAG_")
        {
            if let Some(last) = arms.last_mut() {
                if last.1.is_none() {
                    last.1 = Some(body[i + 2].text.clone());
                }
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    arms
}

/// Parse `decode_sysmsg` arms: (tag, variant constructed, arm line).
/// Each `TAG_X =>` marker is paired with the first `SysMsg::V` that follows
/// it before the next `TAG_Y =>` marker.
fn decode_arms(tokens: &[Token]) -> Vec<(String, String, u32)> {
    let Some((open, close)) = fn_body(tokens, "decode_sysmsg") else {
        return Vec::new();
    };
    let body = &tokens[open..close];
    // Markers: indices of `TAG_X =>`.
    let mut markers: Vec<(usize, String, u32)> = Vec::new();
    for i in 0..body.len().saturating_sub(1) {
        if body[i].text.starts_with("TAG_") && body[i + 1].text == "=" {
            // `=>` lexes as `=` `>` in this lexer.
            if i + 2 < body.len() && body[i + 2].text == ">" {
                markers.push((i, body[i].text.clone(), body[i].line));
            }
        }
    }
    let mut out = Vec::new();
    for (k, (start, tag, line)) in markers.iter().enumerate() {
        let end = markers.get(k + 1).map_or(body.len(), |m| m.0);
        let mut var = None;
        let seg = &body[*start..end];
        for i in 0..seg.len() {
            if seg[i].text == "SysMsg"
                && i + 2 < seg.len()
                && seg[i + 1].text == "::"
                && seg[i + 2].kind == TokKind::Ident
            {
                var = Some(seg[i + 2].text.clone());
                break;
            }
        }
        if let Some(v) = var {
            out.push((tag.clone(), v, *line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SYSMSG: &str = "pub enum SysMsg { A(u8), B { x: u64 }, C }";
    const GOOD_FRAMING: &str = r#"
const TAG_A: u8 = 1;
const TAG_B: u8 = 2;
const TAG_C: u8 = 3;
pub fn encode_sysmsg(m: &SysMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    match m {
        SysMsg::A(v) => { buf.put_u8(TAG_A); buf.put_u8(*v); }
        SysMsg::B { x } => { buf.put_u8(TAG_B); buf.put_u64(*x); }
        SysMsg::C => { buf.put_u8(TAG_C); }
    }
    buf
}
pub fn decode_sysmsg(frame: &[u8]) -> SysMsg {
    match frame[0] {
        TAG_A => SysMsg::A(frame[1]),
        TAG_B => { let x = 0; SysMsg::B { x } }
        TAG_C => SysMsg::C,
        other => panic!(),
    }
}
"#;

    #[test]
    fn clean_contract_passes() {
        let f = check("s.rs", GOOD_SYSMSG, "f.rs", GOOD_FRAMING);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_decode_arm_fails() {
        let broken = GOOD_FRAMING.replace("        TAG_C => SysMsg::C,\n", "");
        let f = check("s.rs", GOOD_SYSMSG, "f.rs", &broken);
        assert!(f.iter().any(|x| x.message.contains("no arm in decode_sysmsg")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("never matched by decode_sysmsg")), "{f:?}");
    }

    #[test]
    fn tag_gap_fails() {
        let gapped = GOOD_FRAMING.replace("const TAG_C: u8 = 3;", "const TAG_C: u8 = 5;");
        let f = check("s.rs", GOOD_SYSMSG, "f.rs", &gapped);
        assert!(f.iter().any(|x| x.message.contains("gap")), "{f:?}");
    }

    #[test]
    fn tag_reuse_fails() {
        let dup = GOOD_FRAMING.replace("const TAG_C: u8 = 3;", "const TAG_C: u8 = 2;");
        let f = check("s.rs", GOOD_SYSMSG, "f.rs", &dup);
        assert!(f.iter().any(|x| x.message.contains("assigned to both")), "{f:?}");
    }

    #[test]
    fn encoder_decoder_disagreement_fails() {
        let swapped = GOOD_FRAMING
            .replace("TAG_A => SysMsg::A(frame[1]),", "TAG_A => SysMsg::C,")
            .replace("TAG_C => SysMsg::C,", "TAG_C => SysMsg::A(frame[1]),");
        let f = check("s.rs", GOOD_SYSMSG, "f.rs", &swapped);
        assert!(f.iter().any(|x| x.message.contains("but the encoder writes")), "{f:?}");
    }
}
