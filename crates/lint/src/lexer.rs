//! A hand-rolled Rust lexer: just enough to drive the lint rules.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) with
//! 1-based line numbers, plus a separate comment channel so the rules can
//! match `// lint-allow(...)` suppressions. It understands the lexical
//! constructs that would otherwise derail a naive scanner: nested block
//! comments, string/char/byte/raw-string literals, and lifetimes (so
//! `'a` is not mistaken for an unterminated char literal).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `match`, ...).
    Ident,
    /// Punctuation, one char per token except `::` which is kept whole.
    Punct,
    /// String, raw-string, char, byte, or numeric literal.
    Lit,
    /// A lifetime such as `'static` (kept distinct from char literals).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// The token text exactly as written (literals keep their quotes).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), on the comment channel.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens + comments. Never fails: unrecognized bytes are
/// emitted as single-char punctuation so downstream rules stay line-accurate.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"...", r#"..."#, br#"..."# etc.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if b[j] == 'b' && j + 1 < b.len() && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < b.len() && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == '"' {
                    // Scan for the closing `"` followed by `hashes` hashes.
                    let lit_start = i;
                    let start_line = line;
                    k += 1;
                    loop {
                        if k >= b.len() {
                            break;
                        }
                        if b[k] == '"' {
                            let mut h = 0;
                            while k + 1 + h < b.len() && b[k + 1 + h] == '#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break;
                            }
                        }
                        if b[k] == '\n' {
                            line += 1;
                        }
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lit,
                        text: b[lit_start..k.min(b.len())].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
        }
        // Identifier / keyword (also eats the `b` of b"..." fallthrough-free
        // because byte strings are handled below via the quote check).
        if c == '_' || c.is_alphabetic() {
            // Byte string b"..." / byte char b'...'.
            if c == 'b' && i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '\'') {
                let (tok, ni, nl) = lex_quoted(&b, i + 1, line, b[i + 1]);
                out.tokens.push(Token {
                    kind: TokKind::Lit,
                    text: format!("b{tok}"),
                    line,
                });
                i = ni;
                line = nl;
                continue;
            }
            let start = i;
            while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numbers (just enough: digits + alphanumerics + . for floats).
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len()
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let (tok, ni, nl) = lex_quoted(&b, i, line, '"');
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: tok,
                line: start_line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < b.len() && (b[i + 1] == '_' || b[i + 1].is_alphabetic()) {
                let mut k = i + 2;
                while k < b.len() && (b[k] == '_' || b[k].is_alphanumeric()) {
                    k += 1;
                }
                if k >= b.len() || b[k] != '\'' {
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i..k].iter().collect(),
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            let start_line = line;
            let (tok, ni, nl) = lex_quoted(&b, i, line, '\'');
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: tok,
                line: start_line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // `::` kept as one token — path matching relies on it.
        if c == ':' && i + 1 < b.len() && b[i + 1] == ':' {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        // Everything else: single-char punct.
        let s: String = c.to_string();
        bump_lines!(s);
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: s,
            line,
        });
        i += 1;
    }
    out
}

/// Lex a quoted literal starting at `b[i]` (which is the opening quote).
/// Returns (text, next index, next line).
fn lex_quoted(b: &[char], i: usize, mut line: u32, quote: char) -> (String, usize, u32) {
    let start = i;
    let mut k = i + 1;
    while k < b.len() {
        if b[k] == '\\' {
            k += 2;
            continue;
        }
        if b[k] == quote {
            k += 1;
            break;
        }
        if b[k] == '\n' {
            line += 1;
        }
        k += 1;
    }
    let k = k.min(b.len());
    (b[start..k].iter().collect(), k, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_and_lines() {
        let l = lex("use std::time::Instant;\nlet x = 1;");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["use", "std", "::", "time", "::", "Instant", ";", "let", "x", "=", "1", ";"]
        );
        assert_eq!(l.tokens[7].line, 2);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lit && t.text == "'x'"));
    }

    #[test]
    fn comments_on_own_channel() {
        let l = lex("let a = 1; // lint-allow(x): ok\n/* multi\nline */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("lint-allow"));
        assert_eq!(l.comments[1].line, 2);
        // b's `let` is on line 3.
        let b_let = l.tokens.iter().rposition(|t| t.text == "let").unwrap();
        assert_eq!(l.tokens[b_let].line, 3);
    }

    #[test]
    fn raw_strings_do_not_derail() {
        let l = lex(r####"let s = r#"contains "quotes" and // not a comment"#; let t = 1;"####);
        assert!(l.comments.is_empty());
        assert!(l.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* nested */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.text == "x"));
    }
}
