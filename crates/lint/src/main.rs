//! CLI for `neutrino-lint`.
//!
//! ```text
//! cargo run -p neutrino-lint --                      # lint the whole workspace
//! neutrino-lint --check-file <file.rs>               # determinism rules on one file
//! neutrino-lint --wire <sysmsg.rs> <framing.rs>      # wire-contract rules on two files
//! neutrino-lint --coverage <oracle> <invs> <scen> <testing.md> <killswitch.rs>
//! neutrino-lint --flow <sysmsg.rs> <flow.rs> [role[+handler]=FILE ...]
//! ```
//!
//! Two flags compose with any mode:
//!
//! * `--json` — emit findings as a sorted JSON array (`[{file, line, rule,
//!   message}, ...]`) instead of plain text; exit codes are unchanged.
//! * `--flow-graph FILE` (workspace and `--flow` modes) — also write the
//!   observed protocol-flow graph as deterministic JSON to `FILE` (`-` for
//!   stdout).
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error. The single-file
//! modes exist for the fixture tests under `tests/fixtures/` and for
//! spot-checking a file while editing.

use neutrino_lint::findings::Finding;
use neutrino_lint::flow;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = {
        let n = args.len();
        args.retain(|a| a != "--json");
        args.len() != n
    };
    let mut graph_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--flow-graph") {
        if i + 1 >= args.len() {
            eprintln!("neutrino-lint: error: --flow-graph needs an output path");
            return ExitCode::from(2);
        }
        graph_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let graph_ref = graph_out.as_deref();
    let result = match args.first().map(String::as_str) {
        None => workspace(graph_ref),
        Some("--check-file") if args.len() == 2 && graph_ref.is_none() => check_file(&args[1]),
        Some("--wire") if args.len() == 3 && graph_ref.is_none() => wire(&args[1], &args[2]),
        Some("--coverage") if args.len() == 6 && graph_ref.is_none() => coverage(&args[1..6]),
        Some("--flow") if args.len() >= 3 => flow_mode(&args[1], &args[2], &args[3..], graph_ref),
        Some("--help" | "-h") => {
            eprintln!(
                "usage: neutrino-lint [--json] [--flow-graph OUT] \
                 [--check-file FILE | --wire SYSMSG FRAMING \
                 | --coverage ORACLE INVARIANTS SCENARIO TESTING_MD KILLSWITCH \
                 | --flow SYSMSG FLOW_TABLE [role[+handler]=FILE ...]]"
            );
            return ExitCode::SUCCESS;
        }
        _ => Err("unrecognized arguments (try --help)".to_string()),
    };
    match result {
        Err(e) => {
            eprintln!("neutrino-lint: error: {e}");
            ExitCode::from(2)
        }
        Ok(mut findings) => {
            findings.sort_by(|a, b| {
                (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
            });
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&findings).expect("findings serialize")
                );
            } else if findings.is_empty() {
                println!("neutrino-lint: clean");
            } else {
                for f in &findings {
                    println!("{}", f.render());
                }
                println!("neutrino-lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn workspace(graph_out: Option<&str>) -> Result<Vec<Finding>, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = neutrino_lint::find_workspace_root(&cwd)
        .ok_or_else(|| "not inside a cargo workspace".to_string())?;
    let (graph, findings) = neutrino_lint::lint_workspace_full(&root)?;
    if let Some(out) = graph_out {
        write_graph(out, &graph)?;
    }
    Ok(findings)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn write_graph(out: &str, graph: &flow::FlowGraph) -> Result<(), String> {
    if out == "-" {
        print!("{}", graph.to_json());
        Ok(())
    } else {
        std::fs::write(Path::new(out), graph.to_json()).map_err(|e| format!("{out}: {e}"))
    }
}

fn check_file(path: &str) -> Result<Vec<Finding>, String> {
    Ok(neutrino_lint::lint_source(path, &read(path)?))
}

fn wire(sysmsg: &str, framing: &str) -> Result<Vec<Finding>, String> {
    Ok(neutrino_lint::wire::check(sysmsg, &read(sysmsg)?, framing, &read(framing)?))
}

fn coverage(paths: &[String]) -> Result<Vec<Finding>, String> {
    let texts: Result<Vec<String>, String> = paths.iter().map(|p| read(p)).collect();
    let texts = texts?;
    Ok(neutrino_lint::coverage::check(
        (&paths[0], &texts[0]),
        (&paths[1], &texts[1]),
        (&paths[2], &texts[2]),
        (&paths[3], &texts[3]),
        (&paths[4], &texts[4]),
    ))
}

/// `--flow SYSMSG TABLE [role[+handler]=FILE ...]`: run the protocol-flow
/// rules over an explicit fixture set. Each spec names the role the file
/// belongs to (`cta`, `cpf`, `upf`, `uepop`, `harness`, or `-` for none);
/// a `+handler` suffix marks it as a registered handler file whose
/// `fn handle` match arms are checked.
fn flow_mode(
    sysmsg: &str,
    table: &str,
    specs: &[String],
    graph_out: Option<&str>,
) -> Result<Vec<Finding>, String> {
    let sysmsg_src = read(sysmsg)?;
    let table_src = read(table)?;
    let mut files = Vec::new();
    for spec in specs {
        let (head, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --flow spec `{spec}` (want role[+handler]=FILE)"))?;
        let (role, handler) = match head.strip_suffix("+handler") {
            Some(r) => (r, true),
            None => (head, false),
        };
        if role != "-" && !flow::ROLE_NAMES.contains(&role) {
            return Err(format!("unknown role `{role}` in --flow spec `{spec}`"));
        }
        files.push(flow::FlowFile {
            label: path.to_string(),
            src: read(path)?,
            role: (role != "-").then(|| role.to_string()),
            handler,
        });
    }
    let (graph, findings) =
        neutrino_lint::lint_flow_fixture((sysmsg, &sysmsg_src), (table, &table_src), &files);
    if let Some(out) = graph_out {
        write_graph(out, &graph)?;
    }
    Ok(findings)
}
