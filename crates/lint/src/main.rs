//! CLI for `neutrino-lint`.
//!
//! ```text
//! cargo run -p neutrino-lint --                      # lint the whole workspace
//! neutrino-lint --check-file <file.rs>               # determinism rules on one file
//! neutrino-lint --wire <sysmsg.rs> <framing.rs>      # wire-contract rules on two files
//! neutrino-lint --coverage <oracle> <invs> <scen> <testing.md> <killswitch.rs>
//! ```
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error. The single-file
//! modes exist for the fixture tests under `tests/fixtures/` and for
//! spot-checking a file while editing.

use neutrino_lint::findings::Finding;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        None => workspace(),
        Some("--check-file") if args.len() == 2 => check_file(&args[1]),
        Some("--wire") if args.len() == 3 => wire(&args[1], &args[2]),
        Some("--coverage") if args.len() == 6 => coverage(&args[1..6]),
        Some("--help" | "-h") => {
            eprintln!(
                "usage: neutrino-lint [--check-file FILE | --wire SYSMSG FRAMING | --coverage ORACLE INVARIANTS SCENARIO TESTING_MD KILLSWITCH]"
            );
            return ExitCode::SUCCESS;
        }
        _ => Err("unrecognized arguments (try --help)".to_string()),
    };
    match result {
        Err(e) => {
            eprintln!("neutrino-lint: error: {e}");
            ExitCode::from(2)
        }
        Ok(findings) if findings.is_empty() => {
            println!("neutrino-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}", f.render());
            }
            println!("neutrino-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
    }
}

fn workspace() -> Result<Vec<Finding>, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = neutrino_lint::find_workspace_root(&cwd)
        .ok_or_else(|| "not inside a cargo workspace".to_string())?;
    neutrino_lint::lint_workspace(&root)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn check_file(path: &str) -> Result<Vec<Finding>, String> {
    Ok(neutrino_lint::lint_source(path, &read(path)?))
}

fn wire(sysmsg: &str, framing: &str) -> Result<Vec<Finding>, String> {
    Ok(neutrino_lint::wire::check(sysmsg, &read(sysmsg)?, framing, &read(framing)?))
}

fn coverage(paths: &[String]) -> Result<Vec<Finding>, String> {
    let texts: Result<Vec<String>, String> = paths.iter().map(|p| read(p)).collect();
    let texts = texts?;
    Ok(neutrino_lint::coverage::check(
        (&paths[0], &texts[0]),
        (&paths[1], &texts[1]),
        (&paths[2], &texts[2]),
        (&paths[3], &texts[3]),
        (&paths[4], &texts[4]),
    ))
}
