//! Finding and suppression machinery shared by all rule families.
//!
//! Two suppression channels exist, both audited for staleness:
//!
//! * inline `// lint-allow(<rule>): <reason>` comments, which suppress a
//!   finding of `<rule>` on the same line or the next code line;
//! * `crates/lint/allowlist.json`, a serializable per-file allowlist for
//!   grandfathered sites (shipped empty — every live suppression is inline
//!   and carries its reason next to the code it excuses).
//!
//! A suppression that suppresses nothing is itself reported
//! (`stale-allow` / `stale-allowlist`): the contract tightens monotonically.

use crate::lexer::Comment;
use serde::{Deserialize, Serialize};

/// One lint finding.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Path as reported (workspace-relative where possible).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier, e.g. `hash-iter`.
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Render as `file:line: [rule] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// One entry in `allowlist.json`.
#[derive(Debug, Clone, Deserialize)]
pub struct AllowEntry {
    /// Workspace-relative file path the entry applies to.
    pub file: String,
    /// Rule identifier to suppress.
    pub rule: String,
    /// Optional 1-based line; omitted = any line in the file.
    pub line: Option<u64>,
    /// Mandatory justification.
    pub reason: Option<String>,
}

/// An inline `// lint-allow(rule): reason` comment found in a file.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    /// Rule the comment suppresses.
    pub rule: String,
    /// Justification text after the colon.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Whether any finding actually matched it (staleness tracking).
    pub used: bool,
}

/// Parse every `lint-allow` comment out of a file's comment channel.
/// Malformed ones (missing rule or missing `: reason`) are reported as
/// findings so they cannot silently fail to suppress.
pub fn parse_inline_allows(file: &str, comments: &[Comment]) -> (Vec<InlineAllow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint-allow") else {
            continue;
        };
        let rest = &c.text[pos + "lint-allow".len()..];
        // Only `lint-allow(` is a suppression attempt; a prose mention of
        // "lint-allow" without the paren is just a comment.
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        let ok = (|| {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix('(')?;
            let close = rest.find(')')?;
            let rule = rest[..close].trim().to_string();
            if rule.is_empty() {
                return None;
            }
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':')?.trim().to_string();
            if reason.is_empty() {
                return None;
            }
            Some(InlineAllow { rule, reason, line: c.line, used: false })
        })();
        match ok {
            Some(a) => allows.push(a),
            None => bad.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "malformed-allow".into(),
                message: "malformed lint-allow comment; expected `// lint-allow(<rule>): <reason>`"
                    .into(),
            }),
        }
    }
    (allows, bad)
}

/// Apply inline allows to `findings` for one file: a finding is suppressed if
/// an allow for its rule sits on the same line or the line directly above.
/// Returns the surviving findings; marks used allows.
pub fn apply_inline_allows(findings: Vec<Finding>, allows: &mut [InlineAllow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            for a in allows.iter_mut() {
                if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                    a.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Report unused inline allows as `stale-allow` findings.
pub fn stale_inline_allows(file: &str, allows: &[InlineAllow]) -> Vec<Finding> {
    allows
        .iter()
        .filter(|a| !a.used)
        .map(|a| Finding {
            file: file.to_string(),
            line: a.line,
            rule: "stale-allow".into(),
            message: format!(
                "lint-allow({}) suppresses nothing here — remove it or fix the rule name",
                a.rule
            ),
        })
        .collect()
}

/// The allowlist file, with per-entry use tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(AllowEntry, bool)>,
    /// Where the list was loaded from, for reporting.
    pub path: String,
}

impl Allowlist {
    /// Parse from JSON text (an array of entries). Entries without a reason
    /// are rejected up front.
    pub fn parse(path: &str, json: &str) -> Result<Self, String> {
        let entries: Vec<AllowEntry> =
            serde_json::from_str(json).map_err(|e| format!("{path}: {e:?}"))?;
        for e in &entries {
            let has_reason = matches!(e.reason.as_deref(), Some(r) if !r.trim().is_empty());
            if !has_reason {
                return Err(format!(
                    "{path}: allowlist entry for {}:{} lacks a reason",
                    e.file, e.rule
                ));
            }
        }
        Ok(Self { entries: entries.into_iter().map(|e| (e, false)).collect(), path: path.into() })
    }

    /// Suppress matching findings, marking entries used.
    pub fn apply(&mut self, findings: Vec<Finding>) -> Vec<Finding> {
        findings
            .into_iter()
            .filter(|f| {
                for (e, used) in self.entries.iter_mut() {
                    let line_matches = match e.line {
                        None => true,
                        Some(l) => l == u64::from(f.line),
                    };
                    if e.rule == f.rule && e.file == f.file && line_matches {
                        *used = true;
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Report entries that suppressed nothing.
    pub fn stale(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|(_, used)| !used)
            .map(|(e, _)| Finding {
                file: self.path.clone(),
                line: 0,
                rule: "stale-allowlist".into(),
                message: format!(
                    "allowlist entry ({} in {}) matches no finding — remove it",
                    e.rule, e.file
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn f(file: &str, line: u32, rule: &str) -> Finding {
        Finding { file: file.into(), line, rule: rule.into(), message: "m".into() }
    }

    #[test]
    fn inline_allow_same_and_next_line() {
        let src = "// lint-allow(hash-iter): sorted downstream\nlet x = 1;\nlet y = 2; // lint-allow(wall-clock): calibration\n";
        let lexed = lex(src);
        let (mut allows, bad) = parse_inline_allows("f.rs", &lexed.comments);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 2);
        let surviving = apply_inline_allows(
            vec![f("f.rs", 2, "hash-iter"), f("f.rs", 3, "wall-clock"), f("f.rs", 2, "net")],
            &mut allows,
        );
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].rule, "net");
        assert!(stale_inline_allows("f.rs", &allows).is_empty());
    }

    #[test]
    fn stale_and_malformed() {
        let src = "// lint-allow(hash-iter): never fires\n// lint-allow(no-reason)\n";
        let lexed = lex(src);
        let (allows, bad) = parse_inline_allows("f.rs", &lexed.comments);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "malformed-allow");
        let stale = stale_inline_allows("f.rs", &allows);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "stale-allow");
    }

    #[test]
    fn allowlist_round_trip() {
        let json = r#"[{"file":"a.rs","rule":"hash-iter","line":7,"reason":"grandfathered"}]"#;
        let mut al = Allowlist::parse("allowlist.json", json).unwrap();
        let out = al.apply(vec![f("a.rs", 7, "hash-iter"), f("a.rs", 8, "hash-iter")]);
        assert_eq!(out.len(), 1);
        assert!(al.stale().is_empty());

        let mut al2 = Allowlist::parse("allowlist.json", json).unwrap();
        let _ = al2.apply(vec![]);
        assert_eq!(al2.stale().len(), 1);
    }

    #[test]
    fn allowlist_requires_reason() {
        assert!(Allowlist::parse("x", r#"[{"file":"a.rs","rule":"r"}]"#).is_err());
    }
}
