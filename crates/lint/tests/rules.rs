//! Fixture tests: each rule fires exactly where expected, suppressions
//! suppress, stale suppressions are themselves findings — checked both
//! through the library API (exact file:line assertions) and through the
//! built binary (exit codes, the acceptance-criteria surface).

use neutrino_lint::findings::Finding;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = fixture(name);
    let src = std::fs::read_to_string(&path).unwrap();
    neutrino_lint::lint_source(name, &src)
}

/// (rule, line) pairs of the findings, sorted.
fn fired(findings: &[Finding]) -> Vec<(String, u32)> {
    let mut v: Vec<(String, u32)> =
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect();
    v.sort();
    v
}

#[test]
fn wall_clock_fires_exactly_once() {
    let f = lint_fixture("bad_wall_clock.rs");
    assert_eq!(fired(&f), [("wall-clock".to_string(), 4)], "{f:?}");
}

#[test]
fn thread_net_env_rng_fire_at_expected_lines() {
    assert_eq!(fired(&lint_fixture("bad_thread.rs")), [("thread".to_string(), 3)]);
    assert_eq!(fired(&lint_fixture("bad_net.rs")), [("net".to_string(), 2)]);
    assert_eq!(fired(&lint_fixture("bad_env.rs")), [("env".to_string(), 3)]);
    assert_eq!(
        fired(&lint_fixture("bad_rng.rs")),
        [("ambient-rng".to_string(), 3), ("ambient-rng".to_string(), 4)]
    );
}

#[test]
fn hash_iter_fires_on_hash_not_btree() {
    let f = lint_fixture("bad_hash_iter.rs");
    assert_eq!(
        fired(&f),
        [
            ("hash-iter".to_string(), 10),
            ("hash-iter".to_string(), 13),
            ("hash-iter".to_string(), 18),
        ],
        "{f:?}"
    );
}

#[test]
fn inline_allows_suppress_and_stale_allows_fire() {
    let f = lint_fixture("allowed_ok.rs");
    assert!(f.is_empty(), "justified allows must fully suppress: {f:?}");
    let f = lint_fixture("stale_allow.rs");
    assert_eq!(fired(&f), [("stale-allow".to_string(), 3)], "{f:?}");
}

#[test]
fn wire_fixtures() {
    let read = |n: &str| std::fs::read_to_string(fixture(n)).unwrap();
    let sysmsg = read("wire_sysmsg.rs");

    let good = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_good.rs"));
    assert!(good.is_empty(), "{good:?}");

    let missing =
        neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_missing_decode.rs"));
    assert!(missing.iter().any(|f| f.message.contains("no arm in decode_sysmsg")), "{missing:?}");

    let gap = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_gap.rs"));
    assert!(gap.iter().any(|f| f.message.contains("gap")), "{gap:?}");

    let dup = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_dup_tag.rs"));
    assert!(dup.iter().any(|f| f.message.contains("assigned to both")), "{dup:?}");
}

#[test]
fn coverage_fixtures() {
    let read = |n: &str| std::fs::read_to_string(fixture(n)).unwrap();
    let oracle = read("cov_oracle.rs");
    let invs = read("cov_invariants.rs");

    let good = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(good.is_empty(), "{good:?}");

    let unregistered = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_missing.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(
        unregistered.iter().any(|f| f.message.contains("not registered in any scenario")),
        "{unregistered:?}"
    );

    let undocumented = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_missing.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(
        undocumented.iter().any(|f| f.message.contains("not documented")),
        "{undocumented:?}"
    );

    let unfalsifiable = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_missing.rs")),
    );
    assert!(
        unfalsifiable.iter().any(|f| f.message.contains("no kill-switch test")),
        "{unfalsifiable:?}"
    );
}

// --- binary exit codes (the `cargo run -p neutrino-lint` surface) ---------

fn run_bin(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_neutrino-lint"))
        .args(args)
        .output()
        .expect("spawn neutrino-lint")
        .status
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for bad in [
        "bad_wall_clock.rs",
        "bad_thread.rs",
        "bad_net.rs",
        "bad_env.rs",
        "bad_rng.rs",
        "bad_hash_iter.rs",
        "stale_allow.rs",
    ] {
        let status = run_bin(&["--check-file", fixture(bad).to_str().unwrap()]);
        assert_eq!(status.code(), Some(1), "{bad} must exit 1");
    }
    let status = run_bin(&["--check-file", fixture("allowed_ok.rs").to_str().unwrap()]);
    assert_eq!(status.code(), Some(0), "allowed_ok.rs must exit 0");
}

#[test]
fn binary_exits_nonzero_on_wire_and_coverage_fixtures() {
    let fx = |n: &str| fixture(n).to_str().unwrap().to_owned();
    for framing in ["wire_framing_missing_decode.rs", "wire_framing_gap.rs", "wire_framing_dup_tag.rs"]
    {
        let status = run_bin(&["--wire", &fx("wire_sysmsg.rs"), &fx(framing)]);
        assert_eq!(status.code(), Some(1), "{framing} must exit 1");
    }
    let status = run_bin(&["--wire", &fx("wire_sysmsg.rs"), &fx("wire_framing_good.rs")]);
    assert_eq!(status.code(), Some(0));

    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_missing.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_good.rs"),
    ]);
    assert_eq!(status.code(), Some(1), "missing scenario registration must exit 1");
    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_good.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_missing.rs"),
    ]);
    assert_eq!(status.code(), Some(1), "missing kill-switch test must exit 1");
    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_good.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_good.rs"),
    ]);
    assert_eq!(status.code(), Some(0));
}

#[test]
fn binary_is_clean_on_the_real_workspace() {
    let status = run_bin(&[]);
    assert_eq!(status.code(), Some(0), "the tree must lint clean");
}

// --- rule family 4: protocol flow ------------------------------------------

use neutrino_lint::flow::FlowFile;

/// Runs the flow pass over fixture files: `files` is `(name, role,
/// is_handler)`; labels are the bare fixture names so line assertions stay
/// readable.
fn flow_check(table: &str, files: &[(&str, &str, bool)]) -> Vec<Finding> {
    let read = |n: &str| std::fs::read_to_string(fixture(n)).unwrap();
    let sysmsg = read("flow_sysmsg.rs");
    let table_src = read(table);
    let flow_files: Vec<FlowFile> = files
        .iter()
        .map(|(name, role, handler)| FlowFile {
            label: name.to_string(),
            src: read(name),
            role: Some(role.to_string()),
            handler: *handler,
        })
        .collect();
    let (_, findings) = neutrino_lint::lint_flow_fixture(
        ("flow_sysmsg.rs", &sysmsg),
        (table, &table_src),
        &flow_files,
    );
    findings
}

/// (file, rule, line) triples of the findings, sorted.
fn fired_at(findings: &[Finding]) -> Vec<(String, String, u32)> {
    let mut v: Vec<(String, String, u32)> =
        findings.iter().map(|f| (f.file.clone(), f.rule.clone(), f.line)).collect();
    v.sort();
    v
}

const CTA_GOOD: (&str, &str, bool) = ("flow_cta_good.rs", "cta", true);
const CPF_GOOD: (&str, &str, bool) = ("flow_cpf_good.rs", "cpf", true);

#[test]
fn flow_good_pair_is_clean() {
    let f = flow_check("flow_table_good.rs", &[CTA_GOOD, CPF_GOOD]);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn deleting_a_handler_arm_flips_clean_to_failing() {
    // The identical table and CTA file lint clean with flow_cpf_good.rs
    // (asserted above); removing just the SysMsg::Data arm must fail.
    let f = flow_check(
        "flow_table_good.rs",
        &[CTA_GOOD, ("flow_cpf_missing_arm.rs", "cpf", true)],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_cpf_missing_arm.rs".into(), "flow-missing-handler".into(), 8)],
        "{f:?}"
    );
}

#[test]
fn undeclared_send_fires_at_the_construction_site() {
    let f = flow_check(
        "flow_table_good.rs",
        &[("flow_cta_undeclared_send.rs", "cta", true), CPF_GOOD],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_cta_undeclared_send.rs".into(), "flow-undeclared-send".into(), 13)],
        "{f:?}"
    );
}

#[test]
fn dead_arm_fires_at_the_arm_line() {
    let f = flow_check(
        "flow_table_good.rs",
        &[("flow_cta_dead_arm.rs", "cta", true), CPF_GOOD],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_cta_dead_arm.rs".into(), "flow-dead-arm".into(), 15)],
        "{f:?}"
    );
}

#[test]
fn declared_but_never_sent_is_an_orphan_at_the_table_entry() {
    let f = flow_check(
        "flow_table_good.rs",
        &[("flow_cta_no_data_send.rs", "cta", true), CPF_GOOD],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_table_good.rs".into(), "flow-orphan".into(), 6)],
        "{f:?}"
    );
}

#[test]
fn sent_but_nowhere_handled_is_an_orphan_at_the_send_site() {
    // The CPF file participates but is not a registered handler, so its
    // arms are invisible: the CTA's Ping and Data sends land nowhere.
    let f = flow_check(
        "flow_table_good.rs",
        &[CTA_GOOD, ("flow_cpf_good.rs", "cpf", false)],
    );
    assert_eq!(
        fired_at(&f),
        [
            ("flow_cta_good.rs".into(), "flow-orphan".into(), 5),
            ("flow_cta_good.rs".into(), "flow-orphan".into(), 9),
        ],
        "{f:?}"
    );
}

#[test]
fn wildcard_arm_fires_unless_audited_and_stale_audits_fire() {
    let f = flow_check(
        "flow_table_good.rs",
        &[CTA_GOOD, ("flow_cpf_wildcard.rs", "cpf", true)],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_cpf_wildcard.rs".into(), "flow-wildcard".into(), 11)],
        "{f:?}"
    );

    let f = flow_check(
        "flow_table_good.rs",
        &[CTA_GOOD, ("flow_cpf_wildcard_allowed.rs", "cpf", true)],
    );
    assert!(f.is_empty(), "audited wildcard must fully suppress: {f:?}");

    let f = flow_check(
        "flow_table_good.rs",
        &[CTA_GOOD, ("flow_cpf_stale_allow.rs", "cpf", true)],
    );
    assert_eq!(
        fired_at(&f),
        [("flow_cpf_stale_allow.rs".into(), "stale-allow".into(), 11)],
        "{f:?}"
    );
}

#[test]
fn malformed_table_fires_on_each_defect() {
    let f = flow_check("flow_table_bad.rs", &[CTA_GOOD, CPF_GOOD]);
    assert_eq!(
        fired_at(&f),
        [
            // Pong is now declared cpf→bogus only: the real cpf→cta send
            // is undeclared and the CTA's Pong arm is dead.
            ("flow_cpf_good.rs".into(), "flow-undeclared-send".into(), 5),
            ("flow_cta_good.rs".into(), "flow-dead-arm".into(), 14),
            ("flow_table_bad.rs".into(), "flow-table".into(), 6),
            ("flow_table_bad.rs".into(), "flow-table".into(), 7),
            ("flow_table_bad.rs".into(), "flow-table".into(), 9),
        ],
        "{f:?}"
    );
}

#[test]
fn missing_table_entry_violates_totality() {
    let f = flow_check("flow_table_missing_entry.rs", &[CTA_GOOD, CPF_GOOD]);
    assert_eq!(
        fired_at(&f),
        [
            // Data has no entry: the enum totality check fires at the
            // variant, and the CPF's Data arm can no longer be justified.
            ("flow_cpf_good.rs".into(), "flow-dead-arm".into(), 11),
            ("flow_sysmsg.rs".into(), "flow-table".into(), 6),
        ],
        "{f:?}"
    );
}

#[test]
fn empty_edge_list_is_a_table_finding() {
    let sysmsg = "pub enum SysMsg {\n    Ping,\n}\n";
    let table =
        "pub const FLOWS: &[FlowSpec] = &[\n    FlowSpec { variant: \"Ping\", edges: &[] },\n];\n";
    let (_, f) = neutrino_lint::lint_flow_fixture(("s.rs", sysmsg), ("t.rs", table), &[]);
    assert!(
        f.iter().any(|x| x.rule == "flow-table" && x.message.contains("no edges")),
        "{f:?}"
    );
}

#[test]
fn binary_flow_mode_exit_codes() {
    let fx = |n: &str| fixture(n).to_str().unwrap().to_owned();
    let spec = |role: &str, n: &str| format!("{role}+handler={}", fx(n));
    let clean = run_bin(&[
        "--flow",
        &fx("flow_sysmsg.rs"),
        &fx("flow_table_good.rs"),
        &spec("cta", "flow_cta_good.rs"),
        &spec("cpf", "flow_cpf_good.rs"),
    ]);
    assert_eq!(clean.code(), Some(0), "good flow fixtures must exit 0");
    let failing = run_bin(&[
        "--flow",
        &fx("flow_sysmsg.rs"),
        &fx("flow_table_good.rs"),
        &spec("cta", "flow_cta_good.rs"),
        &spec("cpf", "flow_cpf_missing_arm.rs"),
    ]);
    assert_eq!(failing.code(), Some(1), "deleted handler arm must exit 1");
    let bogus = run_bin(&["--flow", &fx("flow_sysmsg.rs"), &fx("flow_table_good.rs"), "wat"]);
    assert_eq!(bogus.code(), Some(2), "malformed spec must exit 2");
}

#[test]
fn binary_flow_graph_is_byte_identical_across_runs() {
    let fx = |n: &str| fixture(n).to_str().unwrap().to_owned();
    let spec = |role: &str, n: &str| format!("{role}+handler={}", fx(n));
    let tmp = std::env::temp_dir();
    let g1 = tmp.join("neutrino_lint_flow_graph_1.json");
    let g2 = tmp.join("neutrino_lint_flow_graph_2.json");
    for g in [&g1, &g2] {
        let status = run_bin(&[
            "--flow-graph",
            g.to_str().unwrap(),
            "--flow",
            &fx("flow_sysmsg.rs"),
            &fx("flow_table_good.rs"),
            &spec("cta", "flow_cta_good.rs"),
            &spec("cpf", "flow_cpf_good.rs"),
        ]);
        assert_eq!(status.code(), Some(0));
    }
    let a = std::fs::read(&g1).unwrap();
    let b = std::fs::read(&g2).unwrap();
    assert!(!a.is_empty() && a == b, "flow graph must serialize byte-identically");
}

#[test]
fn binary_json_findings_are_machine_readable() {
    let fx = |n: &str| fixture(n).to_str().unwrap().to_owned();
    let spec = |role: &str, n: &str| format!("{role}+handler={}", fx(n));
    let out = Command::new(env!("CARGO_BIN_EXE_neutrino-lint"))
        .args([
            "--json",
            "--flow",
            &fx("flow_sysmsg.rs"),
            &fx("flow_table_good.rs"),
            &spec("cta", "flow_cta_good.rs"),
            &spec("cpf", "flow_cpf_missing_arm.rs"),
        ])
        .output()
        .expect("spawn neutrino-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("stdout is JSON");
    let arr = v.as_seq().expect("JSON array");
    assert_eq!(arr.len(), 1, "{arr:?}");
    let field = |name: &str| {
        arr[0]
            .as_map()
            .expect("finding object")
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("field {name}"))
    };
    assert_eq!(field("rule").as_str(), Some("flow-missing-handler"));
    assert_eq!(field("line"), serde_json::Value::U64(8));
    assert!(field("file").as_str().unwrap().ends_with("flow_cpf_missing_arm.rs"));

    // A clean run under --json prints an empty array, still exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_neutrino-lint"))
        .args([
            "--json",
            "--flow",
            &fx("flow_sysmsg.rs"),
            &fx("flow_table_good.rs"),
            &spec("cta", "flow_cta_good.rs"),
            &spec("cpf", "flow_cpf_good.rs"),
        ])
        .output()
        .expect("spawn neutrino-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("stdout is JSON");
    assert_eq!(v, serde_json::Value::Seq(Vec::new()));
}
