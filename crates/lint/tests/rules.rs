//! Fixture tests: each rule fires exactly where expected, suppressions
//! suppress, stale suppressions are themselves findings — checked both
//! through the library API (exact file:line assertions) and through the
//! built binary (exit codes, the acceptance-criteria surface).

use neutrino_lint::findings::Finding;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = fixture(name);
    let src = std::fs::read_to_string(&path).unwrap();
    neutrino_lint::lint_source(name, &src)
}

/// (rule, line) pairs of the findings, sorted.
fn fired(findings: &[Finding]) -> Vec<(String, u32)> {
    let mut v: Vec<(String, u32)> =
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect();
    v.sort();
    v
}

#[test]
fn wall_clock_fires_exactly_once() {
    let f = lint_fixture("bad_wall_clock.rs");
    assert_eq!(fired(&f), [("wall-clock".to_string(), 4)], "{f:?}");
}

#[test]
fn thread_net_env_rng_fire_at_expected_lines() {
    assert_eq!(fired(&lint_fixture("bad_thread.rs")), [("thread".to_string(), 3)]);
    assert_eq!(fired(&lint_fixture("bad_net.rs")), [("net".to_string(), 2)]);
    assert_eq!(fired(&lint_fixture("bad_env.rs")), [("env".to_string(), 3)]);
    assert_eq!(
        fired(&lint_fixture("bad_rng.rs")),
        [("ambient-rng".to_string(), 3), ("ambient-rng".to_string(), 4)]
    );
}

#[test]
fn hash_iter_fires_on_hash_not_btree() {
    let f = lint_fixture("bad_hash_iter.rs");
    assert_eq!(
        fired(&f),
        [
            ("hash-iter".to_string(), 10),
            ("hash-iter".to_string(), 13),
            ("hash-iter".to_string(), 18),
        ],
        "{f:?}"
    );
}

#[test]
fn inline_allows_suppress_and_stale_allows_fire() {
    let f = lint_fixture("allowed_ok.rs");
    assert!(f.is_empty(), "justified allows must fully suppress: {f:?}");
    let f = lint_fixture("stale_allow.rs");
    assert_eq!(fired(&f), [("stale-allow".to_string(), 3)], "{f:?}");
}

#[test]
fn wire_fixtures() {
    let read = |n: &str| std::fs::read_to_string(fixture(n)).unwrap();
    let sysmsg = read("wire_sysmsg.rs");

    let good = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_good.rs"));
    assert!(good.is_empty(), "{good:?}");

    let missing =
        neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_missing_decode.rs"));
    assert!(missing.iter().any(|f| f.message.contains("no arm in decode_sysmsg")), "{missing:?}");

    let gap = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_gap.rs"));
    assert!(gap.iter().any(|f| f.message.contains("gap")), "{gap:?}");

    let dup = neutrino_lint::wire::check("s.rs", &sysmsg, "f.rs", &read("wire_framing_dup_tag.rs"));
    assert!(dup.iter().any(|f| f.message.contains("assigned to both")), "{dup:?}");
}

#[test]
fn coverage_fixtures() {
    let read = |n: &str| std::fs::read_to_string(fixture(n)).unwrap();
    let oracle = read("cov_oracle.rs");
    let invs = read("cov_invariants.rs");

    let good = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(good.is_empty(), "{good:?}");

    let unregistered = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_missing.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(
        unregistered.iter().any(|f| f.message.contains("not registered in any scenario")),
        "{unregistered:?}"
    );

    let undocumented = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_missing.md")),
        ("k.rs", &read("cov_killswitch_good.rs")),
    );
    assert!(
        undocumented.iter().any(|f| f.message.contains("not documented")),
        "{undocumented:?}"
    );

    let unfalsifiable = neutrino_lint::coverage::check(
        ("o.rs", &oracle),
        ("i.rs", &invs),
        ("s.rs", &read("cov_scenario_good.rs")),
        ("t.md", &read("cov_testing_good.md")),
        ("k.rs", &read("cov_killswitch_missing.rs")),
    );
    assert!(
        unfalsifiable.iter().any(|f| f.message.contains("no kill-switch test")),
        "{unfalsifiable:?}"
    );
}

// --- binary exit codes (the `cargo run -p neutrino-lint` surface) ---------

fn run_bin(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_neutrino-lint"))
        .args(args)
        .output()
        .expect("spawn neutrino-lint")
        .status
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for bad in [
        "bad_wall_clock.rs",
        "bad_thread.rs",
        "bad_net.rs",
        "bad_env.rs",
        "bad_rng.rs",
        "bad_hash_iter.rs",
        "stale_allow.rs",
    ] {
        let status = run_bin(&["--check-file", fixture(bad).to_str().unwrap()]);
        assert_eq!(status.code(), Some(1), "{bad} must exit 1");
    }
    let status = run_bin(&["--check-file", fixture("allowed_ok.rs").to_str().unwrap()]);
    assert_eq!(status.code(), Some(0), "allowed_ok.rs must exit 0");
}

#[test]
fn binary_exits_nonzero_on_wire_and_coverage_fixtures() {
    let fx = |n: &str| fixture(n).to_str().unwrap().to_owned();
    for framing in ["wire_framing_missing_decode.rs", "wire_framing_gap.rs", "wire_framing_dup_tag.rs"]
    {
        let status = run_bin(&["--wire", &fx("wire_sysmsg.rs"), &fx(framing)]);
        assert_eq!(status.code(), Some(1), "{framing} must exit 1");
    }
    let status = run_bin(&["--wire", &fx("wire_sysmsg.rs"), &fx("wire_framing_good.rs")]);
    assert_eq!(status.code(), Some(0));

    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_missing.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_good.rs"),
    ]);
    assert_eq!(status.code(), Some(1), "missing scenario registration must exit 1");
    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_good.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_missing.rs"),
    ]);
    assert_eq!(status.code(), Some(1), "missing kill-switch test must exit 1");
    let status = run_bin(&[
        "--coverage",
        &fx("cov_oracle.rs"),
        &fx("cov_invariants.rs"),
        &fx("cov_scenario_good.rs"),
        &fx("cov_testing_good.md"),
        &fx("cov_killswitch_good.rs"),
    ]);
    assert_eq!(status.code(), Some(0));
}

#[test]
fn binary_is_clean_on_the_real_workspace() {
    let status = run_bin(&[]);
    assert_eq!(status.code(), Some(0), "the tree must lint clean");
}
