//! Fixture: an inline flow-wildcard allow with no wildcard left — the
//! allow itself must be reported stale.

pub fn pong(cta: u64, n: u64) -> CpfOutput {
    CpfOutput::ToCta { cta, msg: SysMsg::Pong { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Ping { n } => n,
        // lint-allow(flow-wildcard): stale — the wildcard was removed
        SysMsg::Data(d) => d,
    }
}
