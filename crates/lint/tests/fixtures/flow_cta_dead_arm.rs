//! Fixture: the CTA matches Ping, which it is never declared to
//! receive — a dead arm.

pub fn ping(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Ping { n } }
}

pub fn data(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Data(n) }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Pong { n } => n,
        SysMsg::Ping { n } => n,
    }
}
