//! Fixture: `flow_cpf_good.rs` with the `SysMsg::Data` handler arm
//! deleted — the flow pass must flip from clean to failing.

pub fn pong(cta: u64, n: u64) -> CpfOutput {
    CpfOutput::ToCta { cta, msg: SysMsg::Pong { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Ping { n } => n,
    }
}
