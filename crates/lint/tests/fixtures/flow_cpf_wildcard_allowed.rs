//! Fixture: the same catch-all, audited with an inline allow.

pub fn pong(cta: u64, n: u64) -> CpfOutput {
    CpfOutput::ToCta { cta, msg: SysMsg::Pong { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Ping { n } => n,
        SysMsg::Data(d) => d,
        // lint-allow(flow-wildcard): fixture — counted elsewhere
        _ => 0,
    }
}
