//! Fixture: the CTA also sends Pong, which the table declares cpf→cta
//! only — an undeclared send.

pub fn ping(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Ping { n } }
}

pub fn data(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Data(n) }
}

pub fn bad(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Pong { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Pong { n } => n,
    }
}
