//! Fixture: the CTA side of the mini protocol (role `cta`, registered
//! handler). Sends Ping and Data, handles Pong.

pub fn ping(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Ping { n } }
}

pub fn data(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Data(n) }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Pong { n } => n,
    }
}
