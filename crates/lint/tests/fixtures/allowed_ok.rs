// Fixture: each violation carries a justified lint-allow — file is clean.
pub fn calibrate() -> u128 {
    // lint-allow(wall-clock): fixture stand-in for offline calibration
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}
use std::collections::HashMap;
pub fn sum(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum() // lint-allow(hash-iter): commutative sum, order-free
}
