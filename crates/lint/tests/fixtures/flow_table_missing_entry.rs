//! Fixture: the table has no entry for `SysMsg::Data` — totality
//! violation.

pub const FLOWS: &[FlowSpec] = &[
    FlowSpec { variant: "Ping", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Pong", edges: &[(Role::Cpf, Role::Cta)] },
];
