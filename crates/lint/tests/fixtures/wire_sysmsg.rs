// Fixture enum for the wire-contract rule.
pub enum SysMsg {
    Alpha(u8),
    Beta { x: u64 },
    Gamma,
}
