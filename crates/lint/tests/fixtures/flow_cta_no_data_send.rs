//! Fixture: nothing constructs `SysMsg::Data`, so its declared flow is a
//! dead protocol path.

pub fn ping(cpf: u64, n: u64) -> CtaOutput {
    CtaOutput::ToCpf { cpf, msg: SysMsg::Ping { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Pong { n } => n,
    }
}
