//! Fixture: mini SysMsg enum for the flow rules.

pub enum SysMsg {
    Ping { n: u64 },
    Pong { n: u64 },
    Data(u64),
}
