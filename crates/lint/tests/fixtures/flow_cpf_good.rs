//! Fixture: the CPF side (role `cpf`, registered handler). Sends Pong,
//! handles Ping and Data.

pub fn pong(cta: u64, n: u64) -> CpfOutput {
    CpfOutput::ToCta { cta, msg: SysMsg::Pong { n } }
}

pub fn handle(msg: SysMsg) -> u64 {
    match msg {
        SysMsg::Ping { n } => n,
        SysMsg::Data(d) => d,
    }
}
