// Fixture kill-switch suite: every catalog invariant fires by name.
fn kill_switch_consistency() {
    invariant_by_name("consistency");
}
fn kill_switch_no_lost_procedure() {
    invariant_by_name("no-lost-procedure");
}
