// Fixture: net rule must fire on line 2.
use std::net::UdpSocket;
pub fn bind() -> std::io::Result<UdpSocket> {
    UdpSocket::bind("127.0.0.1:0")
}
