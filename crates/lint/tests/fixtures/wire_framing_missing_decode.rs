// Fixture framing: total, injective, gap-free — must pass.
const TAG_ALPHA: u8 = 1;
const TAG_BETA: u8 = 2;
const TAG_GAMMA: u8 = 3;
pub fn encode_sysmsg(m: &SysMsg, buf: &mut Vec<u8>) {
    match m {
        SysMsg::Alpha(v) => { buf.put_u8(TAG_ALPHA); buf.put_u8(*v); }
        SysMsg::Beta { x } => { buf.put_u8(TAG_BETA); buf.put_u64(*x); }
        SysMsg::Gamma => { buf.put_u8(TAG_GAMMA); }
    }
}
pub fn decode_sysmsg(frame: &[u8]) -> Result<SysMsg> {
    Ok(match frame[0] {
        TAG_ALPHA => SysMsg::Alpha(frame[1]),
        TAG_BETA => { let x = 0u64; SysMsg::Beta { x } }
        other => return Err(other),
    })
}
