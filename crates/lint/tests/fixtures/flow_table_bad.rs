//! Fixture: a malformed flow table — duplicate entry, unknown role,
//! entry for a variant that does not exist.

pub const FLOWS: &[FlowSpec] = &[
    FlowSpec { variant: "Ping", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Ping", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Pong", edges: &[(Role::Cpf, Role::Bogus)] },
    FlowSpec { variant: "Data", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Nope", edges: &[(Role::Cta, Role::Cpf)] },
];
