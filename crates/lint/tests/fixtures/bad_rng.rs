// Fixture: ambient-rng rule must fire on lines 3 and 4.
pub fn roll() -> u64 {
    let mut rng = thread_rng();
    let alt = SmallRng::from_entropy();
    let _ = alt;
    rng.gen()
}
