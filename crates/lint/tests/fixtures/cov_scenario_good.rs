const NEUTRINO_INVARIANTS: &[&str] = &["consistency", "no-lost-procedure"];
