const NEUTRINO_INVARIANTS: &[&str] = &["consistency"];
