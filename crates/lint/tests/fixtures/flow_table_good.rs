//! Fixture: a total, well-formed flow table for the mini protocol.

pub const FLOWS: &[FlowSpec] = &[
    FlowSpec { variant: "Ping", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Pong", edges: &[(Role::Cpf, Role::Cta)] },
    FlowSpec { variant: "Data", edges: &[(Role::Cta, Role::Cpf)] },
];
