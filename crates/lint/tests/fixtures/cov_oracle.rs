// Fixture oracle: one invariant implementation.
pub const CONSISTENCY: &str = "consistency";
pub trait Invariant { fn name(&self) -> &'static str; }
pub struct ConsistencyInvariant;
impl Invariant for ConsistencyInvariant {
    fn name(&self) -> &'static str { CONSISTENCY }
}
