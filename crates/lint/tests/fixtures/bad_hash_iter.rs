// Fixture: hash-iter must fire on lines 10, 13 and 18 — not on the
// BTreeMap iteration (line 22) or the pure lookup (line 26).
use std::collections::{BTreeMap, HashMap, HashSet};
pub struct Registry {
    members: HashMap<u64, String>,
    ordered: BTreeMap<u64, String>,
}
impl Registry {
    pub fn emit_all(&self) -> Vec<String> {
        self.members.values().cloned().collect()
    }
    pub fn drop_even(&mut self) {
        self.members.retain(|k, _| k % 2 == 1);
    }
}
pub fn union(a: &HashSet<u64>) -> u64 {
    let mut total = 0;
    for x in a {
        total += x;
    }
    let r = Registry { members: HashMap::new(), ordered: BTreeMap::new() };
    for (_, v) in r.ordered.iter() {
        let _ = v;
    }
    total + r.members.get(&1).map_or(0, |_| 1)
}
