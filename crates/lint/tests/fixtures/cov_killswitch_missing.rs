// Fixture kill-switch suite missing one invariant.
fn kill_switch_consistency() {
    invariant_by_name("consistency");
}
