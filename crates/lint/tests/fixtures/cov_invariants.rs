// Fixture catalog: one more invariant plus the registry slice.
pub const NO_LOST: &str = "no-lost-procedure";
pub const ALL_INVARIANTS: &[&str] = &[fixture::oracle::CONSISTENCY, NO_LOST];
pub struct NoLost;
impl Invariant for NoLost {
    fn name(&self) -> &'static str { NO_LOST }
}
