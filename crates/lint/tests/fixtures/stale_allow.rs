// Fixture: stale-allow must fire on line 3 (nothing to suppress).
pub fn clean() -> u64 {
    // lint-allow(wall-clock): nothing here reads a clock
    42
}
