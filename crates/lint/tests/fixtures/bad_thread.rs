// Fixture: thread rule must fire on line 3.
pub fn spawn_worker() {
    std::thread::spawn(|| {});
}
