// Fixture: env rule must fire on line 3.
pub fn jobs() -> usize {
    std::env::var("JOBS").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}
