// Fixture: wall-clock rule must fire on line 4 and nowhere else.
pub fn elapsed_ms() -> u128 {
    let d = std::time::Duration::from_millis(5); // Duration alone is fine
    let t0 = std::time::Instant::now();
    let _ = d;
    t0.elapsed().as_millis()
}
