//! Control procedure templates.
//!
//! §5: "Our CPF implementation supports the following four control
//! procedures: (i) initial attach, (ii) handover with CPF change, (iii)
//! FastHandover and (iv) service request." We implement those four plus the
//! re-attach used by failure recovery (§4.2.5), tracking-area update, and
//! detach. A template is the ordered message sequence of one procedure; the
//! simulator and the real-time driver both execute templates, and the
//! baselines differ only in *how* the messages are serialized, logged, and
//! replicated — not in the flows themselves.

use crate::control::{Direction, MessageKind};

/// A control procedure supported by the CPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcedureKind {
    /// Initial attach: UE registers and gets a default bearer.
    InitialAttach,
    /// Service request: idle→connected transition restoring bearers.
    ServiceRequest,
    /// S1 handover with CPF change (UE state must move to the target CPF).
    HandoverWithCpfChange,
    /// Neutrino's fast handover: the target already holds a proactive
    /// level-2 replica of the UE state (§4.3).
    FastHandover,
    /// Re-attach after a failure (failure scenarios 3 and 4, §4.2.5).
    ReAttach,
    /// Tracking-area update.
    TrackingAreaUpdate,
    /// Detach.
    Detach,
}

impl ProcedureKind {
    /// Every procedure kind.
    pub const ALL: &'static [ProcedureKind] = &[
        ProcedureKind::InitialAttach,
        ProcedureKind::ServiceRequest,
        ProcedureKind::HandoverWithCpfChange,
        ProcedureKind::FastHandover,
        ProcedureKind::ReAttach,
        ProcedureKind::TrackingAreaUpdate,
        ProcedureKind::Detach,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProcedureKind::InitialAttach => "initial-attach",
            ProcedureKind::ServiceRequest => "service-request",
            ProcedureKind::HandoverWithCpfChange => "handover-cpf-change",
            ProcedureKind::FastHandover => "fast-handover",
            ProcedureKind::ReAttach => "re-attach",
            ProcedureKind::TrackingAreaUpdate => "tracking-area-update",
            ProcedureKind::Detach => "detach",
        }
    }

    /// The message sequence of this procedure.
    pub fn template(self) -> &'static ProcedureTemplate {
        template(self)
    }
}

impl std::fmt::Display for ProcedureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One message exchange within a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Message kind exchanged.
    pub kind: MessageKind,
    /// Direction relative to the core.
    pub direction: Direction,
    /// The CPF performs a UPF (S11) round trip while processing this step —
    /// session create / modify / delete.
    pub upf_interaction: bool,
    /// The step happens *after* the UE already regained data access: it adds
    /// control-plane load but does not extend the procedure completion time
    /// measured at the UE.
    pub post_completion: bool,
    /// Processing this step requires the UE state to migrate from the source
    /// CPF to the target CPF first (handover with CPF change). Neutrino's
    /// fast handover eliminates this (§4.3).
    pub requires_state_migration: bool,
}

impl Step {
    const fn ul(kind: MessageKind) -> Step {
        Step {
            kind,
            direction: Direction::Uplink,
            upf_interaction: false,
            post_completion: false,
            requires_state_migration: false,
        }
    }

    const fn dl(kind: MessageKind) -> Step {
        Step {
            kind,
            direction: Direction::Downlink,
            upf_interaction: false,
            post_completion: false,
            requires_state_migration: false,
        }
    }

    const fn with_upf(mut self) -> Step {
        self.upf_interaction = true;
        self
    }

    const fn post(mut self) -> Step {
        self.post_completion = true;
        self
    }

    const fn with_migration(mut self) -> Step {
        self.requires_state_migration = true;
        self
    }
}

/// The full message sequence of a procedure. The first step is always an
/// uplink request; procedure completion time (PCT) runs from that request
/// leaving the UE until the last non-`post_completion` step is delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcedureTemplate {
    /// The procedure this template describes.
    pub kind: ProcedureKind,
    /// Ordered message exchanges.
    pub steps: Vec<Step>,
}

impl ProcedureTemplate {
    /// Steps that bound the UE-observed completion time.
    pub fn critical_steps(&self) -> impl Iterator<Item = &Step> {
        self.steps.iter().filter(|s| !s.post_completion)
    }

    /// Index of the last step inside the PCT window.
    pub fn completion_index(&self) -> usize {
        self.steps
            .iter()
            .rposition(|s| !s.post_completion)
            .expect("templates have at least one critical step")
    }

    /// The kind of the final (end-of-procedure) message — what the CTA uses
    /// to delimit its log.
    pub fn last_kind(&self) -> MessageKind {
        self.steps.last().expect("non-empty").kind
    }

    /// Number of uplink messages (what the CTA must log, §4.2.3).
    pub fn uplink_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.direction == Direction::Uplink)
            .count()
    }
}

fn template(kind: ProcedureKind) -> &'static ProcedureTemplate {
    use std::sync::OnceLock;
    static TEMPLATES: OnceLock<Vec<ProcedureTemplate>> = OnceLock::new();
    let all = TEMPLATES.get_or_init(|| {
        ProcedureKind::ALL
            .iter()
            .map(|k| ProcedureTemplate {
                kind: *k,
                steps: steps_for(*k),
            })
            .collect()
    });
    &all[ProcedureKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("all kinds enumerated")]
}

fn steps_for(kind: ProcedureKind) -> Vec<Step> {
    use MessageKind as K;
    match kind {
        // The full LTE attach: Attach Request (inside Initial UE Message),
        // the EPS-AKA authentication exchange, NAS security mode, then the
        // UPF session creation and Attach Accept inside Initial Context
        // Setup Request — at which point the UE has data access. The setup
        // response and Attach Complete still flow (and load the CPF) but
        // are post-completion.
        ProcedureKind::InitialAttach | ProcedureKind::ReAttach => vec![
            Step::ul(K::InitialUeMessage),
            Step::dl(K::AuthenticationRequest),
            Step::ul(K::AuthenticationResponse),
            Step::dl(K::SecurityModeCommand),
            Step::ul(K::SecurityModeComplete),
            Step::dl(K::InitialContextSetupRequest).with_upf(),
            Step::ul(K::InitialContextSetupResponse).post(),
            Step::ul(K::AttachComplete).post(),
        ],
        // Idle→connected: Service Request up, Initial Context Setup down
        // immediately (radio bearers first); the S11 modify-bearer follows
        // the setup response, off the critical path — the real LTE ordering.
        ProcedureKind::ServiceRequest => vec![
            Step::ul(K::ServiceRequest),
            Step::dl(K::InitialContextSetupRequest),
            Step::ul(K::InitialContextSetupResponse).with_upf().post(),
        ],
        // S1 handover: Handover Required up; the target CPF must first
        // receive the UE state (migration), then Handover Request down to
        // the target BS, Ack up, Handover Command down to the UE — the UE
        // switches cells at that point. Notify + release are post.
        ProcedureKind::HandoverWithCpfChange => vec![
            Step::ul(K::HandoverRequired),
            Step::dl(K::HandoverRequest).with_migration(),
            Step::ul(K::HandoverRequestAck),
            Step::dl(K::HandoverCommand),
            Step::ul(K::HandoverNotify).with_upf().post(),
            Step::dl(K::UeContextReleaseCommand).post(),
            Step::ul(K::UeContextReleaseComplete).post(),
        ],
        // Fast handover: identical flow minus the state migration — the
        // target CPF already holds a level-2 replica (§4.3).
        ProcedureKind::FastHandover => vec![
            Step::ul(K::HandoverRequired),
            Step::dl(K::HandoverRequest),
            Step::ul(K::HandoverRequestAck),
            Step::dl(K::HandoverCommand),
            Step::ul(K::HandoverNotify).with_upf().post(),
            Step::dl(K::UeContextReleaseCommand).post(),
            Step::ul(K::UeContextReleaseComplete).post(),
        ],
        ProcedureKind::TrackingAreaUpdate => vec![Step::ul(K::TauRequest), Step::dl(K::TauAccept)],
        ProcedureKind::Detach => vec![
            Step::ul(K::DetachRequest),
            Step::dl(K::DetachAccept).with_upf(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_start_with_uplink() {
        for kind in ProcedureKind::ALL {
            let t = kind.template();
            assert_eq!(
                t.steps[0].direction,
                Direction::Uplink,
                "{kind} must start with a request"
            );
            assert_eq!(t.kind, *kind);
        }
    }

    #[test]
    fn completion_index_is_a_downlink_except_pure_uplink_tails() {
        for kind in ProcedureKind::ALL {
            let t = kind.template();
            let idx = t.completion_index();
            assert_eq!(
                t.steps[idx].direction,
                Direction::Downlink,
                "{kind}: PCT must end with a message arriving at the UE"
            );
        }
    }

    #[test]
    fn fast_handover_differs_only_in_migration() {
        let slow = ProcedureKind::HandoverWithCpfChange.template();
        let fast = ProcedureKind::FastHandover.template();
        assert_eq!(slow.steps.len(), fast.steps.len());
        for (s, f) in slow.steps.iter().zip(&fast.steps) {
            assert_eq!(s.kind, f.kind);
            assert_eq!(s.direction, f.direction);
            assert_eq!(s.upf_interaction, f.upf_interaction);
        }
        assert!(slow.steps.iter().any(|s| s.requires_state_migration));
        assert!(!fast.steps.iter().any(|s| s.requires_state_migration));
    }

    #[test]
    fn attach_has_upf_interaction_on_critical_path() {
        let t = ProcedureKind::InitialAttach.template();
        assert!(t.critical_steps().any(|s| s.upf_interaction));
        // The service request does not block on the UPF (LTE ordering).
        let sr = ProcedureKind::ServiceRequest.template();
        assert!(sr.critical_steps().all(|s| !s.upf_interaction));
    }

    #[test]
    fn attach_authenticates_before_context_setup() {
        let t = ProcedureKind::InitialAttach.template();
        let pos = |k: MessageKind| t.steps.iter().position(|s| s.kind == k).unwrap();
        assert!(pos(MessageKind::AuthenticationRequest) < pos(MessageKind::SecurityModeCommand));
        assert!(
            pos(MessageKind::SecurityModeComplete) < pos(MessageKind::InitialContextSetupRequest)
        );
    }

    #[test]
    fn uplink_counts_match_flows() {
        assert_eq!(ProcedureKind::InitialAttach.template().uplink_count(), 5);
        assert_eq!(ProcedureKind::ServiceRequest.template().uplink_count(), 2);
        assert_eq!(
            ProcedureKind::HandoverWithCpfChange
                .template()
                .uplink_count(),
            4
        );
        assert_eq!(ProcedureKind::Detach.template().uplink_count(), 1);
    }

    #[test]
    fn re_attach_matches_initial_attach_flow() {
        assert_eq!(
            ProcedureKind::InitialAttach.template().steps,
            ProcedureKind::ReAttach.template().steps
        );
    }
}
