//! The unified control-message type the control plane routes.
//!
//! [`ControlMessage`] sums every NAS and S1AP message; [`MessageKind`] is its
//! fieldless mirror used as a key in cost tables and procedure templates;
//! [`Envelope`] is the routable unit: message + UE id + procedure id + the
//! logical clock the CTA stamps (§4.2.3).

use crate::nas::*;
use crate::procedures::ProcedureKind;
use crate::s1ap::*;
use crate::wire::Wire;
use neutrino_codec::value::{Schema, Value};
use neutrino_codec::WireFormat;
use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, CtaId, ProcedureId, Result, UeId};
use std::sync::Arc;

/// Message travel direction relative to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// UE/BS → CTA → CPF.
    Uplink,
    /// CPF → CTA → BS/UE.
    Downlink,
}

macro_rules! control_messages {
    ($( $variant:ident ),+ $(,)?) => {
        /// Any control message exchanged between UE/BS and the control plane.
        #[derive(Debug, Clone, PartialEq)]
        pub enum ControlMessage {
            $(
                #[doc = concat!("See [`", stringify!($variant), "`].")]
                $variant($variant),
            )+
        }

        /// Fieldless mirror of [`ControlMessage`]; keys cost tables and
        /// procedure templates.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum MessageKind {
            $(
                #[doc = concat!("Kind of [`", stringify!($variant), "`].")]
                $variant,
            )+
        }

        impl MessageKind {
            /// Every message kind.
            pub const ALL: &'static [MessageKind] = &[
                $(MessageKind::$variant,)+
            ];

            /// Stable display name.
            pub fn name(self) -> &'static str {
                match self {
                    $(MessageKind::$variant => stringify!($variant),)+
                }
            }

            /// The schema of this message kind.
            pub fn schema(self) -> Arc<Schema> {
                match self {
                    $(MessageKind::$variant => <$variant as Wire>::schema(),)+
                }
            }

            /// A realistic sample of this message kind.
            pub fn sample(self, seed: u64) -> ControlMessage {
                match self {
                    $(MessageKind::$variant =>
                        ControlMessage::$variant(<$variant as Wire>::sample(seed)),)+
                }
            }

            /// Parses a decoded value of this kind back into a message.
            pub fn from_value(self, v: &Value) -> Result<ControlMessage> {
                match self {
                    $(MessageKind::$variant =>
                        Ok(ControlMessage::$variant(<$variant as Wire>::from_value(v)?)),)+
                }
            }
        }

        impl ControlMessage {
            /// The kind of this message.
            pub fn kind(&self) -> MessageKind {
                match self {
                    $(ControlMessage::$variant(_) => MessageKind::$variant,)+
                }
            }

            /// Converts to the codec value model.
            pub fn to_value(&self) -> Value {
                match self {
                    $(ControlMessage::$variant(m) => m.to_value(),)+
                }
            }
        }
    };
}

control_messages!(
    // NAS
    AttachRequest,
    AttachAccept,
    AttachComplete,
    ServiceRequest,
    ServiceAccept,
    TauRequest,
    TauAccept,
    DetachRequest,
    DetachAccept,
    AuthenticationRequest,
    AuthenticationResponse,
    SecurityModeCommand,
    SecurityModeComplete,
    // S1AP
    InitialUeMessage,
    InitialContextSetupRequest,
    InitialContextSetupResponse,
    ERabSetupRequest,
    ERabSetupResponse,
    UplinkNasTransport,
    DownlinkNasTransport,
    HandoverRequired,
    HandoverRequest,
    HandoverRequestAck,
    HandoverCommand,
    HandoverNotify,
    UeContextReleaseCommand,
    UeContextReleaseComplete,
    Paging,
);

impl ControlMessage {
    /// Encodes the message through a codec.
    pub fn encode(&self, codec: &dyn WireFormat, out: &mut Vec<u8>) -> Result<()> {
        codec.encode(&self.kind().schema(), &self.to_value(), out)
    }

    /// Decodes a message of known `kind` through a codec.
    pub fn decode(kind: MessageKind, codec: &dyn WireFormat, bytes: &[u8]) -> Result<Self> {
        kind.from_value(&codec.decode(&kind.schema(), bytes)?)
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A routable control message: the payload plus the identifiers the CTA and
/// CPF use to route, log, and replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The UE this message concerns.
    pub ue: UeId,
    /// Which procedure run it belongs to (unique per UE).
    pub procedure: ProcedureId,
    /// The kind of procedure this message is part of.
    pub proc_kind: ProcedureKind,
    /// The base station the UE is (or was last) attached through — uplink
    /// provenance and downlink routing target.
    pub bs: BsId,
    /// The CTA the message was routed through (stamped by the CTA alongside
    /// the logical clock); responses return via the same CTA.
    pub via_cta: Option<CtaId>,
    /// Logical clock stamped by the CTA on first receipt; `ClockTick::ZERO`
    /// until stamped.
    pub clock: ClockTick,
    /// Travel direction.
    pub direction: Direction,
    /// True when this is the last message of its procedure — the CPF uses it
    /// to trigger the per-procedure state checkpoint (§4.2.2) and the CTA to
    /// delimit the log (§4.2.3).
    pub end_of_procedure: bool,
    /// The message itself.
    pub msg: ControlMessage,
}

impl Envelope {
    /// Creates an unstamped uplink envelope.
    pub fn uplink(
        ue: UeId,
        procedure: ProcedureId,
        proc_kind: ProcedureKind,
        msg: ControlMessage,
    ) -> Self {
        Envelope {
            ue,
            procedure,
            proc_kind,
            bs: BsId::new(0),
            via_cta: None,
            clock: ClockTick::ZERO,
            direction: Direction::Uplink,
            end_of_procedure: false,
            msg,
        }
    }

    /// Creates a downlink envelope.
    pub fn downlink(
        ue: UeId,
        procedure: ProcedureId,
        proc_kind: ProcedureKind,
        msg: ControlMessage,
    ) -> Self {
        Envelope {
            ue,
            procedure,
            proc_kind,
            bs: BsId::new(0),
            via_cta: None,
            clock: ClockTick::ZERO,
            direction: Direction::Downlink,
            end_of_procedure: false,
            msg,
        }
    }

    /// Sets the base station.
    pub fn from_bs(mut self, bs: BsId) -> Self {
        self.bs = bs;
        self
    }

    /// Marks this envelope as the last message of its procedure.
    pub fn ending_procedure(mut self) -> Self {
        self.end_of_procedure = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_codec::CodecKind;

    #[test]
    fn all_kinds_have_distinct_names_and_schemas() {
        let mut names = std::collections::HashSet::new();
        for kind in MessageKind::ALL {
            assert!(names.insert(kind.name()), "duplicate name {kind}");
            assert!(!kind.schema().fields.is_empty());
        }
        assert_eq!(MessageKind::ALL.len(), 28);
    }

    #[test]
    fn kind_round_trips_through_sample() {
        for kind in MessageKind::ALL {
            let msg = kind.sample(42);
            assert_eq!(msg.kind(), *kind);
        }
    }

    #[test]
    fn every_kind_encodes_and_decodes_through_per_and_fastbuf() {
        for kind in MessageKind::ALL {
            for codec_kind in [
                CodecKind::Asn1Per,
                CodecKind::Fastbuf,
                CodecKind::FastbufOptimized,
            ] {
                let codec = codec_kind.instance();
                let msg = kind.sample(7);
                let mut buf = Vec::new();
                msg.encode(codec.as_ref(), &mut buf)
                    .unwrap_or_else(|e| panic!("{kind}/{codec_kind}: encode: {e}"));
                let back = ControlMessage::decode(*kind, codec.as_ref(), &buf)
                    .unwrap_or_else(|e| panic!("{kind}/{codec_kind}: decode: {e}"));
                assert_eq!(back, msg, "{kind}/{codec_kind}");
            }
        }
    }

    #[test]
    fn envelope_builders_set_direction_and_eop() {
        let e = Envelope::uplink(
            UeId::new(1),
            ProcedureId::FIRST,
            crate::procedures::ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(1),
        );
        assert_eq!(e.direction, Direction::Uplink);
        assert!(!e.end_of_procedure);
        let e = e.ending_procedure();
        assert!(e.end_of_procedure);
        let d = Envelope::downlink(
            UeId::new(1),
            ProcedureId::FIRST,
            crate::procedures::ProcedureKind::ServiceRequest,
            MessageKind::ServiceAccept.sample(1),
        );
        assert_eq!(d.direction, Direction::Downlink);
    }
}
