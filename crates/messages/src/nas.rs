//! NAS (Non-Access-Stratum, TS 24.301) messages: the UE ↔ CPF dialogue.
//!
//! These are the payloads a base station relays opaquely; the CPF decodes
//! them to run attach / service-request / tracking-area-update / detach
//! procedure state machines.

use crate::ies::{list_from_value, list_to_value, Tai};
use crate::wire::{fields, get_bits, get_bytes, get_opt, get_u32, get_u8, list_of, optional, Wire};
use neutrino_codec::value::{FieldType, Schema, StructSchema, Value};
use neutrino_common::Result;
use std::sync::{Arc, OnceLock};

/// NAS Attach Request (UE → CPF). Starts the initial-attach procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachRequest {
    /// EPS attach type (1 = EPS attach, 2 = combined, 3 = emergency).
    pub attach_type: u8,
    /// NAS key-set identifier.
    pub nas_ksi: u8,
    /// Old M-TMSI if the UE had one (re-attach / returning UE).
    pub old_tmsi: Option<u32>,
    /// IMSI digits when no valid TMSI exists (first attach).
    pub imsi: Option<String>,
    /// UE network capability bit flags.
    pub ue_network_capability: Vec<bool>,
    /// Piggy-backed ESM message (PDN connectivity request).
    pub esm_container: Vec<u8>,
    /// Last visited TAI, when known.
    pub last_visited_tai: Option<Tai>,
}

impl Wire for AttachRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("AttachRequest")
                        .field("attach_type", FieldType::Constrained { lo: 1, hi: 7 })
                        .field("nas_ksi", FieldType::Constrained { lo: 0, hi: 7 })
                        .field("old_tmsi", optional(FieldType::UInt { bits: 32 }))
                        .field("imsi", optional(FieldType::Utf8 { max: Some(15) }))
                        .field(
                            "ue_network_capability",
                            FieldType::BitString { max_bits: Some(64) },
                        )
                        .field("esm_container", FieldType::Bytes { max: None })
                        .field("last_visited_tai", optional(Tai::field_type()))
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.attach_type)),
            Value::U64(u64::from(self.nas_ksi)),
            match self.old_tmsi {
                Some(t) => Value::some(Value::U64(u64::from(t))),
                None => Value::none(),
            },
            match &self.imsi {
                Some(s) => Value::some(Value::Str(s.clone())),
                None => Value::none(),
            },
            Value::Bits(self.ue_network_capability.clone()),
            Value::Bytes(self.esm_container.clone()),
            match &self.last_visited_tai {
                Some(t) => Value::some(t.to_value()),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "AttachRequest";
        let f = fields(v, M, 7)?;
        Ok(AttachRequest {
            attach_type: get_u8(&f[0], M, "attach_type")?,
            nas_ksi: get_u8(&f[1], M, "nas_ksi")?,
            old_tmsi: get_opt(&f[2], M, "old_tmsi")?
                .map(|x| get_u32(x, M, "old_tmsi"))
                .transpose()?,
            imsi: get_opt(&f[3], M, "imsi")?
                .map(|x| crate::wire::get_str(x, M, "imsi").map(str::to_owned))
                .transpose()?,
            ue_network_capability: get_bits(&f[4], M, "ue_network_capability")?.to_vec(),
            esm_container: get_bytes(&f[5], M, "esm_container")?.to_vec(),
            last_visited_tai: get_opt(&f[6], M, "last_visited_tai")?
                .map(Tai::from_value)
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        AttachRequest {
            attach_type: 1,
            nas_ksi: (seed % 7) as u8,
            old_tmsi: if seed.is_multiple_of(3) {
                None
            } else {
                Some((seed & 0xFFFF_FFFF) as u32)
            },
            imsi: if seed.is_multiple_of(3) {
                Some(format!("31041{:010}", seed % 10_000_000_000))
            } else {
                None
            },
            ue_network_capability: (0..32).map(|i| (seed >> (i % 48)) & 1 == 1).collect(),
            esm_container: vec![0x52; 34], // PDN connectivity request
            last_visited_tai: Some(Tai::sample(seed)),
        }
    }
}

/// NAS Attach Accept (CPF → UE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachAccept {
    /// EPS attach result.
    pub attach_result: u8,
    /// T3412 periodic-TAU timer value.
    pub t3412: u8,
    /// The tracking-area list the UE may roam without updates — the state
    /// whose UE/core consistency §3.1 is about.
    pub tai_list: Vec<Tai>,
    /// Newly assigned M-TMSI.
    pub tmsi: u32,
    /// Piggy-backed ESM message (activate default bearer request).
    pub esm_container: Vec<u8>,
}

impl Wire for AttachAccept {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("AttachAccept")
                        .field("attach_result", FieldType::Constrained { lo: 1, hi: 7 })
                        .field("t3412", FieldType::UInt { bits: 8 })
                        .field("tai_list", list_of(Tai::field_type(), 16))
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("esm_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.attach_result)),
            Value::U64(u64::from(self.t3412)),
            list_to_value(&self.tai_list),
            Value::U64(u64::from(self.tmsi)),
            Value::Bytes(self.esm_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "AttachAccept";
        let f = fields(v, M, 5)?;
        Ok(AttachAccept {
            attach_result: get_u8(&f[0], M, "attach_result")?,
            t3412: get_u8(&f[1], M, "t3412")?,
            tai_list: list_from_value(&f[2], M, "tai_list")?,
            tmsi: get_u32(&f[3], M, "tmsi")?,
            esm_container: get_bytes(&f[4], M, "esm_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        AttachAccept {
            attach_result: 1,
            t3412: 54,
            tai_list: (0..3).map(|i| Tai::sample(seed + i)).collect(),
            tmsi: (seed.wrapping_mul(0xC2B2_AE35) & 0xFFFF_FFFF) as u32,
            esm_container: vec![0x27; 52], // activate default EPS bearer
        }
    }
}

/// NAS Attach Complete (UE → CPF). Ends the initial-attach procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachComplete {
    /// Confirmed M-TMSI.
    pub tmsi: u32,
    /// Piggy-backed ESM accept.
    pub esm_container: Vec<u8>,
}

impl Wire for AttachComplete {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("AttachComplete")
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("esm_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.tmsi)),
            Value::Bytes(self.esm_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "AttachComplete";
        let f = fields(v, M, 2)?;
        Ok(AttachComplete {
            tmsi: get_u32(&f[0], M, "tmsi")?,
            esm_container: get_bytes(&f[1], M, "esm_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        AttachComplete {
            tmsi: (seed & 0xFFFF_FFFF) as u32,
            esm_container: vec![0x21; 8],
        }
    }
}

/// NAS Service Request (UE → CPF): idle→connected transition to restore
/// data bearers — the most frequent control procedure in the traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRequest {
    /// M-TMSI identifying the UE.
    pub tmsi: u32,
    /// Key-set id and sequence number.
    pub ksi_seq: u8,
    /// Short message authentication code.
    pub mac: u16,
}

impl Wire for ServiceRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ServiceRequest")
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("ksi_seq", FieldType::UInt { bits: 8 })
                        .field("mac", FieldType::UInt { bits: 16 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.tmsi)),
            Value::U64(u64::from(self.ksi_seq)),
            Value::U64(u64::from(self.mac)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "ServiceRequest";
        let f = fields(v, M, 3)?;
        Ok(ServiceRequest {
            tmsi: get_u32(&f[0], M, "tmsi")?,
            ksi_seq: get_u8(&f[1], M, "ksi_seq")?,
            mac: crate::wire::get_u16(&f[2], M, "mac")?,
        })
    }

    fn sample(seed: u64) -> Self {
        ServiceRequest {
            tmsi: (seed & 0xFFFF_FFFF) as u32,
            ksi_seq: (seed % 128) as u8,
            mac: (seed.wrapping_mul(31) & 0xFFFF) as u16,
        }
    }
}

/// NAS Service Accept (CPF → UE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceAccept {
    /// EPS bearer context status bitmap.
    pub bearer_status: Vec<bool>,
}

impl Wire for ServiceAccept {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ServiceAccept")
                        .field("bearer_status", FieldType::BitString { max_bits: Some(16) })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![Value::Bits(self.bearer_status.clone())])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "ServiceAccept";
        let f = fields(v, M, 1)?;
        Ok(ServiceAccept {
            bearer_status: get_bits(&f[0], M, "bearer_status")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        ServiceAccept {
            bearer_status: (0..16).map(|i| (seed >> i) & 1 == 1).collect(),
        }
    }
}

/// NAS Tracking Area Update Request (UE → CPF), sent on mobility across
/// tracking areas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TauRequest {
    /// Current M-TMSI.
    pub tmsi: u32,
    /// Update type (TA updating / combined / periodic).
    pub update_type: u8,
    /// Last visited TAI.
    pub old_tai: Tai,
}

impl Wire for TauRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("TauRequest")
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("update_type", FieldType::Constrained { lo: 0, hi: 7 })
                        .field("old_tai", Tai::field_type())
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.tmsi)),
            Value::U64(u64::from(self.update_type)),
            self.old_tai.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "TauRequest";
        let f = fields(v, M, 3)?;
        Ok(TauRequest {
            tmsi: get_u32(&f[0], M, "tmsi")?,
            update_type: get_u8(&f[1], M, "update_type")?,
            old_tai: Tai::from_value(&f[2])?,
        })
    }

    fn sample(seed: u64) -> Self {
        TauRequest {
            tmsi: (seed & 0xFFFF_FFFF) as u32,
            update_type: 0,
            old_tai: Tai::sample(seed),
        }
    }
}

/// NAS Tracking Area Update Accept (CPF → UE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TauAccept {
    /// Update result.
    pub result: u8,
    /// New tracking-area list.
    pub tai_list: Vec<Tai>,
    /// New M-TMSI if reallocated.
    pub new_tmsi: Option<u32>,
}

impl Wire for TauAccept {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("TauAccept")
                        .field("result", FieldType::Constrained { lo: 0, hi: 7 })
                        .field("tai_list", list_of(Tai::field_type(), 16))
                        .field("new_tmsi", optional(FieldType::UInt { bits: 32 }))
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.result)),
            list_to_value(&self.tai_list),
            match self.new_tmsi {
                Some(t) => Value::some(Value::U64(u64::from(t))),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "TauAccept";
        let f = fields(v, M, 3)?;
        Ok(TauAccept {
            result: get_u8(&f[0], M, "result")?,
            tai_list: list_from_value(&f[1], M, "tai_list")?,
            new_tmsi: get_opt(&f[2], M, "new_tmsi")?
                .map(|x| get_u32(x, M, "new_tmsi"))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        TauAccept {
            result: 0,
            tai_list: (0..2).map(|i| Tai::sample(seed + i)).collect(),
            new_tmsi: if seed.is_multiple_of(2) {
                Some((seed >> 1) as u32)
            } else {
                None
            },
        }
    }
}

/// NAS Detach Request (UE → CPF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetachRequest {
    /// M-TMSI.
    pub tmsi: u32,
    /// Detach type (EPS / combined / switch-off).
    pub detach_type: u8,
}

impl Wire for DetachRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("DetachRequest")
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("detach_type", FieldType::Constrained { lo: 1, hi: 7 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.tmsi)),
            Value::U64(u64::from(self.detach_type)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "DetachRequest";
        let f = fields(v, M, 2)?;
        Ok(DetachRequest {
            tmsi: get_u32(&f[0], M, "tmsi")?,
            detach_type: get_u8(&f[1], M, "detach_type")?,
        })
    }

    fn sample(seed: u64) -> Self {
        DetachRequest {
            tmsi: (seed & 0xFFFF_FFFF) as u32,
            detach_type: 1,
        }
    }
}

/// NAS Detach Accept (CPF → UE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetachAccept {
    /// Spare half-octet carried by the real message.
    pub spare: u8,
}

impl Wire for DetachAccept {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("DetachAccept")
                        .field("spare", FieldType::Constrained { lo: 0, hi: 15 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![Value::U64(u64::from(self.spare))])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "DetachAccept";
        let f = fields(v, M, 1)?;
        Ok(DetachAccept {
            spare: get_u8(&f[0], M, "spare")?,
        })
    }

    fn sample(_seed: u64) -> Self {
        DetachAccept { spare: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::testutil::round_trip_all_codecs;

    #[test]
    fn attach_request_round_trips() {
        round_trip_all_codecs(&AttachRequest::sample(0)); // imsi path
        round_trip_all_codecs(&AttachRequest::sample(1)); // tmsi path
    }

    #[test]
    fn attach_accept_round_trips() {
        round_trip_all_codecs(&AttachAccept::sample(42));
    }

    #[test]
    fn attach_complete_round_trips() {
        round_trip_all_codecs(&AttachComplete::sample(42));
    }

    #[test]
    fn service_request_round_trips() {
        round_trip_all_codecs(&ServiceRequest::sample(777));
    }

    #[test]
    fn service_accept_round_trips() {
        round_trip_all_codecs(&ServiceAccept::sample(0b1010_1100));
    }

    #[test]
    fn tau_messages_round_trip() {
        round_trip_all_codecs(&TauRequest::sample(9));
        round_trip_all_codecs(&TauAccept::sample(8)); // with new tmsi
        round_trip_all_codecs(&TauAccept::sample(9)); // without
    }

    #[test]
    fn detach_messages_round_trip() {
        round_trip_all_codecs(&DetachRequest::sample(4));
        round_trip_all_codecs(&DetachAccept::sample(0));
    }

    #[test]
    fn authentication_and_security_mode_round_trip() {
        round_trip_all_codecs(&AuthenticationRequest::sample(3));
        round_trip_all_codecs(&AuthenticationResponse::sample(3));
        round_trip_all_codecs(&SecurityModeCommand::sample(3));
        round_trip_all_codecs(&SecurityModeComplete::sample(2)); // imeisv present
        round_trip_all_codecs(&SecurityModeComplete::sample(3)); // absent
    }

    #[test]
    fn service_request_is_tiny_in_per() {
        // The real NAS service request is 4 bytes; ours lands close.
        let msg = ServiceRequest::sample(1);
        let codec = neutrino_codec::per::Asn1Per::new();
        let mut buf = Vec::new();
        msg.encode(&codec, &mut buf).unwrap();
        assert!(
            buf.len() <= 8,
            "PER service request was {} bytes",
            buf.len()
        );
    }
}

/// NAS Authentication Request (CPF → UE): EPS-AKA challenge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthenticationRequest {
    /// NAS key-set identifier for the new context.
    pub nas_ksi: u8,
    /// Random challenge (16 octets).
    pub rand: Vec<u8>,
    /// Authentication token (16 octets).
    pub autn: Vec<u8>,
}

impl Wire for AuthenticationRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("AuthenticationRequest")
                        .field("nas_ksi", FieldType::Constrained { lo: 0, hi: 7 })
                        .field("rand", FieldType::Bytes { max: Some(16) })
                        .field("autn", FieldType::Bytes { max: Some(16) })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.nas_ksi)),
            Value::Bytes(self.rand.clone()),
            Value::Bytes(self.autn.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "AuthenticationRequest";
        let f = fields(v, M, 3)?;
        Ok(AuthenticationRequest {
            nas_ksi: get_u8(&f[0], M, "nas_ksi")?,
            rand: get_bytes(&f[1], M, "rand")?.to_vec(),
            autn: get_bytes(&f[2], M, "autn")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        AuthenticationRequest {
            nas_ksi: (seed % 7) as u8,
            rand: (0..16)
                .map(|i| (seed as u8).wrapping_mul(7).wrapping_add(i))
                .collect(),
            autn: (0..16)
                .map(|i| (seed as u8).wrapping_mul(13).wrapping_add(i))
                .collect(),
        }
    }
}

/// NAS Authentication Response (UE → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthenticationResponse {
    /// Authentication response parameter (RES, 4–16 octets).
    pub res: Vec<u8>,
}

impl Wire for AuthenticationResponse {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("AuthenticationResponse")
                        .field("res", FieldType::Bytes { max: Some(16) })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![Value::Bytes(self.res.clone())])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "AuthenticationResponse";
        let f = fields(v, M, 1)?;
        Ok(AuthenticationResponse {
            res: get_bytes(&f[0], M, "res")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        AuthenticationResponse {
            res: (0..8)
                .map(|i| (seed as u8).wrapping_mul(31).wrapping_add(i))
                .collect(),
        }
    }
}

/// NAS Security Mode Command (CPF → UE): selects ciphering/integrity
/// algorithms and replays the UE's capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityModeCommand {
    /// Selected NAS security algorithms (EEA/EIA nibbles).
    pub selected_algorithms: u8,
    /// NAS key-set identifier.
    pub nas_ksi: u8,
    /// Replayed UE security capabilities (integrity-protected echo).
    pub replayed_capabilities: Vec<bool>,
}

impl Wire for SecurityModeCommand {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("SecurityModeCommand")
                        .field("selected_algorithms", FieldType::UInt { bits: 8 })
                        .field("nas_ksi", FieldType::Constrained { lo: 0, hi: 7 })
                        .field(
                            "replayed_capabilities",
                            FieldType::BitString { max_bits: Some(64) },
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.selected_algorithms)),
            Value::U64(u64::from(self.nas_ksi)),
            Value::Bits(self.replayed_capabilities.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "SecurityModeCommand";
        let f = fields(v, M, 3)?;
        Ok(SecurityModeCommand {
            selected_algorithms: get_u8(&f[0], M, "selected_algorithms")?,
            nas_ksi: get_u8(&f[1], M, "nas_ksi")?,
            replayed_capabilities: get_bits(&f[2], M, "replayed_capabilities")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        SecurityModeCommand {
            selected_algorithms: 0x12, // EEA1/EIA2
            nas_ksi: (seed % 7) as u8,
            replayed_capabilities: (0..32).map(|i| (seed >> (i % 48)) & 1 == 1).collect(),
        }
    }
}

/// NAS Security Mode Complete (UE → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityModeComplete {
    /// IMEISV, when requested.
    pub imeisv: Option<String>,
}

impl Wire for SecurityModeComplete {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("SecurityModeComplete")
                        .field("imeisv", optional(FieldType::Utf8 { max: Some(16) }))
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![match &self.imeisv {
            Some(s) => Value::some(Value::Str(s.clone())),
            None => Value::none(),
        }])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "SecurityModeComplete";
        let f = fields(v, M, 1)?;
        Ok(SecurityModeComplete {
            imeisv: get_opt(&f[0], M, "imeisv")?
                .map(|x| crate::wire::get_str(x, M, "imeisv").map(str::to_owned))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        SecurityModeComplete {
            imeisv: if seed.is_multiple_of(2) {
                Some(format!("35{:014}", seed % 100_000_000_000_000))
            } else {
                None
            },
        }
    }
}
