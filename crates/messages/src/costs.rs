//! Per-message serialization cost table.
//!
//! The discrete-event simulator charges CPU for each message a node encodes
//! or parses; those charges come from this table. [`CostTable::measure_for`]
//! produces a table by running the real codecs of `neutrino-codec` on the
//! sample messages; [`CostTable::baked`] returns constants produced by
//! exactly that measurement on the development machine (regenerate with
//! `cargo test -p neutrino-messages --release regen_baked_cost_table --
//! --ignored --nocapture` and paste the output over `BAKED`).
//!
//! Baked constants keep simulations deterministic and machine-independent;
//! what the PCT figures depend on is the *ratio* between ASN.1-PER and
//! optimized-fastbuf costs, which the baked table preserves from a real
//! measurement.

use crate::control::MessageKind;
use neutrino_codec::calibrate::{measure, CalibrationOptions, MsgCost};
use neutrino_codec::CodecKind;
use neutrino_common::{Error, Result};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Emulation factor for the asn1c runtime the paper's baselines actually run.
///
/// The paper's ASN.1 numbers come from asn1c-generated code (the compiler
/// OpenAirInterface uses, §5), whose runtime dispatches every IE through
/// `asn_TYPE_descriptor_t` function-pointer tables, constraint-checks via
/// callbacks, and heap-allocates each decoded member — overheads our
/// clean-room direct-match PER codec deliberately does not have. Simulated
/// ASN.1 CPU costs are therefore `measured PER cost × ASN1C_RUNTIME_FACTOR`.
///
/// The factor is calibrated against the paper's own report: Fig. 19 shows up
/// to a 5.9× encode+decode advantage for FlatBuffers over ASN.1 on
/// InitialContextSetupRequest; our raw measured PER/fastbuf-opt ratio on the
/// same message is ≈1.5×, giving a factor of 4.0. Raw (unscaled) numbers are
/// what the Fig. 18/19 benchmark binaries report for our own codecs; the
/// scaled series is labeled "asn1c-emulated" wherever it appears.
pub const ASN1C_RUNTIME_FACTOR: f64 = 4.0;

/// Maps `(codec, message kind)` to measured costs.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    map: HashMap<(CodecKind, MessageKind), MsgCost>,
}

impl CostTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entry.
    pub fn insert(&mut self, codec: CodecKind, kind: MessageKind, cost: MsgCost) {
        self.map.insert((codec, kind), cost);
    }

    /// Looks up an entry.
    pub fn get(&self, codec: CodecKind, kind: MessageKind) -> Option<MsgCost> {
        self.map.get(&(codec, kind)).copied()
    }

    /// Looks up an entry, erroring with context when missing.
    pub fn cost(&self, codec: CodecKind, kind: MessageKind) -> Result<MsgCost> {
        self.get(codec, kind)
            .ok_or_else(|| Error::config(format!("no calibrated cost for {codec}/{kind}")))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Measures a fresh table for the given codecs over every message kind,
    /// using each kind's [`sample`](MessageKind::sample).
    pub fn measure_for(codecs: &[CodecKind], opts: CalibrationOptions) -> Result<CostTable> {
        let mut table = CostTable::new();
        for &codec_kind in codecs {
            let codec = codec_kind.instance();
            for &kind in MessageKind::ALL {
                let schema = kind.schema();
                if !codec.supports(&schema) {
                    continue;
                }
                let value = kind.sample(1).to_value();
                let cost = measure(codec.as_ref(), &schema, &value, opts)?;
                table.insert(codec_kind, kind, cost);
            }
        }
        Ok(table)
    }

    /// The cost the *simulator* charges for a message: the baked measured
    /// cost, with [`ASN1C_RUNTIME_FACTOR`] applied to ASN.1 PER entries to
    /// model the asn1c runtime the paper's baselines run.
    pub fn sim_cost(&self, codec: CodecKind, kind: MessageKind) -> Result<MsgCost> {
        let raw = self.cost(codec, kind)?;
        if codec == CodecKind::Asn1Per {
            Ok(MsgCost {
                encode: raw.encode.mul_f64(ASN1C_RUNTIME_FACTOR),
                access: raw.access.mul_f64(ASN1C_RUNTIME_FACTOR),
                wire_bytes: raw.wire_bytes,
            })
        } else {
            Ok(raw)
        }
    }

    /// The baked-in table measured on the development machine (see module
    /// docs). Covers the codecs the system configurations use: ASN.1 PER
    /// (existing EPC / DPCM / SkyCore) and fastbuf standard + optimized
    /// (Neutrino).
    pub fn baked() -> &'static CostTable {
        static TABLE: OnceLock<CostTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = CostTable::new();
            for row in BAKED {
                t.insert(
                    row.codec,
                    row.kind,
                    MsgCost::from_nanos(row.encode_ns, row.access_ns, row.wire_bytes),
                );
            }
            t
        })
    }
}

/// Baked serialization costs of a [`UeState`](crate::state::UeState)
/// checkpoint, per codec — what replicas pay to apply a sync and what the
/// sync occupies on the wire. Regenerate together with `BAKED` (the
/// generator prints these too).
pub fn state_sync_cost(codec: CodecKind) -> MsgCost {
    // Measured by `regen_state_sync_costs` (release mode, dev machine);
    // the ASN.1 entry carries the asn1c runtime factor like `sim_cost`.
    match codec {
        CodecKind::Asn1Per => MsgCost::from_nanos(
            (632.0 * ASN1C_RUNTIME_FACTOR) as u64,
            (1078.0 * ASN1C_RUNTIME_FACTOR) as u64,
            127,
        ),
        CodecKind::Fastbuf => MsgCost::from_nanos(642, 552, 320),
        _ => MsgCost::from_nanos(644, 558, 320),
    }
}

struct BakedRow {
    codec: CodecKind,
    kind: MessageKind,
    encode_ns: u64,
    access_ns: u64,
    wire_bytes: usize,
}

const fn row(
    codec: CodecKind,
    kind: MessageKind,
    encode_ns: u64,
    access_ns: u64,
    wire_bytes: usize,
) -> BakedRow {
    BakedRow {
        codec,
        kind,
        encode_ns,
        access_ns,
        wire_bytes,
    }
}

// Generated by `regen_baked_cost_table` (see module docs). Units: ns, ns,
// bytes. Measured in release mode on the development machine (median of 9
// batches x 2000 iterations per message).
#[rustfmt::skip]
const BAKED: &[BakedRow] = &{
    use CodecKind::{Asn1Per as PER, Fastbuf as FB, FastbufOptimized as FBO};
    use MessageKind as K;
    [
    row(PER, K::AttachRequest,                  260,   468, 51),
    row(PER, K::AttachAccept,                   305,   567, 74),
    row(PER, K::AttachComplete,                  59,   112, 13),
    row(PER, K::ServiceRequest,                  70,   136, 7),
    row(PER, K::ServiceAccept,                   53,   144, 3),
    row(PER, K::TauRequest,                     101,   198, 10),
    row(PER, K::TauAccept,                      171,   347, 12),
    row(PER, K::DetachRequest,                   47,    94, 5),
    row(PER, K::DetachAccept,                    34,    70, 1),
    row(PER, K::AuthenticationRequest,          123,   183, 34),
    row(PER, K::AuthenticationResponse,          51,    96, 9),
    row(PER, K::SecurityModeCommand,             99,   238, 7),
    row(PER, K::SecurityModeComplete,            23,    65, 1),
    row(PER, K::InitialUeMessage,               247,   508, 92),
    row(PER, K::InitialContextSetupRequest,     546,   835, 129),
    row(PER, K::InitialContextSetupResponse,    232,   422, 28),
    row(PER, K::ERabSetupRequest,               198,   350, 19),
    row(PER, K::ERabSetupResponse,              171,   279, 18),
    row(PER, K::UplinkNasTransport,             207,   351, 44),
    row(PER, K::DownlinkNasTransport,            95,   189, 48),
    row(PER, K::HandoverRequired,               309,   538, 142),
    row(PER, K::HandoverRequest,                436,   695, 187),
    row(PER, K::HandoverRequestAck,             211,   410, 98),
    row(PER, K::HandoverCommand,                123,   275, 89),
    row(PER, K::HandoverNotify,                 172,   276, 19),
    row(PER, K::UeContextReleaseCommand,         54,   121, 6),
    row(PER, K::UeContextReleaseComplete,        47,    92, 7),
    row(PER, K::Paging,                         215,   402, 17),
    row(FB,  K::AttachRequest,                  223,   238, 116),
    row(FB,  K::AttachAccept,                   249,   294, 172),
    row(FB,  K::AttachComplete,                  61,    46, 36),
    row(FB,  K::ServiceRequest,                  84,    58, 28),
    row(FB,  K::ServiceAccept,                   87,    40, 28),
    row(FB,  K::TauRequest,                     125,    90, 52),
    row(FB,  K::TauAccept,                      168,   142, 80),
    row(FB,  K::DetachRequest,                   65,    42, 21),
    row(FB,  K::DetachAccept,                    53,    26, 17),
    row(FB,  K::AuthenticationRequest,           83,    77, 72),
    row(FB,  K::AuthenticationResponse,          50,    28, 32),
    row(FB,  K::SecurityModeCommand,            121,    97, 36),
    row(FB,  K::SecurityModeComplete,            47,    15, 16),
    row(FB,  K::InitialUeMessage,               220,   292, 196),
    row(FB,  K::InitialContextSetupRequest,     465,   490, 280),
    row(FB,  K::InitialContextSetupResponse,    218,   198, 116),
    row(FB,  K::ERabSetupRequest,               187,   176, 80),
    row(FB,  K::ERabSetupResponse,              157,   128, 76),
    row(FB,  K::UplinkNasTransport,             184,   184, 112),
    row(FB,  K::DownlinkNasTransport,            78,   106, 76),
    row(FB,  K::HandoverRequired,               231,   381, 220),
    row(FB,  K::HandoverRequest,                303,   461, 300),
    row(FB,  K::HandoverRequestAck,             162,   254, 164),
    row(FB,  K::HandoverCommand,                 87,   189, 120),
    row(FB,  K::HandoverNotify,                 169,   145, 76),
    row(FB,  K::UeContextReleaseCommand,         84,    68, 48),
    row(FB,  K::UeContextReleaseComplete,        64,    43, 24),
    row(FB,  K::Paging,                         184,   173, 101),
    row(FBO, K::AttachRequest,                  223,   238, 116),
    row(FBO, K::AttachAccept,                   256,   302, 172),
    row(FBO, K::AttachComplete,                  60,    44, 36),
    row(FBO, K::ServiceRequest,                  84,    58, 28),
    row(FBO, K::ServiceAccept,                   84,    40, 28),
    row(FBO, K::TauRequest,                     121,    93, 52),
    row(FBO, K::TauAccept,                      168,   137, 80),
    row(FBO, K::DetachRequest,                   63,    42, 21),
    row(FBO, K::DetachAccept,                    55,    26, 17),
    row(FBO, K::AuthenticationRequest,           83,    77, 72),
    row(FBO, K::AuthenticationResponse,          50,    28, 32),
    row(FBO, K::SecurityModeCommand,            125,    96, 36),
    row(FBO, K::SecurityModeComplete,            46,    16, 16),
    row(FBO, K::InitialUeMessage,               204,   286, 184),
    row(FBO, K::InitialContextSetupRequest,     459,   491, 280),
    row(FBO, K::InitialContextSetupResponse,    221,   197, 116),
    row(FBO, K::ERabSetupRequest,               187,   181, 80),
    row(FBO, K::ERabSetupResponse,              158,   134, 76),
    row(FBO, K::UplinkNasTransport,             183,   184, 112),
    row(FBO, K::DownlinkNasTransport,            83,   107, 76),
    row(FBO, K::HandoverRequired,               224,   386, 220),
    row(FBO, K::HandoverRequest,                298,   462, 300),
    row(FBO, K::HandoverRequestAck,             159,   253, 164),
    row(FBO, K::HandoverCommand,                 87,   189, 120),
    row(FBO, K::HandoverNotify,                 173,   144, 76),
    row(FBO, K::UeContextReleaseCommand,         81,    61, 40),
    row(FBO, K::UeContextReleaseComplete,        65,    43, 24),
    row(FBO, K::Paging,                         176,   163, 93),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baked_table_covers_all_kinds_for_sim_codecs() {
        let t = CostTable::baked();
        for &kind in MessageKind::ALL {
            for codec in [
                CodecKind::Asn1Per,
                CodecKind::Fastbuf,
                CodecKind::FastbufOptimized,
            ] {
                assert!(
                    t.get(codec, kind).is_some(),
                    "missing baked cost for {codec}/{kind}"
                );
            }
        }
    }

    #[test]
    fn baked_asn1_is_slower_than_fastbuf_everywhere() {
        // The premise of §4.4, at the simulator's charge (asn1c-emulated):
        // regenerate the table if this ever fails. Raw clean-room PER may
        // tie fastbuf on tiny byte-dominated messages, which is fine.
        let t = CostTable::baked();
        for &kind in MessageKind::ALL {
            let per = t.sim_cost(CodecKind::Asn1Per, kind).unwrap();
            let fbo = t.sim_cost(CodecKind::FastbufOptimized, kind).unwrap();
            assert!(
                per.total() > fbo.total(),
                "{kind}: ASN.1 {:?} must exceed fastbuf-opt {:?}",
                per.total(),
                fbo.total()
            );
            assert!(
                per.wire_bytes <= fbo.wire_bytes,
                "{kind}: PER must not be larger on the wire"
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "codec speed ratios only hold with optimizations; run with --release"
    )]
    fn measured_table_matches_baked_shape() {
        // A quick live measurement must agree with the baked table on the
        // key *ordering* (not absolute values): PER slower than fastbuf-opt.
        let opts = CalibrationOptions {
            iters_per_batch: 60,
            batches: 3,
            warmup_iters: 20,
        };
        let t = CostTable::measure_for(&[CodecKind::Asn1Per, CodecKind::FastbufOptimized], opts)
            .unwrap();
        let mut per_faster = 0;
        let mut checked = 0;
        for &kind in MessageKind::ALL {
            let per = t.cost(CodecKind::Asn1Per, kind).unwrap();
            let fbo = t.cost(CodecKind::FastbufOptimized, kind).unwrap();
            checked += 1;
            if per.total() <= fbo.total() {
                per_faster += 1;
            }
        }
        // Allow a little scheduler noise on tiny messages, but the trend
        // must be unmistakable.
        assert!(
            per_faster * 5 <= checked,
            "PER out-performed fastbuf-opt on {per_faster}/{checked} kinds"
        );
    }

    /// Regenerates the `BAKED` table. Run with:
    /// `cargo test -p neutrino-messages --release regen_baked_cost_table -- --ignored --nocapture`
    #[test]
    #[ignore = "generator, run manually to refresh BAKED"]
    fn regen_baked_cost_table() {
        let opts = CalibrationOptions::default();
        let codecs = [
            (CodecKind::Asn1Per, "PER"),
            (CodecKind::Fastbuf, "FB "),
            (CodecKind::FastbufOptimized, "FBO"),
        ];
        for (codec, label) in codecs {
            let t = CostTable::measure_for(&[codec], opts).unwrap();
            for &kind in MessageKind::ALL {
                if let Some(c) = t.get(codec, kind) {
                    println!(
                        "    row({label}, K::{:<28} {:>6}, {:>5}, {}),",
                        format!("{},", kind.name()),
                        c.encode.as_nanos(),
                        c.access.as_nanos(),
                        c.wire_bytes
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod state_cost_tests {
    use super::*;
    use crate::state::UeState;
    use crate::wire::Wire;

    /// Prints measured UeState costs; paste into `state_sync_cost`.
    #[test]
    #[ignore = "generator, run manually"]
    fn regen_state_sync_costs() {
        let opts = CalibrationOptions::default();
        for codec in [
            CodecKind::Asn1Per,
            CodecKind::Fastbuf,
            CodecKind::FastbufOptimized,
        ] {
            let inst = codec.instance();
            let schema = UeState::schema();
            let value = UeState::sample(1).to_value();
            let c = measure(inst.as_ref(), &schema, &value, opts).unwrap();
            println!(
                "{codec}: encode={} access={} bytes={}",
                c.encode.as_nanos(),
                c.access.as_nanos(),
                c.wire_bytes
            );
        }
    }
}
