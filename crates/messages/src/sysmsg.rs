//! System-level messages: everything that travels *between nodes* of the
//! deployment — control envelopes, the replication protocol of §4.2, the
//! S11-like CPF↔UPF dialogue, and failure notices.
//!
//! Defined here (rather than in the CTA/CPF crates) because every node type
//! and both drivers share them.

use crate::control::Envelope;
use crate::procedures::ProcedureKind;
use crate::state::UeState;
use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, SessionId, UeId, UpfId};

/// Priority class the CTA ingress admission layer sorts control procedures
/// into. Lower raw value = higher priority; under overload the admission
/// layer sheds from the *highest* raw value (lowest priority) upward, so a
/// handover is never dropped while a detach is admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AdmissionClass {
    /// Handovers: an ongoing session is mid-flight across cells — dropping
    /// one severs a live connection.
    Handover = 0,
    /// Service requests and tracking-area updates: idle→active transitions
    /// and mobility updates for already-registered UEs.
    ServiceRequest = 1,
    /// Initial attaches and re-attaches: new registrations can wait out a
    /// storm and retry.
    Attach = 2,
    /// Detaches: the UE is leaving anyway; its session times out harmlessly
    /// if the detach is shed.
    Detach = 3,
}

impl AdmissionClass {
    /// Every class, highest priority first.
    pub const ALL: &'static [AdmissionClass] = &[
        AdmissionClass::Handover,
        AdmissionClass::ServiceRequest,
        AdmissionClass::Attach,
        AdmissionClass::Detach,
    ];

    /// The class a procedure kind belongs to.
    pub fn of(kind: ProcedureKind) -> AdmissionClass {
        match kind {
            ProcedureKind::HandoverWithCpfChange | ProcedureKind::FastHandover => {
                AdmissionClass::Handover
            }
            ProcedureKind::ServiceRequest | ProcedureKind::TrackingAreaUpdate => {
                AdmissionClass::ServiceRequest
            }
            ProcedureKind::InitialAttach | ProcedureKind::ReAttach => AdmissionClass::Attach,
            ProcedureKind::Detach => AdmissionClass::Detach,
        }
    }

    /// Wire encoding.
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Wire decoding.
    pub fn from_raw(raw: u8) -> Option<AdmissionClass> {
        match raw {
            0 => Some(AdmissionClass::Handover),
            1 => Some(AdmissionClass::ServiceRequest),
            2 => Some(AdmissionClass::Attach),
            3 => Some(AdmissionClass::Detach),
            _ => None,
        }
    }

    /// Short label for traces and figure output.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionClass::Handover => "handover",
            AdmissionClass::ServiceRequest => "service-request",
            AdmissionClass::Attach => "attach",
            AdmissionClass::Detach => "detach",
        }
    }
}

/// A UE-state checkpoint from the primary CPF to a backup (§4.2.2): sent on
/// procedure completion (Neutrino) or on every message (SkyCore /
/// per-message ablation).
#[derive(Debug, Clone, PartialEq)]
pub struct StateSync {
    /// The UE whose state this is.
    pub ue: UeId,
    /// The primary CPF that produced the checkpoint.
    pub primary: CpfId,
    /// The CTA serving the UE — replicas send their ACK there (§4.2.3
    /// step 3).
    pub cta: CtaId,
    /// The state snapshot.
    pub state: UeState,
    /// The procedure whose completion triggered the sync.
    pub procedure: ProcedureId,
    /// Logical clock of the last (uplink) message of that procedure — "used
    /// to identify the end of a particular procedure in the log" (§4.2.3).
    pub end_clock: ClockTick,
    /// Why the state is moving.
    pub purpose: SyncPurpose,
}

/// Why a [`StateSync`] was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPurpose {
    /// Replication checkpoint — the receiver ACKs to the CTA.
    Checkpoint,
    /// Handover state migration — the receiver ACKs to the sending CPF so
    /// it can emit the Handover Request (§4.3, "Neutrino - Default").
    Migration,
}

/// A backup CPF's acknowledgement to the **CTA** after a successful state
/// synchronization (§4.2.3 step 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncAck {
    /// The UE concerned.
    pub ue: UeId,
    /// The acknowledging replica.
    pub replica: CpfId,
    /// The procedure the replica is now synced through.
    pub procedure: ProcedureId,
    /// The end-of-procedure clock from the sync.
    pub end_clock: ClockTick,
}

/// CTA → replica: your copy of this UE's state is outdated (§4.2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkOutdated {
    /// The UE concerned.
    pub ue: UeId,
    /// Clock of the last message of the un-ACKed procedure; replicas ignore
    /// state updates at or below this clock once marked.
    pub clock: ClockTick,
    /// CPFs known to hold up-to-date state (may be empty).
    pub up_to_date: Vec<CpfId>,
}

/// CTA → backup replica: the logged messages of the in-progress procedure,
/// replayed so the replica can reconstruct the lost state before serving the
/// UE (failure scenario 2, §4.2.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The UE concerned.
    pub ue: UeId,
    /// Logged uplink messages, in logical-clock order.
    pub messages: Vec<Envelope>,
}

/// The S11-like session operation a CPF asks of a UPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// Create a session with a default bearer.
    Create,
    /// Modify bearers (idle→connected restore, handover path switch).
    Modify,
    /// Delete the session.
    Delete,
}

/// CPF → UPF request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S11Request {
    /// The UE concerned.
    pub ue: UeId,
    /// Requesting CPF (responses return to it).
    pub cpf: CpfId,
    /// Operation.
    pub op: SessionOp,
    /// Session id for modify/delete; assigned by the UPF on create.
    pub session: Option<SessionId>,
}

/// UPF → CPF response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S11Response {
    /// The UE concerned.
    pub ue: UeId,
    /// The operation that completed.
    pub op: SessionOp,
    /// The UPF answering.
    pub upf: UpfId,
    /// Session id (populated on create).
    pub session: Option<SessionId>,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Everything that travels between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum SysMsg {
    /// A control message (UE/BS ↔ CTA ↔ CPF).
    Control(Envelope),
    /// Primary → backup state checkpoint.
    StateSync(StateSync),
    /// Backup → CTA sync acknowledgement.
    SyncAck(SyncAck),
    /// CTA → replica out-of-date notice.
    MarkOutdated(MarkOutdated),
    /// CTA → replica log replay.
    Replay(Replay),
    /// CPF → CPF state fetch (a marked-outdated replica pulling fresh state,
    /// §4.2.4 step 1c).
    FetchState {
        /// The UE whose state is wanted.
        ue: UeId,
        /// The asking CPF.
        requester: CpfId,
    },
    /// CPF → CPF state fetch response.
    FetchStateResp {
        /// The UE concerned.
        ue: UeId,
        /// The state, if the responder had an up-to-date copy.
        state: Option<Box<UeState>>,
    },
    /// CPF → UPF session operation.
    S11(S11Request),
    /// UPF → CPF session result.
    S11Resp(S11Response),
    /// Core → UE: recreate your state by re-attaching (failure scenarios 3
    /// and 4, §4.2.5; also the stale-state guard of §4.2.4 step 3).
    AskReAttach {
        /// The UE that must re-attach.
        ue: UeId,
    },
    /// Target CPF → source CPF: handover state migration landed; the source
    /// may now continue the handover.
    MigrationAck {
        /// The UE whose state arrived.
        ue: UeId,
    },
    /// CPF → CTA: tell this UE (behind `bs`) to re-attach.
    RelayReAttach {
        /// The UE that must re-attach.
        ue: UeId,
        /// The BS to reach it through.
        bs: BsId,
    },
    /// Downlink user data arriving at a UPF for a UE (the §3.1 reachability
    /// scenario): deliverable only while the session is active.
    DownlinkData {
        /// The destination UE.
        ue: UeId,
    },
    /// UPF → CTA → CPF: Downlink Data Notification — an idle UE has data
    /// waiting and must be paged.
    DdnRequest {
        /// The UE with pending downlink data.
        ue: UeId,
        /// The notifying UPF.
        upf: UpfId,
    },
    /// Failure-detector notice delivered to a CTA. Detection time is
    /// excluded from PCT (§6.4), so the injector delivers this directly.
    CpfFailure {
        /// The failed CPF.
        cpf: CpfId,
    },
    /// CTA → primary CPF: a completed procedure's checkpoint is missing
    /// replica ACKs (lost sync or lost ACK); re-send it to the backups.
    /// Sent with exponential backoff before the ACK-timeout scan gives up.
    ResyncRequest {
        /// The UE whose checkpoint is unacknowledged.
        ue: UeId,
        /// The procedure the CTA is still waiting on.
        procedure: ProcedureId,
        /// The CTA waiting for the ACKs.
        cta: CtaId,
    },
    /// Primary CPF → CTA: a resync request named a procedure this primary's
    /// own copy has not reached — it missed messages itself (e.g. the
    /// procedure's final forward was lost) and cannot re-checkpoint. The
    /// CTA answers by replaying its log so the primary can catch up.
    ResyncBehind {
        /// The UE concerned.
        ue: UeId,
        /// The procedure the primary's copy is actually at.
        have: ProcedureId,
        /// The CPF that is behind.
        cpf: CpfId,
    },
    /// CTA → UE (via its BS): the ingress admission layer shed this uplink
    /// instead of queueing it — explicit backpressure, never a silent drop.
    /// The UE must wait at least `retry_after_ms` before re-offering the
    /// procedure (and counts the rejection against its retry budget).
    Reject {
        /// The UE whose uplink was shed.
        ue: UeId,
        /// The admission class that was shed.
        class: AdmissionClass,
        /// Minimum client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl SysMsg {
    /// Short label for tracing.
    pub fn label(&self) -> &'static str {
        match self {
            SysMsg::Control(_) => "control",
            SysMsg::StateSync(_) => "state-sync",
            SysMsg::SyncAck(_) => "sync-ack",
            SysMsg::MarkOutdated(_) => "mark-outdated",
            SysMsg::Replay(_) => "replay",
            SysMsg::FetchState { .. } => "fetch-state",
            SysMsg::FetchStateResp { .. } => "fetch-state-resp",
            SysMsg::S11(_) => "s11",
            SysMsg::S11Resp(_) => "s11-resp",
            SysMsg::AskReAttach { .. } => "ask-re-attach",
            SysMsg::MigrationAck { .. } => "migration-ack",
            SysMsg::RelayReAttach { .. } => "relay-re-attach",
            SysMsg::DownlinkData { .. } => "downlink-data",
            SysMsg::DdnRequest { .. } => "ddn-request",
            SysMsg::CpfFailure { .. } => "cpf-failure",
            SysMsg::ResyncRequest { .. } => "resync-request",
            SysMsg::ResyncBehind { .. } => "resync-behind",
            SysMsg::Reject { .. } => "reject",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::MessageKind;
    use crate::procedures::ProcedureKind;

    #[test]
    fn labels_are_distinct() {
        let ue = UeId::new(1);
        let msgs = [
            SysMsg::Control(Envelope::uplink(
                ue,
                ProcedureId::FIRST,
                ProcedureKind::ServiceRequest,
                MessageKind::ServiceRequest.sample(1),
            )),
            SysMsg::SyncAck(SyncAck {
                ue,
                replica: CpfId::new(1),
                procedure: ProcedureId::FIRST,
                end_clock: ClockTick(1),
            }),
            SysMsg::AskReAttach { ue },
            SysMsg::CpfFailure { cpf: CpfId::new(2) },
        ];
        let labels: std::collections::HashSet<_> = msgs.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), msgs.len());
    }
}
