//! The `Wire` trait: everything a message type needs to travel through any
//! codec, plus helpers shared by the IE conversions.

use neutrino_codec::value::{FieldType, Schema, Value};
use neutrino_codec::WireFormat;
use neutrino_common::{Error, Result};
use std::sync::Arc;

/// A message (or IE) with a schema, value conversion, and a realistic sample.
pub trait Wire: Sized {
    /// The message's schema (shared, built once).
    fn schema() -> Arc<Schema>;

    /// Converts to the codec value model. The result always validates
    /// against [`Wire::schema`].
    fn to_value(&self) -> Value;

    /// Parses back from a value produced by any codec's decode.
    fn from_value(v: &Value) -> Result<Self>;

    /// A realistic sample instance (field contents modeled on real traces)
    /// for calibration and benchmarks. `seed` varies the contents.
    fn sample(seed: u64) -> Self;

    /// Encodes through a codec.
    fn encode(&self, codec: &dyn WireFormat, out: &mut Vec<u8>) -> Result<()> {
        codec.encode(&Self::schema(), &self.to_value(), out)
    }

    /// Decodes through a codec.
    fn decode(codec: &dyn WireFormat, bytes: &[u8]) -> Result<Self> {
        Self::from_value(&codec.decode(&Self::schema(), bytes)?)
    }
}

// --- conversion helpers (shared by all message modules) --------------------

/// Error for a malformed field during `from_value`.
pub(crate) fn field_err(msg: &str, field: &str) -> Error {
    Error::schema(format!("{msg}: bad field `{field}`"))
}

/// Extracts struct fields, checking arity.
pub(crate) fn fields<'v>(v: &'v Value, msg: &str, arity: usize) -> Result<&'v [Value]> {
    let fs = v
        .as_struct()
        .ok_or_else(|| Error::schema(format!("{msg}: not a struct")))?;
    if fs.len() != arity {
        return Err(Error::schema(format!(
            "{msg}: expected {arity} fields, got {}",
            fs.len()
        )));
    }
    Ok(fs)
}

pub(crate) fn get_u64(v: &Value, msg: &str, field: &str) -> Result<u64> {
    match v {
        Value::U64(x) => Ok(*x),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_u32(v: &Value, msg: &str, field: &str) -> Result<u32> {
    u32::try_from(get_u64(v, msg, field)?).map_err(|_| field_err(msg, field))
}

pub(crate) fn get_u16(v: &Value, msg: &str, field: &str) -> Result<u16> {
    u16::try_from(get_u64(v, msg, field)?).map_err(|_| field_err(msg, field))
}

pub(crate) fn get_u8(v: &Value, msg: &str, field: &str) -> Result<u8> {
    u8::try_from(get_u64(v, msg, field)?).map_err(|_| field_err(msg, field))
}

pub(crate) fn get_bool(v: &Value, msg: &str, field: &str) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_bytes<'v>(v: &'v Value, msg: &str, field: &str) -> Result<&'v [u8]> {
    match v {
        Value::Bytes(b) => Ok(b),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_str<'v>(v: &'v Value, msg: &str, field: &str) -> Result<&'v str> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_bits<'v>(v: &'v Value, msg: &str, field: &str) -> Result<&'v [bool]> {
    match v {
        Value::Bits(b) => Ok(b),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_list<'v>(v: &'v Value, msg: &str, field: &str) -> Result<&'v [Value]> {
    match v {
        Value::List(items) => Ok(items),
        _ => Err(field_err(msg, field)),
    }
}

pub(crate) fn get_opt<'v>(v: &'v Value, msg: &str, field: &str) -> Result<Option<&'v Value>> {
    match v {
        Value::Optional(opt) => Ok(opt.as_deref()),
        _ => Err(field_err(msg, field)),
    }
}

/// Shorthand for an optional field type.
pub(crate) fn optional(inner: FieldType) -> FieldType {
    FieldType::Optional(Box::new(inner))
}

/// Shorthand for a bounded list field type.
pub(crate) fn list_of(elem: FieldType, max: u32) -> FieldType {
    FieldType::List {
        elem: Box::new(elem),
        max: Some(max),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Round-trip harness shared by the message modules' tests.
    use super::Wire;
    use neutrino_codec::CodecKind;

    /// Round-trips `msg` through every codec that supports its schema and
    /// asserts losslessness.
    pub(crate) fn round_trip_all_codecs<M: Wire + PartialEq + std::fmt::Debug>(msg: &M) {
        let schema = M::schema();
        schema.validate(&msg.to_value()).expect("sample validates");
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            msg.encode(codec.as_ref(), &mut buf)
                .unwrap_or_else(|e| panic!("{kind} encode failed: {e}"));
            let back = M::decode(codec.as_ref(), &buf)
                .unwrap_or_else(|e| panic!("{kind} decode failed: {e}"));
            assert_eq!(&back, msg, "round trip through {kind}");
            // traverse must agree with decode on every codec
            let t = codec.traverse(&schema, &buf).unwrap();
            assert_eq!(
                t,
                neutrino_codec::checksum_value(&msg.to_value()),
                "traverse checksum through {kind}"
            );
        }
    }
}
