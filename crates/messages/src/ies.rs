//! Common information elements (IEs) shared by NAS and S1AP messages.
//!
//! Field layouts follow TS 36.413 / TS 24.301 closely enough that the
//! serialization benchmarks exercise the same structure the paper measured:
//! nested SEQUENCEs, small constrained integers, octet strings for
//! transport containers, and CHOICEs for UE identities.

use crate::wire::{field_err, fields, get_bytes, get_str, get_u16, get_u32, get_u64, get_u8, Wire};
use neutrino_codec::value::{FieldType, Schema, StructSchema, Value, Variant};
use neutrino_common::Result;
use std::sync::Arc;
use std::sync::OnceLock;

/// Tracking Area Identity: PLMN (3 octets worth) + 16-bit TAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tai {
    /// Packed MCC/MNC (3 octets of BCD in real networks; carried as u32).
    pub plmn: u32,
    /// Tracking area code.
    pub tac: u16,
}

impl Tai {
    /// Field type of a TAI sub-structure.
    pub fn field_type() -> FieldType {
        FieldType::Struct(Self::schema())
    }
}

impl Wire for Tai {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("Tai")
                        .field(
                            "plmn",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("tac", FieldType::UInt { bits: 16 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.plmn)),
            Value::U64(u64::from(self.tac)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "Tai", 2)?;
        Ok(Tai {
            plmn: get_u32(&f[0], "Tai", "plmn")?,
            tac: get_u16(&f[1], "Tai", "tac")?,
        })
    }

    fn sample(seed: u64) -> Self {
        Tai {
            plmn: 0x13_00_14, // mcc 310 / mnc 410 style packing
            tac: (seed % 0xFFFF) as u16,
        }
    }
}

/// E-UTRAN Cell Global Identifier: PLMN + 28-bit cell id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cgi {
    /// Packed MCC/MNC.
    pub plmn: u32,
    /// 28-bit cell identity (eNB id + cell within eNB).
    pub cell_id: u32,
}

impl Cgi {
    /// Field type of a CGI sub-structure.
    pub fn field_type() -> FieldType {
        FieldType::Struct(Self::schema())
    }
}

impl Wire for Cgi {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("Cgi")
                        .field(
                            "plmn",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field(
                            "cell_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0x0FFF_FFFF,
                            },
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.plmn)),
            Value::U64(u64::from(self.cell_id)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "Cgi", 2)?;
        Ok(Cgi {
            plmn: get_u32(&f[0], "Cgi", "plmn")?,
            cell_id: get_u32(&f[1], "Cgi", "cell_id")?,
        })
    }

    fn sample(seed: u64) -> Self {
        Cgi {
            plmn: 0x13_00_14,
            cell_id: (seed.wrapping_mul(2654435761) % 0x0FFF_FFFF) as u32,
        }
    }
}

/// UE identity CHOICE: S-TMSI (the common case) or IMSI digits — the union
/// shape the svtable optimization targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UeIdentity {
    /// Temporary identity: MME code + M-TMSI.
    STmsi(u32),
    /// Permanent identity as a decimal digit string.
    Imsi(String),
}

impl UeIdentity {
    /// The CHOICE field type.
    pub fn field_type() -> FieldType {
        FieldType::Choice(vec![
            Variant {
                name: "s_tmsi".into(),
                ty: FieldType::UInt { bits: 32 },
            },
            Variant {
                name: "imsi".into(),
                ty: FieldType::Utf8 { max: Some(15) },
            },
        ])
    }

    /// Converts to a codec value.
    pub fn to_value(&self) -> Value {
        match self {
            UeIdentity::STmsi(t) => Value::choice(0, Value::U64(u64::from(*t))),
            UeIdentity::Imsi(s) => Value::choice(1, Value::Str(s.clone())),
        }
    }

    /// Parses from a codec value.
    pub fn from_value(v: &Value) -> Result<Self> {
        match v {
            Value::Choice { index: 0, value } => {
                Ok(UeIdentity::STmsi(get_u32(value, "UeIdentity", "s_tmsi")?))
            }
            Value::Choice { index: 1, value } => Ok(UeIdentity::Imsi(
                get_str(value, "UeIdentity", "imsi")?.to_owned(),
            )),
            _ => Err(field_err("UeIdentity", "choice")),
        }
    }
}

/// An E-RAB (bearer) requested for setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErabToSetup {
    /// E-RAB id (0..=15).
    pub erab_id: u8,
    /// QoS class identifier (1..=9).
    pub qci: u8,
    /// Allocation/retention priority (1..=15).
    pub arp: u8,
    /// Transport layer address of the UPF endpoint (4 or 16 octets).
    pub transport_address: Vec<u8>,
    /// GTP tunnel endpoint id on the UPF.
    pub gtp_teid: u32,
    /// Piggy-backed NAS PDU, when present.
    pub nas_pdu: Option<Vec<u8>>,
}

impl Wire for ErabToSetup {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ErabToSetup")
                        .field("erab_id", FieldType::Constrained { lo: 0, hi: 15 })
                        .field("qci", FieldType::Constrained { lo: 1, hi: 9 })
                        .field("arp", FieldType::Constrained { lo: 1, hi: 15 })
                        .field("transport_address", FieldType::Bytes { max: Some(16) })
                        .field("gtp_teid", FieldType::UInt { bits: 32 })
                        .field(
                            "nas_pdu",
                            FieldType::Optional(Box::new(FieldType::Bytes { max: None })),
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.erab_id)),
            Value::U64(u64::from(self.qci)),
            Value::U64(u64::from(self.arp)),
            Value::Bytes(self.transport_address.clone()),
            Value::U64(u64::from(self.gtp_teid)),
            match &self.nas_pdu {
                Some(pdu) => Value::some(Value::Bytes(pdu.clone())),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "ErabToSetup", 6)?;
        let nas_pdu = match &f[5] {
            Value::Optional(Some(inner)) => {
                Some(get_bytes(inner, "ErabToSetup", "nas_pdu")?.to_vec())
            }
            Value::Optional(None) => None,
            _ => return Err(field_err("ErabToSetup", "nas_pdu")),
        };
        Ok(ErabToSetup {
            erab_id: get_u8(&f[0], "ErabToSetup", "erab_id")?,
            qci: get_u8(&f[1], "ErabToSetup", "qci")?,
            arp: get_u8(&f[2], "ErabToSetup", "arp")?,
            transport_address: get_bytes(&f[3], "ErabToSetup", "transport_address")?.to_vec(),
            gtp_teid: get_u32(&f[4], "ErabToSetup", "gtp_teid")?,
            nas_pdu,
        })
    }

    fn sample(seed: u64) -> Self {
        ErabToSetup {
            erab_id: (seed % 16) as u8,
            qci: 1 + (seed % 9) as u8,
            arp: 1 + (seed % 15) as u8,
            transport_address: vec![10, 0, (seed >> 8) as u8, seed as u8],
            gtp_teid: (seed.wrapping_mul(0x9E3779B9) & 0xFFFF_FFFF) as u32,
            nas_pdu: if seed.is_multiple_of(2) {
                Some(vec![0x27; 46]) // typical piggy-backed activate-default-bearer
            } else {
                None
            },
        }
    }
}

/// An E-RAB successfully set up (response list item).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErabSetupItem {
    /// E-RAB id.
    pub erab_id: u8,
    /// Transport layer address of the eNB endpoint.
    pub transport_address: Vec<u8>,
    /// GTP tunnel endpoint id on the eNB.
    pub gtp_teid: u32,
}

impl Wire for ErabSetupItem {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ErabSetupItem")
                        .field("erab_id", FieldType::Constrained { lo: 0, hi: 15 })
                        .field("transport_address", FieldType::Bytes { max: Some(16) })
                        .field("gtp_teid", FieldType::UInt { bits: 32 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.erab_id)),
            Value::Bytes(self.transport_address.clone()),
            Value::U64(u64::from(self.gtp_teid)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "ErabSetupItem", 3)?;
        Ok(ErabSetupItem {
            erab_id: get_u8(&f[0], "ErabSetupItem", "erab_id")?,
            transport_address: get_bytes(&f[1], "ErabSetupItem", "transport_address")?.to_vec(),
            gtp_teid: get_u32(&f[2], "ErabSetupItem", "gtp_teid")?,
        })
    }

    fn sample(seed: u64) -> Self {
        ErabSetupItem {
            erab_id: (seed % 16) as u8,
            transport_address: vec![10, 1, (seed >> 8) as u8, seed as u8],
            gtp_teid: (seed.wrapping_mul(0x85EB_CA6B) & 0xFFFF_FFFF) as u32,
        }
    }
}

/// An E-RAB that failed to set up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErabFailedItem {
    /// E-RAB id.
    pub erab_id: u8,
    /// Failure cause code.
    pub cause: u8,
}

impl Wire for ErabFailedItem {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ErabFailedItem")
                        .field("erab_id", FieldType::Constrained { lo: 0, hi: 15 })
                        .field("cause", FieldType::Enum { variants: 16 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.erab_id)),
            Value::U64(u64::from(self.cause)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "ErabFailedItem", 2)?;
        Ok(ErabFailedItem {
            erab_id: get_u8(&f[0], "ErabFailedItem", "erab_id")?,
            cause: get_u8(&f[1], "ErabFailedItem", "cause")?,
        })
    }

    fn sample(seed: u64) -> Self {
        ErabFailedItem {
            erab_id: (seed % 16) as u8,
            cause: (seed % 16) as u8,
        }
    }
}

/// UE aggregate maximum bit rate (downlink + uplink, bits/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UeAmbr {
    /// Downlink AMBR.
    pub downlink: u64,
    /// Uplink AMBR.
    pub uplink: u64,
}

impl Wire for UeAmbr {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UeAmbr")
                        .field("downlink", FieldType::UInt { bits: 64 })
                        .field("uplink", FieldType::UInt { bits: 64 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![Value::U64(self.downlink), Value::U64(self.uplink)])
    }

    fn from_value(v: &Value) -> Result<Self> {
        let f = fields(v, "UeAmbr", 2)?;
        Ok(UeAmbr {
            downlink: get_u64(&f[0], "UeAmbr", "downlink")?,
            uplink: get_u64(&f[1], "UeAmbr", "uplink")?,
        })
    }

    fn sample(_seed: u64) -> Self {
        UeAmbr {
            downlink: 1_000_000_000,
            uplink: 500_000_000,
        }
    }
}

/// Helper: converts a slice of `Wire` items into a list value.
pub fn list_to_value<T: Wire>(items: &[T]) -> Value {
    Value::List(items.iter().map(Wire::to_value).collect())
}

/// Helper: parses a list value into `Wire` items.
pub fn list_from_value<T: Wire>(v: &Value, msg: &str, field: &str) -> Result<Vec<T>> {
    crate::wire::get_list(v, msg, field)?
        .iter()
        .map(T::from_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::testutil::round_trip_all_codecs;

    #[test]
    fn tai_round_trips() {
        round_trip_all_codecs(&Tai::sample(7));
    }

    #[test]
    fn cgi_round_trips() {
        round_trip_all_codecs(&Cgi::sample(12345));
    }

    #[test]
    fn erab_to_setup_round_trips_with_and_without_pdu() {
        round_trip_all_codecs(&ErabToSetup::sample(2)); // even seed → pdu present
        round_trip_all_codecs(&ErabToSetup::sample(3)); // odd seed → absent
    }

    #[test]
    fn erab_setup_item_round_trips() {
        round_trip_all_codecs(&ErabSetupItem::sample(99));
    }

    #[test]
    fn erab_failed_item_round_trips() {
        round_trip_all_codecs(&ErabFailedItem::sample(5));
    }

    #[test]
    fn ue_ambr_round_trips() {
        round_trip_all_codecs(&UeAmbr::sample(0));
    }

    #[test]
    fn ue_identity_choice_values() {
        let t = UeIdentity::STmsi(0xDEAD_BEEF);
        let i = UeIdentity::Imsi("310410123456789".into());
        assert_eq!(UeIdentity::from_value(&t.to_value()).unwrap(), t);
        assert_eq!(UeIdentity::from_value(&i.to_value()).unwrap(), i);
    }

    #[test]
    fn sample_values_validate() {
        Tai::schema().validate(&Tai::sample(1).to_value()).unwrap();
        Cgi::schema().validate(&Cgi::sample(1).to_value()).unwrap();
        ErabToSetup::schema()
            .validate(&ErabToSetup::sample(4).to_value())
            .unwrap();
    }
}
