//! The replicated UE state and its wire form.
//!
//! §4.2: "This CPF is responsible for updating and storing the UE state
//! (which includes the BS ID, data plane endpoint identifiers, and user
//! tracking area)." [`UeState`] is that record; it is what the primary CPF
//! checkpoints to its backups after every procedure, and what a backup must
//! hold (or reconstruct by replay) before it may serve the UE.

use crate::ies::Tai;
use crate::wire::{fields, get_bool, get_bytes, get_u32, get_u64, get_u8, list_of, Wire};
use neutrino_codec::value::{FieldType, Schema, StructSchema, Value};
use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, ProcedureId, Result, SessionId, UeId, UpfId};
use std::sync::{Arc, OnceLock};

/// Version of a UE state snapshot: which procedure produced it and the
/// logical clock of that procedure's last message.
///
/// Orders totally per UE: procedures are sequential, and within a procedure
/// the clock increases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateVersion {
    /// The procedure whose completion produced this snapshot.
    pub procedure: ProcedureId,
    /// Logical clock of the last message of that procedure.
    pub clock: ClockTick,
}

impl StateVersion {
    /// The version before any procedure ran.
    pub const INITIAL: StateVersion = StateVersion {
        procedure: ProcedureId(0),
        clock: ClockTick(0),
    };
}

/// One established bearer in the UE's session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BearerContext {
    /// E-RAB id.
    pub erab_id: u8,
    /// QoS class.
    pub qci: u8,
    /// Uplink GTP TEID (on the UPF).
    pub teid_uplink: u32,
    /// Downlink GTP TEID (on the BS).
    pub teid_downlink: u32,
}

impl Wire for BearerContext {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("BearerContext")
                        .field("erab_id", FieldType::Constrained { lo: 0, hi: 15 })
                        .field("qci", FieldType::Constrained { lo: 1, hi: 9 })
                        .field("teid_uplink", FieldType::UInt { bits: 32 })
                        .field("teid_downlink", FieldType::UInt { bits: 32 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.erab_id)),
            Value::U64(u64::from(self.qci)),
            Value::U64(u64::from(self.teid_uplink)),
            Value::U64(u64::from(self.teid_downlink)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "BearerContext";
        let f = fields(v, M, 4)?;
        Ok(BearerContext {
            erab_id: get_u8(&f[0], M, "erab_id")?,
            qci: get_u8(&f[1], M, "qci")?,
            teid_uplink: get_u32(&f[2], M, "teid_uplink")?,
            teid_downlink: get_u32(&f[3], M, "teid_downlink")?,
        })
    }

    fn sample(seed: u64) -> Self {
        BearerContext {
            erab_id: (seed % 16) as u8,
            qci: 1 + (seed % 9) as u8,
            teid_uplink: (seed & 0xFFFF_FFFF) as u32,
            teid_downlink: ((seed >> 8) & 0xFFFF_FFFF) as u32,
        }
    }
}

/// The complete per-UE control state a CPF maintains and replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct UeState {
    /// Network-internal UE id (equal-valued with the S1AP id, §4.3 fn. 15).
    pub ue: UeId,
    /// Current M-TMSI.
    pub tmsi: u32,
    /// Whether the UE is attached.
    pub attached: bool,
    /// Whether the UE is in connected (vs idle) RRC state.
    pub connected: bool,
    /// Serving base station.
    pub serving_bs: BsId,
    /// Serving UPF.
    pub serving_upf: UpfId,
    /// Data session on the UPF, when established.
    pub session: Option<SessionId>,
    /// Current tracking area.
    pub tai: Tai,
    /// Tracking-area list granted to the UE — must match the UE's copy
    /// (§3.1's consistency example).
    pub tai_list: Vec<Tai>,
    /// Established bearers.
    pub bearers: Vec<BearerContext>,
    /// Security key material.
    pub security_key: Vec<u8>,
    /// Version of this snapshot.
    pub version: StateVersion,
}

impl UeState {
    /// A fresh state for a UE that has just started its first attach.
    pub fn new(ue: UeId, serving_bs: BsId, serving_upf: UpfId, tai: Tai) -> Self {
        UeState {
            ue,
            tmsi: (ue.raw() & 0xFFFF_FFFF) as u32,
            attached: false,
            connected: false,
            serving_bs,
            serving_upf,
            session: None,
            tai,
            tai_list: vec![tai],
            bearers: Vec::new(),
            security_key: Vec::new(),
            version: StateVersion::INITIAL,
        }
    }

    /// Bumps the version after a procedure completes.
    pub fn commit(&mut self, procedure: ProcedureId, clock: ClockTick) {
        self.version = StateVersion { procedure, clock };
    }
}

impl Wire for UeState {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UeState")
                        .field("ue", FieldType::UInt { bits: 64 })
                        .field("tmsi", FieldType::UInt { bits: 32 })
                        .field("attached", FieldType::Bool)
                        .field("connected", FieldType::Bool)
                        .field("serving_bs", FieldType::UInt { bits: 64 })
                        .field("serving_upf", FieldType::UInt { bits: 64 })
                        .field(
                            "session",
                            FieldType::Optional(Box::new(FieldType::UInt { bits: 64 })),
                        )
                        .field("tai", Tai::field_type())
                        .field("tai_list", list_of(Tai::field_type(), 16))
                        .field(
                            "bearers",
                            list_of(FieldType::Struct(BearerContext::schema()), 16),
                        )
                        .field("security_key", FieldType::Bytes { max: Some(64) })
                        .field("version_procedure", FieldType::UInt { bits: 64 })
                        .field("version_clock", FieldType::UInt { bits: 64 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(self.ue.raw()),
            Value::U64(u64::from(self.tmsi)),
            Value::Bool(self.attached),
            Value::Bool(self.connected),
            Value::U64(self.serving_bs.raw()),
            Value::U64(self.serving_upf.raw()),
            match self.session {
                Some(s) => Value::some(Value::U64(s.raw())),
                None => Value::none(),
            },
            self.tai.to_value(),
            crate::ies::list_to_value(&self.tai_list),
            crate::ies::list_to_value(&self.bearers),
            Value::Bytes(self.security_key.clone()),
            Value::U64(self.version.procedure.raw()),
            Value::U64(self.version.clock.raw()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "UeState";
        let f = fields(v, M, 13)?;
        let session = match &f[6] {
            Value::Optional(Some(inner)) => Some(SessionId::new(get_u64(inner, M, "session")?)),
            Value::Optional(None) => None,
            _ => return Err(crate::wire::field_err(M, "session")),
        };
        Ok(UeState {
            ue: UeId::new(get_u64(&f[0], M, "ue")?),
            tmsi: get_u32(&f[1], M, "tmsi")?,
            attached: get_bool(&f[2], M, "attached")?,
            connected: get_bool(&f[3], M, "connected")?,
            serving_bs: BsId::new(get_u64(&f[4], M, "serving_bs")?),
            serving_upf: UpfId::new(get_u64(&f[5], M, "serving_upf")?),
            session,
            tai: Tai::from_value(&f[7])?,
            tai_list: crate::ies::list_from_value(&f[8], M, "tai_list")?,
            bearers: crate::ies::list_from_value(&f[9], M, "bearers")?,
            security_key: get_bytes(&f[10], M, "security_key")?.to_vec(),
            version: StateVersion {
                procedure: ProcedureId::new(get_u64(&f[11], M, "version_procedure")?),
                clock: ClockTick(get_u64(&f[12], M, "version_clock")?),
            },
        })
    }

    fn sample(seed: u64) -> Self {
        UeState {
            ue: UeId::new(seed),
            tmsi: (seed & 0xFFFF_FFFF) as u32,
            attached: true,
            connected: seed.is_multiple_of(2),
            serving_bs: BsId::new(seed % 64),
            serving_upf: UpfId::new(seed % 8),
            session: Some(SessionId::new(seed.wrapping_mul(3))),
            tai: Tai::sample(seed),
            tai_list: (0..3).map(|i| Tai::sample(seed + i)).collect(),
            bearers: (0..2).map(|i| BearerContext::sample(seed + i)).collect(),
            security_key: (0..32).map(|i| (seed as u8).wrapping_add(i)).collect(),
            version: StateVersion {
                procedure: ProcedureId::new(seed % 100 + 1),
                clock: ClockTick(seed % 1000 + 1),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::testutil::round_trip_all_codecs;

    #[test]
    fn ue_state_round_trips() {
        round_trip_all_codecs(&UeState::sample(2)); // connected
        round_trip_all_codecs(&UeState::sample(3)); // idle
    }

    #[test]
    fn versions_order_by_procedure_then_clock() {
        let a = StateVersion {
            procedure: ProcedureId::new(1),
            clock: ClockTick(10),
        };
        let b = StateVersion {
            procedure: ProcedureId::new(1),
            clock: ClockTick(11),
        };
        let c = StateVersion {
            procedure: ProcedureId::new(2),
            clock: ClockTick(5),
        };
        assert!(a < b);
        assert!(b < c);
        assert!(StateVersion::INITIAL < a);
    }

    #[test]
    fn commit_advances_version() {
        let mut s = UeState::new(UeId::new(1), BsId::new(2), UpfId::new(3), Tai::sample(0));
        assert_eq!(s.version, StateVersion::INITIAL);
        s.commit(ProcedureId::FIRST, ClockTick(4));
        assert_eq!(s.version.procedure, ProcedureId::FIRST);
        assert_eq!(s.version.clock, ClockTick(4));
    }

    #[test]
    fn fresh_state_is_unattached() {
        let s = UeState::new(UeId::new(9), BsId::new(1), UpfId::new(1), Tai::sample(1));
        assert!(!s.attached);
        assert!(!s.connected);
        assert!(s.session.is_none());
        assert!(s.bearers.is_empty());
    }
}
