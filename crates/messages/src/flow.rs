//! The protocol-flow registry: which roles may send each [`SysMsg`] variant,
//! and which roles receive it.
//!
//! The paper's recovery flows (§4.2: `MarkOutdated` → `FetchState` →
//! `Replay` → `AskReAttach`) break silently when a handler quietly ignores a
//! variant or a new send site routes a message to a role that never expected
//! it. This table turns the doc-comment flow annotations ("CPF → CTA: …")
//! into a machine-checked contract:
//!
//! * `neutrino-lint`'s flow pass (crates/lint/src/flow.rs) cross-parses this
//!   table against every `SysMsg` construction/send site and every `handle()`
//!   match arm in the sans-IO crates, and fails CI on undeclared senders,
//!   missing handler arms, dead arms, orphan variants, and silent wildcard
//!   arms;
//! * the check harness witnesses `(variant, src_role, dst_role)` edges during
//!   explore runs and `explore --flow-coverage` diffs them against this table
//!   (declared-but-never-witnessed = dead protocol path,
//!   witnessed-but-undeclared = spec drift).
//!
//! Totality is enforced twice: [`variant_name`] matches `SysMsg`
//! exhaustively (adding a variant without touching this file fails to
//! build), and the unit tests + lint assert every variant has a `FLOWS`
//! entry and vice versa.

use crate::sysmsg::SysMsg;

/// A protocol role: who a node *is* in the deployment, for flow-contract
/// purposes. The simulator's node-id bands (see [`Role::of_node_raw`]) map
/// onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// A Control Traffic Aggregator.
    Cta,
    /// A Control Plane Function (the per-procedure state machines).
    Cpf,
    /// A User Plane Function (session anchors).
    Upf,
    /// The UE population behind its base stations (`UePop`/BS side).
    UePop,
    /// The test harness / environment: the failure detector and data-plane
    /// injectors that deliver messages from outside the deployment
    /// (`NodeId::EXTERNAL` sources).
    Harness,
}

/// First simulator node id of the CTA band (mirrored by
/// `neutrino_core::simnode::cta_node`; a cross-check test lives there).
pub const CTA_NODE_BAND: u64 = 1_000;
/// First simulator node id of the CPF band.
pub const CPF_NODE_BAND: u64 = 100_000;
/// First simulator node id of the UPF band.
pub const UPF_NODE_BAND: u64 = 200_000;

impl Role {
    /// Every role, in declaration order.
    pub const ALL: &'static [Role] =
        &[Role::Cta, Role::Cpf, Role::Upf, Role::UePop, Role::Harness];

    /// Stable lower-case name used in lint findings, the static flow graph
    /// and the coverage-diff JSON.
    pub fn name(self) -> &'static str {
        match self {
            Role::Cta => "cta",
            Role::Cpf => "cpf",
            Role::Upf => "upf",
            Role::UePop => "uepop",
            Role::Harness => "harness",
        }
    }

    /// Parse a [`Role::name`] back into a role.
    pub fn from_name(name: &str) -> Option<Role> {
        Role::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// Map a raw simulator node id onto its role band: node 0 is the UE
    /// population, `u64::MAX` is the external injector (`NodeId::EXTERNAL`),
    /// and the CTA/CPF/UPF bands follow `simnode`'s layout. Ids between the
    /// UE population and the CTA band are unassigned.
    pub fn of_node_raw(raw: u64) -> Option<Role> {
        match raw {
            0 => Some(Role::UePop),
            u64::MAX => Some(Role::Harness),
            r if r >= UPF_NODE_BAND => Some(Role::Upf),
            r if r >= CPF_NODE_BAND => Some(Role::Cpf),
            r if r >= CTA_NODE_BAND => Some(Role::Cta),
            _ => None,
        }
    }
}

/// The declared flow of one [`SysMsg`] variant: every `(source, destination)`
/// role pair on which the variant is allowed to travel.
///
/// Edges are explicit pairs — not a source-set × destination-set product —
/// so the coverage differ never manufactures impossible edges (e.g.
/// `DdnRequest` flows Upf→Cta and Cta→Cpf, but never Upf→Cpf directly).
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// The `SysMsg` variant name, e.g. `"StateSync"`.
    pub variant: &'static str,
    /// Allowed `(src, dst)` role pairs.
    pub edges: &'static [(Role, Role)],
}

impl FlowSpec {
    /// Whether `src → dst` is a declared edge for this variant.
    pub fn allows(&self, src: Role, dst: Role) -> bool {
        self.edges.contains(&(src, dst))
    }

    /// Whether `dst` is a declared destination on any edge (i.e. the role
    /// needs a handler arm for this variant).
    pub fn dst(&self, dst: Role) -> bool {
        self.edges.iter().any(|&(_, d)| d == dst)
    }

    /// Whether `src` is a declared source on any edge.
    pub fn src(&self, src: Role) -> bool {
        self.edges.iter().any(|&(s, _)| s == src)
    }
}

/// The flow table: one entry per `SysMsg` variant, in enum declaration
/// order. The lint's flow pass parses this table textually, so entries stay
/// in the literal `FlowSpec { variant: "...", edges: &[(Role::X, Role::Y)] }`
/// form — no helper macros.
pub const FLOWS: &[FlowSpec] = &[
    FlowSpec {
        variant: "Control",
        edges: &[
            (Role::UePop, Role::Cta),
            (Role::Cta, Role::Cpf),
            (Role::Cpf, Role::Cta),
            (Role::Cta, Role::UePop),
        ],
    },
    FlowSpec { variant: "StateSync", edges: &[(Role::Cpf, Role::Cpf)] },
    FlowSpec { variant: "SyncAck", edges: &[(Role::Cpf, Role::Cta)] },
    FlowSpec { variant: "MarkOutdated", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "Replay", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "FetchState", edges: &[(Role::Cpf, Role::Cpf)] },
    FlowSpec { variant: "FetchStateResp", edges: &[(Role::Cpf, Role::Cpf)] },
    FlowSpec { variant: "S11", edges: &[(Role::Cpf, Role::Upf)] },
    FlowSpec { variant: "S11Resp", edges: &[(Role::Upf, Role::Cpf)] },
    FlowSpec { variant: "AskReAttach", edges: &[(Role::Cta, Role::UePop)] },
    FlowSpec { variant: "MigrationAck", edges: &[(Role::Cpf, Role::Cpf)] },
    FlowSpec { variant: "RelayReAttach", edges: &[(Role::Cpf, Role::Cta)] },
    FlowSpec { variant: "DownlinkData", edges: &[(Role::Harness, Role::Upf)] },
    FlowSpec {
        variant: "DdnRequest",
        edges: &[(Role::Upf, Role::Cta), (Role::Cta, Role::Cpf)],
    },
    FlowSpec {
        variant: "CpfFailure",
        edges: &[(Role::Harness, Role::Cta), (Role::Harness, Role::Cpf)],
    },
    FlowSpec { variant: "ResyncRequest", edges: &[(Role::Cta, Role::Cpf)] },
    FlowSpec { variant: "ResyncBehind", edges: &[(Role::Cpf, Role::Cta)] },
    FlowSpec { variant: "Reject", edges: &[(Role::Cta, Role::UePop)] },
];

/// The variant name of a message, matching the identifiers used in `FLOWS`.
///
/// This match is deliberately exhaustive with no wildcard: adding a `SysMsg`
/// variant without declaring its flow here fails to **build**, which is the
/// totality guarantee the flow contract rests on (the unit tests and the
/// lint then force the matching `FLOWS` entry).
pub fn variant_name(msg: &SysMsg) -> &'static str {
    match msg {
        SysMsg::Control(_) => "Control",
        SysMsg::StateSync(_) => "StateSync",
        SysMsg::SyncAck(_) => "SyncAck",
        SysMsg::MarkOutdated(_) => "MarkOutdated",
        SysMsg::Replay(_) => "Replay",
        SysMsg::FetchState { .. } => "FetchState",
        SysMsg::FetchStateResp { .. } => "FetchStateResp",
        SysMsg::S11(_) => "S11",
        SysMsg::S11Resp(_) => "S11Resp",
        SysMsg::AskReAttach { .. } => "AskReAttach",
        SysMsg::MigrationAck { .. } => "MigrationAck",
        SysMsg::RelayReAttach { .. } => "RelayReAttach",
        SysMsg::DownlinkData { .. } => "DownlinkData",
        SysMsg::DdnRequest { .. } => "DdnRequest",
        SysMsg::CpfFailure { .. } => "CpfFailure",
        SysMsg::ResyncRequest { .. } => "ResyncRequest",
        SysMsg::ResyncBehind { .. } => "ResyncBehind",
        SysMsg::Reject { .. } => "Reject",
    }
}

/// Look up the declared flow of a variant by name.
pub fn spec(variant: &str) -> Option<&'static FlowSpec> {
    FLOWS.iter().find(|s| s.variant == variant)
}

/// The declared flow of a message. Panics if the variant has no `FLOWS`
/// entry — the totality tests make that unreachable in a green tree.
pub fn flow_of(msg: &SysMsg) -> &'static FlowSpec {
    let name = variant_name(msg);
    spec(name).unwrap_or_else(|| panic!("SysMsg::{name} has no FLOWS entry — declare its flow"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{Envelope, MessageKind};
    use crate::procedures::ProcedureKind;
    use crate::state::UeState;
    use crate::sysmsg::{
        AdmissionClass, MarkOutdated, Replay, S11Request, S11Response, SessionOp, StateSync,
        SyncAck, SyncPurpose,
    };
    use neutrino_common::clock::ClockTick;
    use crate::ies::Tai;
    use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, SessionId, UeId, UpfId};

    /// One instance of **every** `SysMsg` variant. Kept next to the table so
    /// the totality test below exercises `flow_of` over the whole enum.
    fn one_of_each() -> Vec<SysMsg> {
        let ue = UeId::new(1);
        let env = Envelope::uplink(
            ue,
            ProcedureId::FIRST,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(1),
        );
        let state = UeState::new(ue, BsId::new(1), UpfId::new(1), Tai { plmn: 1, tac: 1 });
        let sync = StateSync {
            ue,
            primary: CpfId::new(1),
            cta: CtaId::new(1),
            state: state.clone(),
            procedure: ProcedureId::FIRST,
            end_clock: ClockTick(1),
            purpose: SyncPurpose::Checkpoint,
        };
        vec![
            SysMsg::Control(env),
            SysMsg::StateSync(sync),
            SysMsg::SyncAck(SyncAck {
                ue,
                replica: CpfId::new(2),
                procedure: ProcedureId::FIRST,
                end_clock: ClockTick(1),
            }),
            SysMsg::MarkOutdated(MarkOutdated { ue, clock: ClockTick(1), up_to_date: vec![] }),
            SysMsg::Replay(Replay { ue, messages: vec![] }),
            SysMsg::FetchState { ue, requester: CpfId::new(2) },
            SysMsg::FetchStateResp { ue, state: Some(Box::new(state)) },
            SysMsg::S11(S11Request { ue, cpf: CpfId::new(1), op: SessionOp::Create, session: None }),
            SysMsg::S11Resp(S11Response {
                ue,
                op: SessionOp::Create,
                upf: UpfId::new(1),
                session: Some(SessionId::new(1)),
                ok: true,
            }),
            SysMsg::AskReAttach { ue },
            SysMsg::MigrationAck { ue },
            SysMsg::RelayReAttach { ue, bs: BsId::new(1) },
            SysMsg::DownlinkData { ue },
            SysMsg::DdnRequest { ue, upf: UpfId::new(1) },
            SysMsg::CpfFailure { cpf: CpfId::new(1) },
            SysMsg::ResyncRequest { ue, procedure: ProcedureId::FIRST, cta: CtaId::new(1) },
            SysMsg::ResyncBehind { ue, have: ProcedureId::FIRST, cpf: CpfId::new(1) },
            SysMsg::Reject { ue, class: AdmissionClass::Attach, retry_after_ms: 10 },
        ]
    }

    #[test]
    fn table_is_total_over_the_enum() {
        let msgs = one_of_each();
        // Every variant resolves to a FLOWS entry bearing its own name
        // (flow_of panics on a missing entry), …
        for m in &msgs {
            assert_eq!(flow_of(m).variant, variant_name(m));
        }
        // … the sample set covers each variant exactly once, …
        let names: std::collections::BTreeSet<_> = msgs.iter().map(|m| variant_name(m)).collect();
        assert_eq!(names.len(), msgs.len(), "one_of_each has a duplicate variant");
        // … and the table carries no extra (undeclarable) entries.
        assert_eq!(FLOWS.len(), msgs.len(), "FLOWS has entries for nonexistent variants");
        for s in FLOWS {
            assert!(names.contains(s.variant), "FLOWS entry {} matches no variant", s.variant);
        }
    }

    #[test]
    fn every_flow_has_edges_and_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for s in FLOWS {
            assert!(seen.insert(s.variant), "duplicate FLOWS entry for {}", s.variant);
            assert!(!s.edges.is_empty(), "{} declares no edges", s.variant);
            let mut edges = std::collections::BTreeSet::new();
            for e in s.edges {
                assert!(edges.insert(e), "{} declares duplicate edge {e:?}", s.variant);
            }
        }
    }

    #[test]
    fn role_names_round_trip() {
        for r in Role::ALL {
            assert_eq!(Role::from_name(r.name()), Some(*r));
        }
        assert_eq!(Role::from_name("nobody"), None);
    }

    #[test]
    fn node_band_mapping() {
        assert_eq!(Role::of_node_raw(0), Some(Role::UePop));
        assert_eq!(Role::of_node_raw(1), None);
        assert_eq!(Role::of_node_raw(CTA_NODE_BAND), Some(Role::Cta));
        assert_eq!(Role::of_node_raw(CPF_NODE_BAND + 3), Some(Role::Cpf));
        assert_eq!(Role::of_node_raw(UPF_NODE_BAND + 7), Some(Role::Upf));
        assert_eq!(Role::of_node_raw(u64::MAX), Some(Role::Harness));
    }

    #[test]
    fn spec_lookup_and_edge_queries() {
        let ddn = spec("DdnRequest").unwrap();
        assert!(ddn.allows(Role::Upf, Role::Cta));
        assert!(ddn.allows(Role::Cta, Role::Cpf));
        assert!(!ddn.allows(Role::Upf, Role::Cpf), "edges are pairs, not a product");
        assert!(ddn.src(Role::Upf) && ddn.dst(Role::Cpf));
        assert!(spec("NoSuchVariant").is_none());
    }
}
