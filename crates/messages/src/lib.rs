//! Cellular control-message model: a faithful subset of the S1AP (3GPP TS
//! 36.413) and NAS (TS 24.301) messages that the paper's four control
//! procedures exchange, plus Neutrino's internal replication messages.
//!
//! Every message type provides:
//!
//! * a typed Rust struct with the information elements (IEs) the procedure
//!   logic reads;
//! * a [`codec`](neutrino_codec) schema ([`wire::Wire::schema`]) describing
//!   its ASN.1-like layout — nested IEs, optionals, constrained integers and
//!   the unions (`CHOICE`s) whose svtable optimization §4.4 introduces;
//! * lossless conversion to/from the codec [`Value`](neutrino_codec::value::Value)
//!   model so any of the seven wire formats can carry it;
//! * a [`wire::Wire::sample`] instance with realistic field contents, used
//!   by the calibration pass and the Fig. 18–20 benchmarks.
//!
//! [`control::ControlMessage`] is the sum type the control plane routes, and
//! [`procedures`] defines the message sequences of each control procedure
//! (initial attach, service request, handover with CPF change, fast
//! handover, re-attach, detach).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod control;
pub mod costs;
pub mod flow;
pub mod ies;
pub mod nas;
pub mod procedures;
pub mod s1ap;
pub mod state;
pub mod sysmsg;
pub mod wire;

pub use control::{ControlMessage, Direction, Envelope, MessageKind};
pub use flow::{FlowSpec, Role, FLOWS};
pub use procedures::{ProcedureKind, ProcedureTemplate};
pub use sysmsg::{AdmissionClass, SysMsg};
pub use wire::Wire;
