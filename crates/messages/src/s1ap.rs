//! S1AP (TS 36.413) messages: the BS ↔ CPF dialogue.
//!
//! Includes the five messages Figs. 19–20 benchmark — `InitialUeMessage`,
//! `InitialContextSetupRequest`/`Response`, `ERabSetupRequest`/`Response` —
//! plus the handover family, NAS transport, context release, and paging.

use crate::ies::{
    list_from_value, list_to_value, Cgi, ErabFailedItem, ErabSetupItem, ErabToSetup, Tai, UeAmbr,
    UeIdentity,
};
use crate::wire::{
    field_err, fields, get_bytes, get_opt, get_u32, get_u8, list_of, optional, Wire,
};
use neutrino_codec::value::{FieldType, Schema, StructSchema, Value};
use neutrino_common::Result;
use std::sync::{Arc, OnceLock};

/// S1AP Initial UE Message (BS → CPF): carries the first NAS PDU of a UE and
/// the identity CHOICE the svtable optimization targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialUeMessage {
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Opaque NAS PDU (e.g. an encoded Attach Request).
    pub nas_pdu: Vec<u8>,
    /// Tracking area of the originating cell.
    pub tai: Tai,
    /// Cell global identity of the originating cell.
    pub cgi: Cgi,
    /// RRC establishment cause.
    pub rrc_cause: u8,
    /// UE identity (S-TMSI or IMSI) — a CHOICE of single fields.
    pub ue_identity: UeIdentity,
}

impl Wire for InitialUeMessage {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("InitialUeMessage")
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("nas_pdu", FieldType::Bytes { max: None })
                        .field("tai", Tai::field_type())
                        .field("cgi", Cgi::field_type())
                        .field("rrc_cause", FieldType::Enum { variants: 8 })
                        .field("ue_identity", UeIdentity::field_type())
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.enb_ue_id)),
            Value::Bytes(self.nas_pdu.clone()),
            self.tai.to_value(),
            self.cgi.to_value(),
            Value::U64(u64::from(self.rrc_cause)),
            self.ue_identity.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "InitialUeMessage";
        let f = fields(v, M, 6)?;
        Ok(InitialUeMessage {
            enb_ue_id: get_u32(&f[0], M, "enb_ue_id")?,
            nas_pdu: get_bytes(&f[1], M, "nas_pdu")?.to_vec(),
            tai: Tai::from_value(&f[2])?,
            cgi: Cgi::from_value(&f[3])?,
            rrc_cause: get_u8(&f[4], M, "rrc_cause")?,
            ue_identity: UeIdentity::from_value(&f[5])?,
        })
    }

    fn sample(seed: u64) -> Self {
        InitialUeMessage {
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            nas_pdu: vec![0x41; 60], // encoded attach request
            tai: Tai::sample(seed),
            cgi: Cgi::sample(seed),
            rrc_cause: 3, // mo-Data
            ue_identity: if seed.is_multiple_of(2) {
                UeIdentity::STmsi((seed & 0xFFFF_FFFF) as u32)
            } else {
                UeIdentity::Imsi(format!("31041{:010}", seed % 10_000_000_000))
            },
        }
    }
}

/// S1AP Initial Context Setup Request (CPF → BS): installs the UE context
/// and bearers on the base station.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialContextSetupRequest {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Aggregate maximum bit rate.
    pub ue_ambr: UeAmbr,
    /// Bearers to establish.
    pub erabs: Vec<ErabToSetup>,
    /// KeNB security key (32 octets).
    pub security_key: Vec<u8>,
    /// UE security capability bit flags.
    pub ue_security_capabilities: Vec<bool>,
    /// Handover restriction list, when roaming constraints apply.
    pub handover_restriction: Option<Vec<u8>>,
}

impl Wire for InitialContextSetupRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("InitialContextSetupRequest")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("ue_ambr", FieldType::Struct(UeAmbr::schema()))
                        .field(
                            "erabs",
                            list_of(FieldType::Struct(ErabToSetup::schema()), 16),
                        )
                        .field("security_key", FieldType::Bytes { max: Some(32) })
                        .field(
                            "ue_security_capabilities",
                            FieldType::BitString { max_bits: Some(32) },
                        )
                        .field(
                            "handover_restriction",
                            optional(FieldType::Bytes { max: None }),
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            self.ue_ambr.to_value(),
            list_to_value(&self.erabs),
            Value::Bytes(self.security_key.clone()),
            Value::Bits(self.ue_security_capabilities.clone()),
            match &self.handover_restriction {
                Some(b) => Value::some(Value::Bytes(b.clone())),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "InitialContextSetupRequest";
        let f = fields(v, M, 7)?;
        Ok(InitialContextSetupRequest {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            ue_ambr: UeAmbr::from_value(&f[2])?,
            erabs: list_from_value(&f[3], M, "erabs")?,
            security_key: get_bytes(&f[4], M, "security_key")?.to_vec(),
            ue_security_capabilities: crate::wire::get_bits(&f[5], M, "ue_security_capabilities")?
                .to_vec(),
            handover_restriction: get_opt(&f[6], M, "handover_restriction")?
                .map(|x| get_bytes(x, M, "handover_restriction").map(<[u8]>::to_vec))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        InitialContextSetupRequest {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            ue_ambr: UeAmbr::sample(seed),
            erabs: (0..2).map(|i| ErabToSetup::sample(seed + i)).collect(),
            security_key: (0..32).map(|i| (seed as u8).wrapping_add(i)).collect(),
            ue_security_capabilities: (0..16).map(|i| (seed >> i) & 1 == 1).collect(),
            handover_restriction: None,
        }
    }
}

/// S1AP Initial Context Setup Response (BS → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialContextSetupResponse {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Bearers successfully established.
    pub erabs_setup: Vec<ErabSetupItem>,
    /// Bearers that failed, when any.
    pub erabs_failed: Option<Vec<ErabFailedItem>>,
}

impl Wire for InitialContextSetupResponse {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("InitialContextSetupResponse")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field(
                            "erabs_setup",
                            list_of(FieldType::Struct(ErabSetupItem::schema()), 16),
                        )
                        .field(
                            "erabs_failed",
                            optional(list_of(FieldType::Struct(ErabFailedItem::schema()), 16)),
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            list_to_value(&self.erabs_setup),
            match &self.erabs_failed {
                Some(items) => Value::some(list_to_value(items)),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "InitialContextSetupResponse";
        let f = fields(v, M, 4)?;
        Ok(InitialContextSetupResponse {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            erabs_setup: list_from_value(&f[2], M, "erabs_setup")?,
            erabs_failed: get_opt(&f[3], M, "erabs_failed")?
                .map(|x| list_from_value(x, M, "erabs_failed"))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        InitialContextSetupResponse {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            erabs_setup: (0..2).map(|i| ErabSetupItem::sample(seed + i)).collect(),
            erabs_failed: if seed.is_multiple_of(5) {
                Some(vec![ErabFailedItem::sample(seed)])
            } else {
                None
            },
        }
    }
}

/// S1AP E-RAB Setup Request (CPF → BS): adds bearers to an existing context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ERabSetupRequest {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Updated AMBR, when it changes.
    pub ue_ambr: Option<UeAmbr>,
    /// Bearers to add.
    pub erabs: Vec<ErabToSetup>,
}

impl Wire for ERabSetupRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ERabSetupRequest")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("ue_ambr", optional(FieldType::Struct(UeAmbr::schema())))
                        .field(
                            "erabs",
                            list_of(FieldType::Struct(ErabToSetup::schema()), 16),
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            match &self.ue_ambr {
                Some(a) => Value::some(a.to_value()),
                None => Value::none(),
            },
            list_to_value(&self.erabs),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "ERabSetupRequest";
        let f = fields(v, M, 4)?;
        Ok(ERabSetupRequest {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            ue_ambr: get_opt(&f[2], M, "ue_ambr")?
                .map(UeAmbr::from_value)
                .transpose()?,
            erabs: list_from_value(&f[3], M, "erabs")?,
        })
    }

    fn sample(seed: u64) -> Self {
        ERabSetupRequest {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            ue_ambr: if seed.is_multiple_of(2) {
                Some(UeAmbr::sample(seed))
            } else {
                None
            },
            erabs: vec![ErabToSetup::sample(seed)],
        }
    }
}

/// S1AP E-RAB Setup Response (BS → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ERabSetupResponse {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Bearers established.
    pub erabs_setup: Vec<ErabSetupItem>,
    /// Bearers that failed, when any.
    pub erabs_failed: Option<Vec<ErabFailedItem>>,
}

impl Wire for ERabSetupResponse {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("ERabSetupResponse")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field(
                            "erabs_setup",
                            list_of(FieldType::Struct(ErabSetupItem::schema()), 16),
                        )
                        .field(
                            "erabs_failed",
                            optional(list_of(FieldType::Struct(ErabFailedItem::schema()), 16)),
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            list_to_value(&self.erabs_setup),
            match &self.erabs_failed {
                Some(items) => Value::some(list_to_value(items)),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "ERabSetupResponse";
        let f = fields(v, M, 4)?;
        Ok(ERabSetupResponse {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            erabs_setup: list_from_value(&f[2], M, "erabs_setup")?,
            erabs_failed: get_opt(&f[3], M, "erabs_failed")?
                .map(|x| list_from_value(x, M, "erabs_failed"))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        ERabSetupResponse {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            erabs_setup: vec![ErabSetupItem::sample(seed)],
            erabs_failed: None,
        }
    }
}

/// S1AP Uplink NAS Transport (BS → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UplinkNasTransport {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Opaque NAS PDU.
    pub nas_pdu: Vec<u8>,
    /// Current TAI.
    pub tai: Tai,
    /// Current CGI.
    pub cgi: Cgi,
}

impl Wire for UplinkNasTransport {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UplinkNasTransport")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("nas_pdu", FieldType::Bytes { max: None })
                        .field("tai", Tai::field_type())
                        .field("cgi", Cgi::field_type())
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            Value::Bytes(self.nas_pdu.clone()),
            self.tai.to_value(),
            self.cgi.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "UplinkNasTransport";
        let f = fields(v, M, 5)?;
        Ok(UplinkNasTransport {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            nas_pdu: get_bytes(&f[2], M, "nas_pdu")?.to_vec(),
            tai: Tai::from_value(&f[3])?,
            cgi: Cgi::from_value(&f[4])?,
        })
    }

    fn sample(seed: u64) -> Self {
        UplinkNasTransport {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            nas_pdu: vec![0x62; 24],
            tai: Tai::sample(seed),
            cgi: Cgi::sample(seed),
        }
    }
}

/// S1AP Downlink NAS Transport (CPF → BS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownlinkNasTransport {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Opaque NAS PDU.
    pub nas_pdu: Vec<u8>,
}

impl Wire for DownlinkNasTransport {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("DownlinkNasTransport")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("nas_pdu", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            Value::Bytes(self.nas_pdu.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "DownlinkNasTransport";
        let f = fields(v, M, 3)?;
        Ok(DownlinkNasTransport {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            nas_pdu: get_bytes(&f[2], M, "nas_pdu")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        DownlinkNasTransport {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            nas_pdu: vec![0x55; 40],
        }
    }
}

/// S1AP Handover Required (source BS → CPF): the BS asks to move the UE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoverRequired {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
    /// Handover type (intra-LTE, etc.).
    pub handover_type: u8,
    /// Cause.
    pub cause: u8,
    /// Target cell.
    pub target_cgi: Cgi,
    /// Target tracking area.
    pub target_tai: Tai,
    /// Transparent source→target RRC container.
    pub src_to_tgt_container: Vec<u8>,
}

impl Wire for HandoverRequired {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("HandoverRequired")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("handover_type", FieldType::Enum { variants: 5 })
                        .field("cause", FieldType::Enum { variants: 64 })
                        .field("target_cgi", Cgi::field_type())
                        .field("target_tai", Tai::field_type())
                        .field("src_to_tgt_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            Value::U64(u64::from(self.handover_type)),
            Value::U64(u64::from(self.cause)),
            self.target_cgi.to_value(),
            self.target_tai.to_value(),
            Value::Bytes(self.src_to_tgt_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "HandoverRequired";
        let f = fields(v, M, 7)?;
        Ok(HandoverRequired {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            handover_type: get_u8(&f[2], M, "handover_type")?,
            cause: get_u8(&f[3], M, "cause")?,
            target_cgi: Cgi::from_value(&f[4])?,
            target_tai: Tai::from_value(&f[5])?,
            src_to_tgt_container: get_bytes(&f[6], M, "src_to_tgt_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        HandoverRequired {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            handover_type: 0,
            cause: 2, // handover-desirable-for-radio-reasons
            target_cgi: Cgi::sample(seed + 1),
            target_tai: Tai::sample(seed + 1),
            src_to_tgt_container: vec![0x9A; 120],
        }
    }
}

/// S1AP Handover Request (CPF → target BS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoverRequest {
    /// New MME-side UE S1AP id at the target.
    pub mme_ue_id: u32,
    /// Handover type.
    pub handover_type: u8,
    /// Cause.
    pub cause: u8,
    /// AMBR to enforce.
    pub ue_ambr: UeAmbr,
    /// Bearers to establish at the target.
    pub erabs: Vec<ErabToSetup>,
    /// Security context (KeNB*).
    pub security_context: Vec<u8>,
    /// Transparent source→target RRC container.
    pub src_to_tgt_container: Vec<u8>,
}

impl Wire for HandoverRequest {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("HandoverRequest")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field("handover_type", FieldType::Enum { variants: 5 })
                        .field("cause", FieldType::Enum { variants: 64 })
                        .field("ue_ambr", FieldType::Struct(UeAmbr::schema()))
                        .field(
                            "erabs",
                            list_of(FieldType::Struct(ErabToSetup::schema()), 16),
                        )
                        .field("security_context", FieldType::Bytes { max: Some(64) })
                        .field("src_to_tgt_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.handover_type)),
            Value::U64(u64::from(self.cause)),
            self.ue_ambr.to_value(),
            list_to_value(&self.erabs),
            Value::Bytes(self.security_context.clone()),
            Value::Bytes(self.src_to_tgt_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "HandoverRequest";
        let f = fields(v, M, 7)?;
        Ok(HandoverRequest {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            handover_type: get_u8(&f[1], M, "handover_type")?,
            cause: get_u8(&f[2], M, "cause")?,
            ue_ambr: UeAmbr::from_value(&f[3])?,
            erabs: list_from_value(&f[4], M, "erabs")?,
            security_context: get_bytes(&f[5], M, "security_context")?.to_vec(),
            src_to_tgt_container: get_bytes(&f[6], M, "src_to_tgt_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        HandoverRequest {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            handover_type: 0,
            cause: 2,
            ue_ambr: UeAmbr::sample(seed),
            erabs: vec![ErabToSetup::sample(seed)],
            security_context: (0..32).map(|i| (seed as u8).wrapping_mul(i)).collect(),
            src_to_tgt_container: vec![0x9A; 120],
        }
    }
}

/// S1AP Handover Request Acknowledge (target BS → CPF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoverRequestAck {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// New eNB-side UE S1AP id at the target.
    pub enb_ue_id: u32,
    /// Bearers admitted at the target.
    pub erabs_admitted: Vec<ErabSetupItem>,
    /// Transparent target→source RRC container.
    pub tgt_to_src_container: Vec<u8>,
}

impl Wire for HandoverRequestAck {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("HandoverRequestAck")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field(
                            "erabs_admitted",
                            list_of(FieldType::Struct(ErabSetupItem::schema()), 16),
                        )
                        .field("tgt_to_src_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            list_to_value(&self.erabs_admitted),
            Value::Bytes(self.tgt_to_src_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "HandoverRequestAck";
        let f = fields(v, M, 4)?;
        Ok(HandoverRequestAck {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            erabs_admitted: list_from_value(&f[2], M, "erabs_admitted")?,
            tgt_to_src_container: get_bytes(&f[3], M, "tgt_to_src_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        HandoverRequestAck {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: ((seed + 7) % 0xFF_FFFF) as u32,
            erabs_admitted: vec![ErabSetupItem::sample(seed)],
            tgt_to_src_container: vec![0xA9; 80],
        }
    }
}

/// S1AP Handover Command (CPF → source BS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoverCommand {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id at the source.
    pub enb_ue_id: u32,
    /// Handover type.
    pub handover_type: u8,
    /// Transparent target→source RRC container.
    pub tgt_to_src_container: Vec<u8>,
}

impl Wire for HandoverCommand {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("HandoverCommand")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("handover_type", FieldType::Enum { variants: 5 })
                        .field("tgt_to_src_container", FieldType::Bytes { max: None })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            Value::U64(u64::from(self.handover_type)),
            Value::Bytes(self.tgt_to_src_container.clone()),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "HandoverCommand";
        let f = fields(v, M, 4)?;
        Ok(HandoverCommand {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            handover_type: get_u8(&f[2], M, "handover_type")?,
            tgt_to_src_container: get_bytes(&f[3], M, "tgt_to_src_container")?.to_vec(),
        })
    }

    fn sample(seed: u64) -> Self {
        HandoverCommand {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
            handover_type: 0,
            tgt_to_src_container: vec![0xA9; 80],
        }
    }
}

/// S1AP Handover Notify (target BS → CPF): the UE has arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoverNotify {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id at the target.
    pub enb_ue_id: u32,
    /// New TAI.
    pub tai: Tai,
    /// New CGI.
    pub cgi: Cgi,
}

impl Wire for HandoverNotify {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("HandoverNotify")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .field("tai", Tai::field_type())
                        .field("cgi", Cgi::field_type())
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
            self.tai.to_value(),
            self.cgi.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "HandoverNotify";
        let f = fields(v, M, 4)?;
        Ok(HandoverNotify {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
            tai: Tai::from_value(&f[2])?,
            cgi: Cgi::from_value(&f[3])?,
        })
    }

    fn sample(seed: u64) -> Self {
        HandoverNotify {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: ((seed + 7) % 0xFF_FFFF) as u32,
            tai: Tai::sample(seed + 1),
            cgi: Cgi::sample(seed + 1),
        }
    }
}

/// S1AP UE Context Release Command (CPF → BS). The UE-ids IE is a CHOICE in
/// the real protocol (id-pair or MME id alone) — another svtable target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UeContextReleaseCommand {
    /// Either the MME id alone or both ids.
    pub ue_ids: ReleaseIds,
    /// Cause.
    pub cause: u8,
}

/// The UE-ids CHOICE of [`UeContextReleaseCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseIds {
    /// MME-side id only.
    MmeOnly(u32),
    /// Both MME- and eNB-side ids.
    Pair {
        /// MME-side UE S1AP id.
        mme_ue_id: u32,
        /// eNB-side UE S1AP id.
        enb_ue_id: u32,
    },
}

impl UeContextReleaseCommand {
    fn ids_field_type() -> FieldType {
        static PAIR: OnceLock<Arc<StructSchema>> = OnceLock::new();
        let pair = PAIR
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UeIdPair")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .build(),
                )
            })
            .clone();
        FieldType::Choice(vec![
            neutrino_codec::value::Variant {
                name: "mme_only".into(),
                ty: FieldType::UInt { bits: 32 },
            },
            neutrino_codec::value::Variant {
                name: "pair".into(),
                ty: FieldType::Struct(pair),
            },
        ])
    }
}

impl Wire for UeContextReleaseCommand {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UeContextReleaseCommand")
                        .field("ue_ids", Self::ids_field_type())
                        .field("cause", FieldType::Enum { variants: 64 })
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        let ids = match &self.ue_ids {
            ReleaseIds::MmeOnly(id) => Value::choice(0, Value::U64(u64::from(*id))),
            ReleaseIds::Pair {
                mme_ue_id,
                enb_ue_id,
            } => Value::choice(
                1,
                Value::Struct(vec![
                    Value::U64(u64::from(*mme_ue_id)),
                    Value::U64(u64::from(*enb_ue_id)),
                ]),
            ),
        };
        Value::Struct(vec![ids, Value::U64(u64::from(self.cause))])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "UeContextReleaseCommand";
        let f = fields(v, M, 2)?;
        let ue_ids = match &f[0] {
            Value::Choice { index: 0, value } => {
                ReleaseIds::MmeOnly(get_u32(value, M, "mme_only")?)
            }
            Value::Choice { index: 1, value } => {
                let p = fields(value, M, 2)?;
                ReleaseIds::Pair {
                    mme_ue_id: get_u32(&p[0], M, "mme_ue_id")?,
                    enb_ue_id: get_u32(&p[1], M, "enb_ue_id")?,
                }
            }
            _ => return Err(field_err(M, "ue_ids")),
        };
        Ok(UeContextReleaseCommand {
            ue_ids,
            cause: get_u8(&f[1], M, "cause")?,
        })
    }

    fn sample(seed: u64) -> Self {
        UeContextReleaseCommand {
            ue_ids: if seed.is_multiple_of(2) {
                ReleaseIds::Pair {
                    mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
                    enb_ue_id: (seed % 0xFF_FFFF) as u32,
                }
            } else {
                ReleaseIds::MmeOnly((seed & 0xFFFF_FFFF) as u32)
            },
            cause: 20, // release-due-to-eutran-generated-reason
        }
    }
}

/// S1AP UE Context Release Complete (BS → CPF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UeContextReleaseComplete {
    /// MME-side UE S1AP id.
    pub mme_ue_id: u32,
    /// eNB-side UE S1AP id.
    pub enb_ue_id: u32,
}

impl Wire for UeContextReleaseComplete {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("UeContextReleaseComplete")
                        .field("mme_ue_id", FieldType::UInt { bits: 32 })
                        .field(
                            "enb_ue_id",
                            FieldType::Constrained {
                                lo: 0,
                                hi: 0xFF_FFFF,
                            },
                        )
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            Value::U64(u64::from(self.mme_ue_id)),
            Value::U64(u64::from(self.enb_ue_id)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "UeContextReleaseComplete";
        let f = fields(v, M, 2)?;
        Ok(UeContextReleaseComplete {
            mme_ue_id: get_u32(&f[0], M, "mme_ue_id")?,
            enb_ue_id: get_u32(&f[1], M, "enb_ue_id")?,
        })
    }

    fn sample(seed: u64) -> Self {
        UeContextReleaseComplete {
            mme_ue_id: (seed & 0xFFFF_FFFF) as u32,
            enb_ue_id: (seed % 0xFF_FFFF) as u32,
        }
    }
}

/// S1AP Paging (CPF → BS): wake an idle UE for downlink traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Paging {
    /// Paging identity (S-TMSI or IMSI) — a CHOICE.
    pub ue_paging_id: UeIdentity,
    /// Tracking areas to page in.
    pub tai_list: Vec<Tai>,
    /// Paging DRX cycle, when specified.
    pub drx: Option<u8>,
}

impl Wire for Paging {
    fn schema() -> Arc<Schema> {
        static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                Arc::new(
                    StructSchema::builder("Paging")
                        .field("ue_paging_id", UeIdentity::field_type())
                        .field("tai_list", list_of(Tai::field_type(), 16))
                        .field("drx", optional(FieldType::Constrained { lo: 0, hi: 3 }))
                        .build(),
                )
            })
            .clone()
    }

    fn to_value(&self) -> Value {
        Value::Struct(vec![
            self.ue_paging_id.to_value(),
            list_to_value(&self.tai_list),
            match self.drx {
                Some(d) => Value::some(Value::U64(u64::from(d))),
                None => Value::none(),
            },
        ])
    }

    fn from_value(v: &Value) -> Result<Self> {
        const M: &str = "Paging";
        let f = fields(v, M, 3)?;
        Ok(Paging {
            ue_paging_id: UeIdentity::from_value(&f[0])?,
            tai_list: list_from_value(&f[1], M, "tai_list")?,
            drx: get_opt(&f[2], M, "drx")?
                .map(|x| get_u8(x, M, "drx"))
                .transpose()?,
        })
    }

    fn sample(seed: u64) -> Self {
        Paging {
            ue_paging_id: UeIdentity::STmsi((seed & 0xFFFF_FFFF) as u32),
            tai_list: (0..2).map(|i| Tai::sample(seed + i)).collect(),
            drx: Some((seed % 4) as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::testutil::round_trip_all_codecs;

    #[test]
    fn fig19_messages_round_trip_all_codecs() {
        // The exact message set Figs. 19/20 benchmark.
        round_trip_all_codecs(&InitialContextSetupRequest::sample(11));
        round_trip_all_codecs(&InitialContextSetupResponse::sample(12));
        round_trip_all_codecs(&ERabSetupRequest::sample(13));
        round_trip_all_codecs(&ERabSetupResponse::sample(14));
        round_trip_all_codecs(&InitialUeMessage::sample(15));
        round_trip_all_codecs(&InitialUeMessage::sample(16)); // both identity variants
    }

    #[test]
    fn handover_family_round_trips() {
        round_trip_all_codecs(&HandoverRequired::sample(21));
        round_trip_all_codecs(&HandoverRequest::sample(22));
        round_trip_all_codecs(&HandoverRequestAck::sample(23));
        round_trip_all_codecs(&HandoverCommand::sample(24));
        round_trip_all_codecs(&HandoverNotify::sample(25));
    }

    #[test]
    fn transport_and_release_round_trip() {
        round_trip_all_codecs(&UplinkNasTransport::sample(31));
        round_trip_all_codecs(&DownlinkNasTransport::sample(32));
        round_trip_all_codecs(&UeContextReleaseCommand::sample(33)); // mme-only
        round_trip_all_codecs(&UeContextReleaseCommand::sample(34)); // pair
        round_trip_all_codecs(&UeContextReleaseComplete::sample(35));
        round_trip_all_codecs(&Paging::sample(36));
    }

    #[test]
    fn fig19_messages_have_at_least_eight_ies() {
        // §6.7.4: "all cellular control messages we tested contained a
        // minimum of 8 data elements".
        assert!(InitialContextSetupRequest::schema().leaf_count() >= 8);
        assert!(InitialUeMessage::schema().leaf_count() >= 8);
        assert!(ERabSetupRequest::schema().leaf_count() >= 8);
    }

    #[test]
    fn optimized_fastbuf_is_smaller_than_standard_on_union_messages() {
        use neutrino_codec::fastbuf::Fastbuf;
        let msg = InitialUeMessage::sample(100); // s-tmsi variant
        let mut std_buf = Vec::new();
        let mut opt_buf = Vec::new();
        msg.encode(&Fastbuf::standard(), &mut std_buf).unwrap();
        msg.encode(&Fastbuf::optimized(), &mut opt_buf).unwrap();
        assert!(
            opt_buf.len() < std_buf.len(),
            "optimized {} must be smaller than standard {}",
            opt_buf.len(),
            std_buf.len()
        );
    }

    #[test]
    fn per_is_smallest_on_fig19_messages() {
        use neutrino_codec::CodecKind;
        let msg = InitialContextSetupRequest::sample(5);
        let schema = InitialContextSetupRequest::schema();
        let v = msg.to_value();
        let mut per_len = 0usize;
        let mut others = Vec::new();
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            codec.encode(&schema, &v, &mut buf).unwrap();
            if kind == CodecKind::Asn1Per {
                per_len = buf.len();
            } else {
                others.push((kind, buf.len()));
            }
        }
        for (kind, len) in others {
            assert!(
                per_len <= len,
                "PER ({per_len}) must not exceed {kind} ({len})"
            );
        }
    }
}
