//! Property-based tests over the message model: every message kind, with
//! randomized sample seeds, must survive every codec and keep its schema
//! contract.

use neutrino_codec::CodecKind;
use neutrino_messages::state::UeState;
use neutrino_messages::{ControlMessage, MessageKind, Wire};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = MessageKind> {
    proptest::sample::select(MessageKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Samples of every kind validate against their schema and round-trip
    /// through every supporting codec.
    #[test]
    fn all_kinds_round_trip_for_any_seed(kind in any_kind(), seed in any::<u64>()) {
        let msg = kind.sample(seed);
        let schema = kind.schema();
        schema.validate(&msg.to_value()).unwrap();
        for codec_kind in CodecKind::ALL {
            let codec = codec_kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            msg.encode(codec.as_ref(), &mut buf).unwrap();
            let back = ControlMessage::decode(kind, codec.as_ref(), &buf).unwrap();
            prop_assert_eq!(&back, &msg, "{} via {}", kind, codec_kind);
            // Traverse agrees with the canonical checksum.
            prop_assert_eq!(
                codec.traverse(&schema, &buf).unwrap(),
                neutrino_codec::checksum_value(&msg.to_value()),
                "{} traverse via {}",
                kind,
                codec_kind
            );
        }
    }

    /// Every kind — exhaustively, not sampled — survives
    /// encode→decode→re-encode with *byte-identical* output through PER
    /// and both fastbuf flavors. Equality of the decoded message (above)
    /// is weaker: an encoder could emit different-but-decodable bytes per
    /// call (unstable field order, redundant presence bits) and still pass,
    /// which would break the simulator's byte-reproducibility story.
    #[test]
    fn every_kind_reencodes_byte_identically(seed in any::<u64>()) {
        for &kind in MessageKind::ALL {
            let msg = kind.sample(seed);
            let schema = kind.schema();
            for codec_kind in [CodecKind::Asn1Per, CodecKind::Fastbuf, CodecKind::FastbufOptimized] {
                let codec = codec_kind.instance();
                if !codec.supports(&schema) {
                    continue;
                }
                let mut first = Vec::new();
                msg.encode(codec.as_ref(), &mut first).unwrap();
                let back = ControlMessage::decode(kind, codec.as_ref(), &first).unwrap();
                prop_assert_eq!(&back, &msg, "{} via {} decode", kind, codec_kind);
                let mut second = Vec::new();
                back.encode(codec.as_ref(), &mut second).unwrap();
                prop_assert_eq!(
                    &first,
                    &second,
                    "{} via {}: re-encode must be byte-identical",
                    kind,
                    codec_kind
                );
            }
        }
    }

    /// PER stays the smallest encoding for every message and seed.
    #[test]
    fn per_is_size_floor(kind in any_kind(), seed in any::<u64>()) {
        let msg = kind.sample(seed);
        let schema = kind.schema();
        let per = CodecKind::Asn1Per.instance();
        let mut per_buf = Vec::new();
        per.encode(&schema, &msg.to_value(), &mut per_buf).unwrap();
        for codec_kind in [CodecKind::Fastbuf, CodecKind::FastbufOptimized, CodecKind::Flex] {
            let codec = codec_kind.instance();
            let mut buf = Vec::new();
            codec.encode(&schema, &msg.to_value(), &mut buf).unwrap();
            prop_assert!(
                per_buf.len() <= buf.len(),
                "{}: PER {} > {} {}",
                kind,
                per_buf.len(),
                codec_kind,
                buf.len()
            );
        }
    }

    /// The svtable optimization never grows a message.
    #[test]
    fn svtable_never_grows(kind in any_kind(), seed in any::<u64>()) {
        let msg = kind.sample(seed);
        let schema = kind.schema();
        let mut std_buf = Vec::new();
        let mut opt_buf = Vec::new();
        CodecKind::Fastbuf.instance().encode(&schema, &msg.to_value(), &mut std_buf).unwrap();
        CodecKind::FastbufOptimized.instance().encode(&schema, &msg.to_value(), &mut opt_buf).unwrap();
        prop_assert!(opt_buf.len() <= std_buf.len(), "{kind}");
    }

    /// UE state snapshots round-trip for arbitrary seeds (the replication
    /// payload must never lose information).
    #[test]
    fn ue_state_round_trips(seed in any::<u64>()) {
        let state = UeState::sample(seed);
        for codec_kind in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
            let codec = codec_kind.instance();
            let mut buf = Vec::new();
            state.encode(codec.as_ref(), &mut buf).unwrap();
            prop_assert_eq!(UeState::decode(codec.as_ref(), &buf).unwrap(), state.clone());
        }
    }
}
