//! Generators for the small-model corpus cases committed under
//! `crates/check/corpus/`.
//!
//! Run manually (never in CI — `check-long` skips `regen_`):
//!
//! ```text
//! cargo test -p neutrino-check --release regen_seed_mcheck_corpus -- --ignored --nocapture
//! ```
//!
//! Two cases are produced:
//!
//! * `mcheck-replay-floor-seed18.json` — the shrunk counterexample the
//!   exhaustive checker finds when the pre-fix replay-floor bug is
//!   re-introduced (see `tests/bug_reintroduction.rs`). On the healthy
//!   tree it replays clean; the recorded violation documents what the
//!   buggy build did.
//! * `mcheck-attach-failover-seed0.json` — a clean case carrying a
//!   non-identity choice trace, pinning that scripted interleaving
//!   replay stays byte-stable (and sequential) forever.

use neutrino_check::corpus::{self, CorpusCase};
use neutrino_check::scenario::small_model_plan;
use neutrino_check::shrink::shrink;
use neutrino_check::{explore_exhaustive, run_case, McheckOptions};
use neutrino_cta::set_replay_floor_bug;

#[test]
#[ignore = "generator, run manually to refresh the mcheck corpus cases"]
fn regen_seed_mcheck_corpus() {
    let dir = corpus::corpus_dir();

    // Case 1: the replay-floor counterexample, shrunk under the bug.
    let plan = small_model_plan("mcheck-replay-floor", 18).unwrap();
    set_replay_floor_bug(true);
    let caught = explore_exhaustive(
        &plan,
        &McheckOptions {
            bound: 2,
            max_paths: 5_000,
        },
    );
    let violation = caught.violation.expect("seed 18 reproduces under the bug");
    let mut failing = plan.clone();
    failing.choice_trace = violation.trace;
    let outcome = shrink(&failing, 80);
    let case = CorpusCase {
        violation: outcome.report.violations.first().cloned(),
        fingerprint: outcome.report.fingerprint.clone(),
        plan: outcome.plan,
    };
    set_replay_floor_bug(false);
    assert!(
        run_case(&case.plan).is_clean(),
        "corpus contract: the case must replay clean on the fixed tree"
    );
    let path = corpus::save(&dir, &case).unwrap();
    println!("pinned {}", path.display());

    // Case 2: a clean attach+failover run under a scripted non-identity
    // schedule (reorder the first contended delivery pair).
    let mut traced = small_model_plan("mcheck-attach-failover", 0).unwrap();
    traced.choice_trace = vec![1];
    let report = run_case(&traced);
    assert!(
        report.is_clean(),
        "the scripted interleaving must be clean: {}",
        report.to_json()
    );
    let case = CorpusCase {
        violation: None,
        fingerprint: report.fingerprint.clone(),
        plan: traced,
    };
    let path = corpus::save(&dir, &case).unwrap();
    println!("pinned {}", path.display());
}
