//! Kill-switch tests: one per catalog invariant.
//!
//! Each test builds a small healthy cluster, shows the invariant is
//! silent on it, then pulls a lever that manufactures exactly the state
//! the invariant guards against and asserts it fires *by name*. This is
//! the oracle suite's own oracle — an invariant whose kill-switch test
//! cannot make it fire is dead code wearing a checkmark.
//!
//! Levers go through test-support mutators (`results_mut`, `log_mut`,
//! `force_priority_evidence`) or raw engine actions (`crash_at` without
//! failover notices) precisely because the production paths are built
//! to *never* produce these states.

use neutrino_check::invariants::{invariant_by_name, BoundedQueue};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::{ProcedureId, UeId};
use neutrino_core::experiment::adapt_workload;
use neutrino_core::simnode::{cpf_node, cta_node, upf_node, CtaNode, UpfNode};
use neutrino_core::{
    Arrival, Cluster, Invariant, LinkProfile, OracleCtx, SimMsg, SystemConfig, UePopConfig,
    Violation, Workload,
};
use neutrino_cta::AdmissionParams;
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::sysmsg::{S11Request, SessionOp};
use neutrino_messages::{AdmissionClass, SysMsg};
use neutrino_netsim::SimConfig;

/// Four UEs attaching 100 µs apart — enough traffic for every oracle to
/// have something to look at, small enough to drain in milliseconds.
fn small_cluster(config: SystemConfig) -> Cluster {
    let arrivals: Vec<Arrival> = (0..4)
        .map(|u| Arrival {
            at: Instant::ZERO + Duration::from_micros(u * 100),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        })
        .collect();
    let workload = adapt_workload(&config, Workload::from_vec(arrivals));
    Cluster::build_with_sim(
        config,
        RegionLayout::default(),
        workload,
        UePopConfig::default(),
        LinkProfile::default(),
        SimConfig::for_horizon(Duration::from_millis(200)),
        7,
        1,
    )
}

fn check_at(
    cluster: &mut Cluster,
    inv: &mut dyn Invariant,
    now: Instant,
    final_pass: bool,
) -> Vec<Violation> {
    let mut ctx = OracleCtx {
        cluster,
        now,
        final_pass,
    };
    inv.check(&mut ctx)
}

fn at_ms(ms: u64) -> Instant {
    Instant::ZERO + Duration::from_millis(ms)
}

#[test]
fn kill_switch_consistency() {
    // EPC keeps one state copy and no log: raw-crashing the serving CPF
    // (no failover notice, so nothing recovers) leaves the CTA expecting
    // procedures no live node can serve.
    let mut cluster = small_cluster(SystemConfig::existing_epc());
    cluster.run_until(at_ms(50));
    let mut inv = invariant_by_name("consistency").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(50), false).is_empty(),
        "healthy EPC cluster must audit clean"
    );
    let victim = cluster.serving_cpf(UeId::new(0)).expect("ue 0 attached");
    cluster.sim.crash_at(at_ms(51), cpf_node(victim));
    cluster.run_until(at_ms(60));
    let fired = check_at(&mut cluster, &mut *inv, at_ms(60), false);
    assert!(!fired.is_empty(), "lost state copy must fire");
    assert!(fired.iter().all(|v| v.invariant == "consistency"));
}

#[test]
fn kill_switch_no_lost_procedure() {
    // Stop mid-flight: the final pass then sees procedures still active.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(Instant::ZERO + Duration::from_micros(150));
    let mut inv = invariant_by_name("no-lost-procedure").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(0), false).is_empty(),
        "mid-run passes must stay silent (procedures are always in flight)"
    );
    let fired = check_at(&mut cluster, &mut *inv, at_ms(0), true);
    assert!(!fired.is_empty(), "in-flight procedure at final pass must fire");
    assert!(fired.iter().all(|v| v.invariant == "no-lost-procedure"));
}

#[test]
fn kill_switch_bounded_stall() {
    // A procedure is legitimately in flight; pretending an hour passed
    // with no progress puts it far beyond the retry machinery's bound.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(Instant::ZERO + Duration::from_micros(150));
    let mut inv = invariant_by_name("bounded-stall").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, Instant::ZERO + Duration::from_micros(150), false)
            .is_empty(),
        "a fresh in-flight procedure is not a stall"
    );
    let fired = check_at(&mut cluster, &mut *inv, at_ms(3_600_000), false);
    assert!(!fired.is_empty(), "hour-long no-progress window must fire");
    assert!(fired.iter().all(|v| v.invariant == "bounded-stall"));
}

#[test]
fn kill_switch_session_ownership() {
    // Plant a session at a UPF for a UE no CTA has ever heard of.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(at_ms(100));
    let mut inv = invariant_by_name("session-ownership").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), false).is_empty(),
        "every session in a healthy run has an owner"
    );
    let upf = cluster.deployment.regions()[0].upfs[0];
    let cpf = cluster.deployment.regions()[0].cpfs[0];
    cluster
        .sim
        .node_as::<UpfNode>(upf_node(upf))
        .expect("upf exists")
        .core_mut()
        .on_s11(S11Request {
            ue: UeId::new(999_999),
            cpf,
            op: SessionOp::Create,
            session: None,
        });
    let fired = check_at(&mut cluster, &mut *inv, at_ms(100), false);
    assert!(!fired.is_empty(), "orphaned session must fire");
    assert!(fired.iter().all(|v| v.invariant == "session-ownership"));
    assert_eq!(fired[0].ue, Some(UeId::new(999_999)));
}

#[test]
fn kill_switch_bounded_retry() {
    // Forge a retransmission counter with no drops to justify it.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(at_ms(100));
    let mut inv = invariant_by_name("bounded-retry").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), false).is_empty(),
        "fault-free run retransmits within budget"
    );
    cluster.population().results_mut().retransmissions = 10_000;
    let fired = check_at(&mut cluster, &mut *inv, at_ms(100), false);
    assert!(!fired.is_empty(), "unexplained retransmissions must fire");
    assert!(fired.iter().all(|v| v.invariant == "bounded-retry"));
}

#[test]
fn kill_switch_monotonic_checkpoint() {
    // Record watermarks on one pass, then rewind a UE's completed-
    // procedure watermark at the CTA before the next.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(at_ms(100));
    let mut inv = invariant_by_name("monotonic-checkpoint").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), false).is_empty(),
        "first pass only records watermarks"
    );
    let cta = cluster.deployment.regions()[0].cta;
    let node = cluster
        .sim
        .node_as::<CtaNode>(cta_node(cta))
        .expect("cta exists");
    let log = node.core_mut().log_mut();
    assert!(
        log.ue(UeId::new(0)).map(|l| l.last_completed.raw()).unwrap_or(0) > 0,
        "ue 0 must have completed procedures for the rewind to regress"
    );
    log.ue_mut(UeId::new(0)).last_completed = ProcedureId(0);
    let fired = check_at(&mut cluster, &mut *inv, at_ms(101), false);
    assert!(!fired.is_empty(), "regressed watermark must fire");
    assert!(fired.iter().all(|v| v.invariant == "monotonic-checkpoint"));
}

#[test]
fn kill_switch_bounded_queue() {
    // Burst eight simultaneous deliveries into one UPF so its engine
    // queue provably exceeds a cap of one.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(at_ms(100));
    let mut healthy = invariant_by_name("bounded-queue").unwrap();
    assert!(
        check_at(&mut cluster, &mut *healthy, at_ms(100), false).is_empty(),
        "attach traffic stays under the default cap"
    );
    let upf = cluster.deployment.regions()[0].upfs[0];
    for _ in 0..8 {
        cluster
            .sim
            .inject_at(at_ms(101), upf_node(upf), SimMsg::Sys(SysMsg::DownlinkData {
                ue: UeId::new(0),
            }));
    }
    cluster.run_until(at_ms(110));
    let mut inv = BoundedQueue::with_cap(1);
    let fired = check_at(&mut cluster, &mut inv, at_ms(110), false);
    assert!(!fired.is_empty(), "queue depth past the cap must fire");
    assert!(fired.iter().all(|v| v.invariant == "bounded-queue"));
}

#[test]
fn kill_switch_shed_priority_order() {
    // Forge inverted gate evidence: a handover shed at a token level
    // where a detach was still admitted. `decide` itself can never
    // produce this — that is the property under test.
    let config = SystemConfig::neutrino().with_admission(AdmissionParams::for_rate(1_000));
    let mut cluster = small_cluster(config);
    cluster.run_until(at_ms(100));
    let mut inv = invariant_by_name("shed-priority-order").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), true).is_empty(),
        "an untouched gate keeps the priority ladder"
    );
    let cta = cluster.deployment.regions()[0].cta;
    let gate = cluster
        .sim
        .node_as::<CtaNode>(cta_node(cta))
        .expect("cta exists")
        .core_mut()
        .admission_mut()
        .expect("admission gate configured");
    gate.force_priority_evidence(AdmissionClass::Detach, Some(400), None);
    gate.force_priority_evidence(AdmissionClass::Handover, None, Some(500));
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), false).is_empty(),
        "evidence is cumulative; only the final pass judges it"
    );
    let fired = check_at(&mut cluster, &mut *inv, at_ms(100), true);
    assert!(!fired.is_empty(), "inverted shed ladder must fire");
    assert!(fired.iter().all(|v| v.invariant == "shed-priority-order"));
}

#[test]
fn kill_switch_no_retry_amplification() {
    // Retransmissions far beyond what drops and rejects license.
    let mut cluster = small_cluster(SystemConfig::neutrino());
    cluster.run_until(at_ms(100));
    let mut inv = invariant_by_name("no-retry-amplification").unwrap();
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), true).is_empty(),
        "fault-free run has no amplification"
    );
    let results = cluster.population().results_mut();
    results.retransmissions = 10_000;
    results.rejected = 10;
    assert!(
        check_at(&mut cluster, &mut *inv, at_ms(100), false).is_empty(),
        "amplification is judged at the final pass only"
    );
    let fired = check_at(&mut cluster, &mut *inv, at_ms(100), true);
    assert!(!fired.is_empty(), "storm-feeding retries must fire");
    assert!(fired.iter().all(|v| v.invariant == "no-retry-amplification"));
}
