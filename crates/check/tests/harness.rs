//! End-to-end tests of the checking harness itself.
//!
//! Simulation-scale cases are release-gated (`cargo test --release`), and
//! the explorer-scale sweep is `#[ignore]`d for the `check-long` CI job —
//! see TESTING.md.

use neutrino_bench::sweep::run_cells_with;
use neutrino_check::corpus::{self, CorpusCase};
use neutrino_check::run::{run_case, run_case_sharded, CheckReport};
use neutrino_check::scenario::{CasePlan, Scenario};
use neutrino_check::shrink::shrink;

/// The harness's own determinism: same plan, same bytes.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn failover_seed_is_clean_and_replays_byte_identically() {
    let plan = Scenario::by_name("failover").unwrap().plan(1);
    let first = run_case(&plan);
    assert!(
        first.is_clean(),
        "failover seed 1 must be clean on a healthy tree:\n{}",
        first.to_json()
    );
    assert!(first.passes > 2, "oracle must actually pause the run");
    assert!(
        first.fingerprint.completed > 0,
        "the measured phase must complete procedures"
    );
    let second = run_case(&plan);
    assert_eq!(first.to_json(), second.to_json(), "replay must be byte-identical");
}

/// Self-test of the detect→shrink→pin pipeline, with no code sabotage
/// needed: the existing EPC *does* violate continuous consistency after a
/// CPF crash (the paper's motivating observation), so running it with the
/// `consistency` invariant forced on is a guaranteed, deterministic
/// failure.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn epc_violation_is_detected_shrunk_and_pinned() {
    let mut plan = Scenario::by_name("epc-reattach").unwrap().plan(3);
    plan.invariants.push("consistency".to_string());
    let report = run_case(&plan);
    assert!(
        !report.is_clean(),
        "EPC + crash must violate continuous consistency"
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.invariant == "consistency"));

    let outcome = shrink(&plan, 40);
    assert!(!outcome.report.is_clean());
    assert!(
        outcome.plan.ues <= plan.ues && outcome.plan.duration_ms <= plan.duration_ms,
        "shrinking must not grow the plan"
    );

    // Pin it, reload it, and prove byte-identical replay of the pin.
    let dir = std::env::temp_dir().join(format!("neutrino-check-pin-{}", std::process::id()));
    let case = CorpusCase {
        violation: outcome.report.violations.first().cloned(),
        fingerprint: outcome.report.fingerprint.clone(),
        plan: outcome.plan,
    };
    let path = corpus::save(&dir, &case).unwrap();
    let loaded = corpus::load(&path).unwrap();
    assert_eq!(loaded, case);
    let replayed = run_case(&loaded.plan);
    assert_eq!(
        replayed.to_json(),
        outcome.report.to_json(),
        "pinned case must replay byte-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Every pinned corpus case replays clean and byte-identically on this
/// tree (the corpus contract) — including when the sharded engine is
/// *requested*. The report must not depend on the shard count, and the
/// documented degradations must actually happen: a plan with link faults
/// or a scripted choice trace runs on the sequential engine no matter
/// what was asked for, while a fault-free trace-free plan really shards.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn corpus_cases_replay_clean() {
    for (path, case) in corpus::load_dir(&corpus::corpus_dir()).unwrap() {
        let first = run_case(&case.plan);
        assert!(
            first.is_clean(),
            "{} must replay clean on a healthy tree:\n{}",
            path.display(),
            first.to_json()
        );
        let second = run_case(&case.plan);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{} must replay byte-identically",
            path.display()
        );
        let sharded = run_case_sharded(&case.plan, 2);
        assert_eq!(
            first.to_json(),
            sharded.report.to_json(),
            "{} must produce the identical report at --shards 2",
            path.display()
        );
        let plan = &case.plan;
        let must_degrade = plan.loss_ppm > 0
            || plan.duplicate_ppm > 0
            || plan.reorder_ppm > 0
            || plan.jitter_us > 0
            || !plan.choice_trace.is_empty();
        assert_eq!(
            sharded.sharded,
            !must_degrade,
            "{}: faults or a choice trace must force the sequential engine \
             (and only they may)",
            path.display()
        );
    }
}

/// The flash-crowd storm under admission control: clean, and not
/// vacuously — the gate must actually shed part of the herd, the UEs must
/// see `Reject`s, and the queue must stay under the plan's cap.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn flash_crowd_is_clean_and_actually_sheds() {
    let plan = Scenario::by_name("flash-crowd-reattach").unwrap().plan(1);
    let storm = plan.storm.as_ref().unwrap();
    let report = run_case(&plan);
    assert!(
        report.is_clean(),
        "flash-crowd seed 1 must be clean on a healthy tree:\n{}",
        report.to_json()
    );
    let f = &report.fingerprint;
    let shed: u64 = f.shed.iter().sum();
    let admitted: u64 = f.admitted.iter().sum();
    assert!(shed > 0, "the herd must overrun the gate (nothing was shed)");
    assert!(admitted > 0, "the gate must admit the paced retries");
    assert!(f.rejected > 0, "UEs must observe Reject frames");
    assert!(
        f.max_queue_depth <= storm.queue_cap,
        "queue depth {} exceeds cap {}",
        f.max_queue_depth,
        storm.queue_cap
    );
    assert!(
        f.completed > 0 && f.started > 0,
        "admitted work must complete"
    );
}

/// The same storm with the admission gate disabled must demonstrably
/// violate `bounded-queue` — the invariant is falsifiable, and admission
/// is what holds it.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn flash_crowd_without_admission_overflows_the_queue() {
    let mut plan = Scenario::by_name("flash-crowd-reattach").unwrap().plan(1);
    plan.storm.as_mut().unwrap().admission_rate_pps = 0;
    let report = run_case(&plan);
    assert!(
        !report.is_clean(),
        "an ungated flash crowd must violate at least bounded-queue"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "bounded-queue"),
        "bounded-queue must be among the violations:\n{}",
        report.to_json()
    );
    assert_eq!(
        report.fingerprint.rejected, 0,
        "no gate, no rejects — the overload is pure queue growth"
    );
}

/// The IoT pulse storm under admission control: clean, sheds, and every
/// pulse's retries drain before the run ends.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn iot_burst_storm_is_clean_and_actually_sheds() {
    let plan = Scenario::by_name("iot-burst-storm").unwrap().plan(1);
    let storm = plan.storm.as_ref().unwrap();
    let report = run_case(&plan);
    assert!(
        report.is_clean(),
        "iot-burst seed 1 must be clean on a healthy tree:\n{}",
        report.to_json()
    );
    let f = &report.fingerprint;
    assert!(f.shed.iter().sum::<u64>() > 0, "pulses must overrun the gate");
    assert!(f.rejected > 0, "UEs must observe Reject frames");
    assert!(f.max_queue_depth <= storm.queue_cap);
}

/// Same-seed replay across worker counts (the overload-control
/// determinism witness): identical plans produce byte-identical reports —
/// including the shed/admit class counters — whether the sweep runs on 1
/// or 8 jobs.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn storm_reports_are_independent_of_jobs() {
    let scenario = Scenario::by_name("flash-crowd-reattach").unwrap();
    let run_sweep = |jobs: usize| -> Vec<String> {
        let cells = (1..4u64)
            .map(|seed| {
                let plan = scenario.plan(seed);
                Box::new(move || run_case(&plan).to_json())
                    as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        run_cells_with(jobs, cells)
    };
    let (one, eight) = (run_sweep(1), run_sweep(8));
    assert_eq!(one, eight, "storm reports must not depend on --jobs");
    for json in &one {
        assert!(
            json.contains("\"shed\""),
            "the replay witness must cover the shed/admit sequence"
        );
    }
}

/// Results are input-ordered regardless of worker count, so a sweep's
/// output is byte-identical for any `--jobs`.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn sweep_output_is_independent_of_jobs() {
    let scenario = Scenario::by_name("failover").unwrap();
    let run_sweep = |jobs: usize| -> Vec<String> {
        let cells = (40..44u64)
            .map(|seed| {
                let plan = scenario.plan(seed);
                Box::new(move || run_case(&plan).to_json())
                    as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        run_cells_with(jobs, cells)
    };
    assert_eq!(run_sweep(1), run_sweep(4));
}

/// Explorer-scale sweep: 100 seeds across two scenarios, all clean.
#[test]
#[ignore = "explorer-scale; run via the check-long CI job (cargo test --release -- --ignored)"]
fn explorer_sweep_stays_clean() {
    for name in ["failover", "chaos"] {
        let scenario = Scenario::by_name(name).unwrap();
        let plans: Vec<CasePlan> = (0..50).map(|seed| scenario.plan(seed)).collect();
        let cells = plans
            .iter()
            .cloned()
            .map(|plan| {
                Box::new(move || run_case(&plan)) as Box<dyn FnOnce() -> CheckReport + Send>
            })
            .collect();
        let reports = run_cells_with(8, cells);
        for (plan, report) in plans.iter().zip(&reports) {
            assert!(
                report.is_clean(),
                "scenario {} seed {} violated:\n{}",
                name,
                plan.seed,
                report.to_json()
            );
        }
    }
}
