//! End-to-end tests of the checking harness itself.
//!
//! Simulation-scale cases are release-gated (`cargo test --release`), and
//! the explorer-scale sweep is `#[ignore]`d for the `check-long` CI job —
//! see TESTING.md.

use neutrino_bench::sweep::run_cells_with;
use neutrino_check::corpus::{self, CorpusCase};
use neutrino_check::run::{run_case, CheckReport};
use neutrino_check::scenario::{CasePlan, Scenario};
use neutrino_check::shrink::shrink;

/// The harness's own determinism: same plan, same bytes.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn failover_seed_is_clean_and_replays_byte_identically() {
    let plan = Scenario::by_name("failover").unwrap().plan(1);
    let first = run_case(&plan);
    assert!(
        first.is_clean(),
        "failover seed 1 must be clean on a healthy tree:\n{}",
        first.to_json()
    );
    assert!(first.passes > 2, "oracle must actually pause the run");
    assert!(
        first.fingerprint.completed > 0,
        "the measured phase must complete procedures"
    );
    let second = run_case(&plan);
    assert_eq!(first.to_json(), second.to_json(), "replay must be byte-identical");
}

/// Self-test of the detect→shrink→pin pipeline, with no code sabotage
/// needed: the existing EPC *does* violate continuous consistency after a
/// CPF crash (the paper's motivating observation), so running it with the
/// `consistency` invariant forced on is a guaranteed, deterministic
/// failure.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn epc_violation_is_detected_shrunk_and_pinned() {
    let mut plan = Scenario::by_name("epc-reattach").unwrap().plan(3);
    plan.invariants.push("consistency".to_string());
    let report = run_case(&plan);
    assert!(
        !report.is_clean(),
        "EPC + crash must violate continuous consistency"
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.invariant == "consistency"));

    let outcome = shrink(&plan, 40);
    assert!(!outcome.report.is_clean());
    assert!(
        outcome.plan.ues <= plan.ues && outcome.plan.duration_ms <= plan.duration_ms,
        "shrinking must not grow the plan"
    );

    // Pin it, reload it, and prove byte-identical replay of the pin.
    let dir = std::env::temp_dir().join(format!("neutrino-check-pin-{}", std::process::id()));
    let case = CorpusCase {
        violation: outcome.report.violations.first().cloned(),
        fingerprint: outcome.report.fingerprint.clone(),
        plan: outcome.plan,
    };
    let path = corpus::save(&dir, &case).unwrap();
    let loaded = corpus::load(&path).unwrap();
    assert_eq!(loaded, case);
    let replayed = run_case(&loaded.plan);
    assert_eq!(
        replayed.to_json(),
        outcome.report.to_json(),
        "pinned case must replay byte-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Every pinned corpus case replays clean and byte-identically on this
/// tree (the corpus contract).
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn corpus_cases_replay_clean() {
    for (path, case) in corpus::load_dir(&corpus::corpus_dir()).unwrap() {
        let first = run_case(&case.plan);
        assert!(
            first.is_clean(),
            "{} must replay clean on a healthy tree:\n{}",
            path.display(),
            first.to_json()
        );
        let second = run_case(&case.plan);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{} must replay byte-identically",
            path.display()
        );
    }
}

/// Results are input-ordered regardless of worker count, so a sweep's
/// output is byte-identical for any `--jobs`.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn sweep_output_is_independent_of_jobs() {
    let scenario = Scenario::by_name("failover").unwrap();
    let run_sweep = |jobs: usize| -> Vec<String> {
        let cells = (40..44u64)
            .map(|seed| {
                let plan = scenario.plan(seed);
                Box::new(move || run_case(&plan).to_json())
                    as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        run_cells_with(jobs, cells)
    };
    assert_eq!(run_sweep(1), run_sweep(4));
}

/// Explorer-scale sweep: 100 seeds across two scenarios, all clean.
#[test]
#[ignore = "explorer-scale; run via the check-long CI job (cargo test --release -- --ignored)"]
fn explorer_sweep_stays_clean() {
    for name in ["failover", "chaos"] {
        let scenario = Scenario::by_name(name).unwrap();
        let plans: Vec<CasePlan> = (0..50).map(|seed| scenario.plan(seed)).collect();
        let cells = plans
            .iter()
            .cloned()
            .map(|plan| {
                Box::new(move || run_case(&plan)) as Box<dyn FnOnce() -> CheckReport + Send>
            })
            .collect();
        let reports = run_cells_with(8, cells);
        for (plan, report) in plans.iter().zip(&reports) {
            assert!(
                report.is_clean(),
                "scenario {} seed {} violated:\n{}",
                name,
                plan.seed,
                report.to_json()
            );
        }
    }
}
