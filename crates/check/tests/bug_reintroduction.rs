//! Seeded bug re-introduction: prove the exhaustive checker catches a
//! real, historical bug.
//!
//! The lever re-enables the pre-fix `replay_covers` contiguity scan (a
//! phantom procedure id then reads as a permanent replay gap, so failover
//! wrongly re-attaches and strands state). `mcheck-replay-floor` seed 18
//! is the witness: under loss + a CPF crash the buggy floor logic fires
//! `consistency` violations, while the fixed logic runs clean — every
//! other nearby seed is clean both ways, which is exactly why a targeted
//! small-model plan is pinned here instead of a random sweep.
//!
//! This file holds a single test: the lever is a process-global flag, and
//! sibling tests in the same binary would race it.

use neutrino_check::corpus::{self, CorpusCase};
use neutrino_check::scenario::small_model_plan;
use neutrino_check::shrink::shrink;
use neutrino_check::{explore_exhaustive, run_case, McheckOptions};
use neutrino_cta::set_replay_floor_bug;

/// Clears the bug flag even when an assertion unwinds mid-test.
struct FlagGuard;

impl Drop for FlagGuard {
    fn drop(&mut self) {
        set_replay_floor_bug(false);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-scale test; run with --release")]
fn reintroduced_replay_floor_bug_is_caught_and_pins() {
    let plan = small_model_plan("mcheck-replay-floor", 18).expect("registered small model");
    let opts = McheckOptions {
        bound: 2,
        max_paths: 5_000,
    };

    // Fixed code: the whole bounded exploration is clean.
    let healthy = explore_exhaustive(&plan, &opts);
    assert!(
        healthy.violation.is_none(),
        "fixed replay floor must survive exhaustive checking: {:?}",
        healthy.violation.map(|v| v.report.violations)
    );
    assert!(healthy.stats.paths_explored > 0);

    // Re-introduce the bug; the same exploration must catch it.
    let _guard = FlagGuard;
    set_replay_floor_bug(true);
    let caught = explore_exhaustive(&plan, &opts);
    let violation = caught
        .violation
        .expect("exhaustive checker must catch the re-introduced bug within the bound");
    assert!(
        violation.report.violations.iter().any(|v| v.invariant == "consistency"),
        "the replay-floor bug manifests as a consistency violation: {:?}",
        violation.report.violations
    );

    // The counterexample flows through the PR 4 shrinker unchanged.
    let mut failing = plan.clone();
    failing.choice_trace = violation.trace;
    let outcome = shrink(&failing, 80);
    assert!(!outcome.report.is_clean());

    // Pinned corpus format, byte-identical replay while the bug is in.
    let dir = std::env::temp_dir().join(format!("mcheck-bug-reintro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp corpus dir");
    let case = CorpusCase {
        violation: outcome.report.violations.first().cloned(),
        fingerprint: outcome.report.fingerprint.clone(),
        plan: outcome.plan,
    };
    let path = corpus::save(&dir, &case).expect("case pins");
    let loaded = corpus::load(&path).expect("case loads");
    assert_eq!(loaded.plan, case.plan, "plan round-trips through the corpus format");
    let first = run_case(&loaded.plan);
    let second = run_case(&loaded.plan);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "pinned counterexample must replay byte-identically"
    );
    assert!(!first.is_clean(), "the pinned case still reproduces the bug");
    assert_eq!(first.fingerprint, loaded.fingerprint, "pinned fingerprint matches replay");

    // Flip the lever off: the very same case runs clean — the fix, not
    // the plan, is what the corpus case is testing.
    set_replay_floor_bug(false);
    let fixed = run_case(&loaded.plan);
    assert!(
        fixed.is_clean(),
        "with the fix restored the counterexample must pass: {:?}",
        fixed.violations
    );
    let _ = std::fs::remove_dir_all(&dir);
}
