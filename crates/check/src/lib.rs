//! `neutrino-check`: the deterministic simulation-testing harness.
//!
//! The netsim engine is already a deterministic discrete-event simulator:
//! one seed fixes the entire event stream, faults included. This crate
//! turns that property into a FoundationDB-style checking loop:
//!
//! * [`scenario`] — a DSL of named chaos families (topology + traffic +
//!   fault grids) that expand, per seed, into self-contained serializable
//!   [`CasePlan`](scenario::CasePlan)s.
//! * [`invariants`] — the invariant catalog behind
//!   [`neutrino_core::Invariant`]: no-lost-procedure, bounded-stall,
//!   session-ownership, bounded-retry, monotonic-checkpoint, plus the
//!   consistency audit in oracle form.
//! * [`run`] — executes a plan with in-run oracle passes at configurable
//!   sim-time intervals, pausing only at instants where events actually
//!   occurred (so long drain tails cost nothing) and never perturbing the
//!   event schedule. Produces a byte-stable [`CheckReport`](run::CheckReport).
//! * [`shrink`] — minimizes a failing plan (drop partitions and crashes,
//!   zero fault rates, shorten the horizon, fewer UEs) while it keeps
//!   failing.
//! * [`corpus`] — pinned regression cases under `crates/check/corpus/`:
//!   shrunk plans that must replay clean and byte-identically on a healthy
//!   tree.
//!
//! The `explore` binary drives thousands of seeds per scenario over the
//! bench crate's parallel sweep runner; results are input-ordered, so the
//! outcome is byte-identical for any `--jobs`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod corpus;
pub mod invariants;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use corpus::CorpusCase;
pub use invariants::{invariant_by_name, ALL_INVARIANTS};
pub use run::{run_case, CheckReport, Fingerprint, ViolationRecord};
pub use scenario::{CasePlan, Scenario};
pub use shrink::{shrink, ShrinkOutcome};
