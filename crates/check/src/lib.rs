//! `neutrino-check`: the deterministic simulation-testing harness.
//!
//! The netsim engine is already a deterministic discrete-event simulator:
//! one seed fixes the entire event stream, faults included. This crate
//! turns that property into a FoundationDB-style checking loop:
//!
//! * [`scenario`] — a DSL of named chaos families (topology + traffic +
//!   fault grids) that expand, per seed, into self-contained serializable
//!   [`CasePlan`](scenario::CasePlan)s.
//! * [`invariants`] — the invariant catalog behind
//!   [`neutrino_core::Invariant`]: no-lost-procedure, bounded-stall,
//!   session-ownership, bounded-retry, monotonic-checkpoint, plus the
//!   consistency audit in oracle form.
//! * [`run`] — executes a plan with in-run oracle passes at configurable
//!   sim-time intervals, pausing only at instants where events actually
//!   occurred (so long drain tails cost nothing) and never perturbing the
//!   event schedule. Produces a byte-stable [`CheckReport`](run::CheckReport).
//! * [`mcheck`] — the small-model exhaustive interleaving checker: a DFS
//!   over every schedule of simultaneously enabled deliveries (bounded by
//!   contended-delivery count), with sleep-set-style independence pruning
//!   and fingerprint-based state deduplication.
//! * [`shrink`] — minimizes a failing plan (drop partitions and crashes,
//!   zero fault rates, shorten the horizon, fewer UEs, truncate the
//!   choice trace) while it keeps failing.
//! * [`corpus`] — pinned regression cases under `crates/check/corpus/`:
//!   shrunk plans that must replay clean and byte-identically on a healthy
//!   tree.
//!
//! The `explore` binary drives thousands of seeds per scenario over the
//! bench crate's parallel sweep runner; results are input-ordered, so the
//! outcome is byte-identical for any `--jobs`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod corpus;
pub mod flowcov;
pub mod invariants;
pub mod mcheck;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use corpus::CorpusCase;
pub use invariants::{invariant_by_name, ALL_INVARIANTS};
pub use mcheck::{explore_exhaustive, McheckOptions, McheckOutcome, McheckStats};
pub use run::{
    run_case, run_case_sharded, run_case_with, CheckReport, Fingerprint, RunOutcome,
    ViolationRecord,
};
pub use scenario::{plan_by_name, small_model_plan, CasePlan, Scenario, SMALL_MODEL_NAMES};
pub use shrink::{shrink, ShrinkOutcome};
