//! Minimizes a failing plan while it keeps failing.
//!
//! Greedy delta debugging over the plan's fault dimensions: try removing
//! each partition window and each crash, zeroing each fault probability,
//! then halving the horizon, the UE pool, the rate, and the drain. Any
//! candidate that still fails becomes the new current plan and the
//! candidate list restarts from the top (removing a partition often makes
//! a crash removable next). Fixpoint: stops when no candidate fails or
//! the run budget is spent.
//!
//! Every candidate is a complete [`CasePlan`], so the shrunk result
//! replays byte-identically with no reference to the shrink history.

use crate::run::{run_case, CheckReport};
use crate::scenario::CasePlan;

/// Smallest measured window the shrinker will try (ms). Below this the
/// fault schedule has no room to land inside the run.
const MIN_DURATION_MS: u64 = 80;
/// Smallest UE pool the shrinker will try.
const MIN_UES: u64 = 200;
/// Smallest arrival rate the shrinker will try (pps).
const MIN_RATE_PPS: u64 = 2_000;
/// Smallest drain margin the shrinker will try (ms). Kept at several
/// retry cycles (retry timeout is 1 s): a drain squeezed below the UE
/// population's own recovery machinery would *manufacture* end-of-run
/// liveness violations, morphing a real failure into a horizon artifact.
const MIN_DRAIN_MS: u64 = 5_000;

/// Result of a shrink: the smallest still-failing plan found.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimized plan (equal to the input if nothing could be removed).
    pub plan: CasePlan,
    /// The minimized plan's report (non-clean by construction).
    pub report: CheckReport,
    /// Checked runs spent, including the initial reproduction.
    pub runs: u64,
}

/// Every single-step reduction of `plan`, in fixed order: structural
/// removals first (they shrink the *explanation*), size reductions last.
/// A choice trace shrinks before everything else — a shorter or
/// more-identity trace is a simpler interleaving story even when no fault
/// dimension can move.
fn candidates(plan: &CasePlan) -> Vec<CasePlan> {
    let mut out = Vec::new();
    if !plan.choice_trace.is_empty() {
        // Drop the whole trace (maybe the identity schedule fails too),
        // halve it, pop the last entry, and zero each non-identity pick.
        let mut c = plan.clone();
        c.choice_trace.clear();
        out.push(c);
        if plan.choice_trace.len() > 1 {
            let mut c = plan.clone();
            c.choice_trace.truncate(plan.choice_trace.len() / 2);
            out.push(c);
            let mut c = plan.clone();
            c.choice_trace.pop();
            out.push(c);
        }
        for (i, &pick) in plan.choice_trace.iter().enumerate() {
            if pick != 0 {
                let mut c = plan.clone();
                c.choice_trace[i] = 0;
                out.push(c);
            }
        }
    }
    for i in 0..plan.partitions.len() {
        let mut c = plan.clone();
        c.partitions.remove(i);
        out.push(c);
    }
    for i in 0..plan.crashes.len() {
        let mut c = plan.clone();
        c.crashes.remove(i);
        out.push(c);
    }
    let zeros: [fn(&mut CasePlan); 4] = [
        |c| c.loss_ppm = 0,
        |c| c.duplicate_ppm = 0,
        |c| c.reorder_ppm = 0,
        |c| c.jitter_us = 0,
    ];
    for zero in zeros {
        let mut c = plan.clone();
        zero(&mut c);
        if c != *plan {
            out.push(c);
        }
    }
    if plan.duration_ms > MIN_DURATION_MS {
        let mut c = plan.clone();
        c.duration_ms = (c.duration_ms / 2).max(MIN_DURATION_MS);
        // Keep the schedule inside the shortened window.
        c.crashes.retain(|cr| cr.at_ms < c.duration_ms);
        c.partitions.retain(|p| p.from_ms < c.duration_ms);
        for p in &mut c.partitions {
            p.until_ms = p.until_ms.min(c.duration_ms);
        }
        out.push(c);
    }
    if plan.ues > MIN_UES {
        let mut c = plan.clone();
        c.ues = (c.ues / 2).max(MIN_UES);
        out.push(c);
    }
    if plan.rate_pps > MIN_RATE_PPS {
        let mut c = plan.clone();
        c.rate_pps = (c.rate_pps / 2).max(MIN_RATE_PPS);
        out.push(c);
    }
    if plan.drain_ms > MIN_DRAIN_MS {
        let mut c = plan.clone();
        c.drain_ms = (c.drain_ms / 2).max(MIN_DRAIN_MS);
        out.push(c);
    }
    out
}

/// The invariants a report violates, deduplicated.
fn violated_invariants(report: &CheckReport) -> Vec<String> {
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.invariant.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Shrinks `plan` within `budget` checked runs.
///
/// A candidate only replaces the current plan when it violates at least
/// one of the invariants the *original* failure violated — "fails
/// somehow" is not enough. Without this, shrinking can walk away from
/// the bug under investigation and pin an unrelated (often horizon-
/// artifact) failure instead.
///
/// Panics if `plan` does not fail to begin with — shrinking a passing
/// plan would pin a vacuous corpus case.
pub fn shrink(plan: &CasePlan, budget: u64) -> ShrinkOutcome {
    let mut runs = 1u64;
    let mut current = plan.clone();
    let mut report = run_case(&current);
    assert!(
        !report.is_clean(),
        "shrink called on a passing plan (scenario {}, seed {})",
        plan.scenario,
        plan.seed
    );
    let target = violated_invariants(&report);
    let still_fails = |r: &CheckReport| {
        !r.is_clean() && violated_invariants(r).iter().any(|n| target.contains(n))
    };
    'fixpoint: loop {
        for cand in candidates(&current) {
            if runs >= budget {
                break 'fixpoint;
            }
            let r = run_case(&cand);
            runs += 1;
            if still_fails(&r) {
                current = cand;
                report = r;
                continue 'fixpoint;
            }
        }
        break;
    }
    ShrinkOutcome {
        plan: current,
        report,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn candidates_shrink_strictly() {
        let plan = Scenario::by_name("chaos").unwrap().plan(5);
        for c in candidates(&plan) {
            assert_ne!(c, plan, "a candidate must change the plan");
        }
    }

    #[test]
    fn trace_candidates_simplify_the_trace() {
        let mut plan = Scenario::by_name("chaos").unwrap().plan(5);
        plan.choice_trace = vec![2, 0, 1, 3];
        let cands = candidates(&plan);
        // Clear, halve, pop, then per-entry zeroing, ahead of everything.
        assert!(cands[0].choice_trace.is_empty());
        assert_eq!(cands[1].choice_trace, vec![2, 0]);
        assert_eq!(cands[2].choice_trace, vec![2, 0, 1]);
        assert_eq!(cands[3].choice_trace, vec![0, 0, 1, 3]);
        assert_eq!(cands[4].choice_trace, vec![2, 0, 0, 3]);
        assert_eq!(cands[5].choice_trace, vec![2, 0, 1, 0]);
    }

    #[test]
    fn halving_keeps_schedule_inside_window() {
        let mut plan = Scenario::by_name("chaos").unwrap().plan(5);
        plan.duration_ms = 400;
        for c in candidates(&plan) {
            for cr in &c.crashes {
                assert!(cr.at_ms < c.duration_ms);
            }
            for p in &c.partitions {
                assert!(p.until_ms <= c.duration_ms.max(p.from_ms + 1));
            }
        }
    }
}
