//! Executes one [`CasePlan`] with in-run oracle passes.
//!
//! The oracle loop pauses the simulation at interval-aligned instants and
//! evaluates every requested invariant against the paused cluster. Pauses
//! are read-only and segmented `run_until` calls process the identical
//! event stream, so a checked run is byte-for-byte the run the plan's seed
//! would have produced unchecked. Between two events the cluster cannot
//! change, so the loop uses the engine's next-event time to skip pause
//! points where nothing happened — a 10 s drain tail costs a handful of
//! passes, not hundreds.

use crate::invariants::invariant_for_case;
use crate::mcheck::ScriptChooser;
use crate::scenario::{CasePlan, EndpointPlan};
use neutrino_core::experiment::adapt_workload;
use neutrino_core::oracle::{Invariant, OracleCtx, Violation};
use neutrino_core::simnode::{cpf_node, cta_node};
use neutrino_core::{Arrival, Cluster, LinkProfile, SimMsg, SystemConfig, UePopConfig, Workload};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_cta::AdmissionParams;
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_netsim::{FaultSpec, SimConfig};
use neutrino_trafficgen::patterns::{
    flash_crowd_reattach, iot_burst_storm, uniform_with_pool, FlashCrowdParams, IotStormParams,
    UniformParams,
};
use serde::{Deserialize, Serialize};

/// Attach-phase rate used for every checked run (fast enough that the
/// pool registers in tens of milliseconds, slow enough not to overload).
const ATTACH_RATE_PPS: u64 = 40_000;

/// Violations kept verbatim in a report; the rest are counted only (a
/// badly broken build can emit one violation per UE per pass).
const MAX_RECORDED_VIOLATIONS: usize = 256;

/// A [`Violation`](neutrino_core::Violation) in serializable form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Invariant catalog name.
    pub invariant: String,
    /// Virtual time of the observing pass, microseconds since origin.
    pub at_us: u64,
    /// The UE concerned (raw id), when per-UE.
    pub ue: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl ViolationRecord {
    fn from_violation(v: Violation) -> ViolationRecord {
        ViolationRecord {
            invariant: v.invariant.to_string(),
            at_us: v.at.as_nanos() / 1_000,
            ue: v.ue.map(|u| u.raw()),
            detail: v.detail,
        }
    }
}

/// Counters that must replay bit-identically for the same plan: the
/// replay-equality witness (wall-clock numbers are deliberately absent).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Events the engine processed.
    pub events_processed: u64,
    /// Procedures started.
    pub started: u64,
    /// Procedures completed.
    pub completed: u64,
    /// Re-attaches performed.
    pub re_attached: u64,
    /// UE retransmissions sent.
    pub retransmissions: u64,
    /// Fault-layer loss drops.
    pub dropped_loss: u64,
    /// Partition-window drops.
    pub dropped_partition: u64,
    /// Fault-layer duplicate deliveries.
    pub duplicated: u64,
    /// Fault-layer reorder hold-backs.
    pub reordered: u64,
    /// Procedures the CTA's ACK-timeout scan pruned.
    pub timeout_pruned: u64,
    /// Procedures the CTA admission gate admitted, by class (priority
    /// order: handover, service-request, attach, detach). All zero when the
    /// gate is off.
    #[serde(default)]
    pub admitted: Vec<u64>,
    /// Procedures the gate shed, by class (same order).
    #[serde(default)]
    pub shed: Vec<u64>,
    /// `Reject` frames the UE population received.
    #[serde(default)]
    pub rejected: u64,
    /// Procedures UEs abandoned after exhausting the retry budget.
    #[serde(default)]
    pub retries_exhausted: u64,
    /// Largest engine queue depth across control-plane nodes.
    #[serde(default)]
    pub max_queue_depth: u64,
    /// Total invariant violations (including ones beyond the record cap).
    pub violations: u64,
}

/// Outcome of one checked run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Recorded violations, in pass order (capped; see
    /// [`Fingerprint::violations`] for the full count).
    pub violations: Vec<ViolationRecord>,
    /// Oracle passes executed (including the final pass).
    pub passes: u64,
    /// Replay-equality witness.
    pub fingerprint: Fingerprint,
}

/// A [`CheckReport`] plus which engine actually ran. Engine selection is
/// an execution detail, not part of the replay-equality witness, so it
/// lives outside the serialized report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The run's report.
    pub report: CheckReport,
    /// True when the run executed on the region-sharded engine (a shard
    /// request degrades to sequential for fault-ful links or a non-empty
    /// choice trace).
    pub sharded: bool,
}

impl CheckReport {
    /// True when no invariant fired.
    pub fn is_clean(&self) -> bool {
        self.fingerprint.violations == 0
    }

    /// Canonical JSON form; two runs of the same plan must produce equal
    /// strings.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Resolves a [`SystemConfig`] constructor name from a plan.
pub fn config_by_name(name: &str) -> Option<SystemConfig> {
    Some(match name {
        "neutrino" => SystemConfig::neutrino(),
        "neutrino_default_handover" => SystemConfig::neutrino_default_handover(),
        "neutrino_no_replication" => SystemConfig::neutrino_no_replication(),
        "neutrino_per_message" => SystemConfig::neutrino_per_message(),
        "neutrino_no_logging" => SystemConfig::neutrino_no_logging(),
        "existing_epc" => SystemConfig::existing_epc(),
        "dpcm" => SystemConfig::dpcm(),
        "skycore" => SystemConfig::skycore(),
        _ => return None,
    })
}

/// Resolves a [`ProcedureKind`] by its stable name.
pub fn kind_by_name(name: &str) -> Option<ProcedureKind> {
    ProcedureKind::ALL.iter().copied().find(|k| k.name() == name)
}

/// Runs one plan to its horizon with oracle passes every
/// `check_interval_ms`, plus a final pass after the drain.
///
/// Honors the plan's `choice_trace`: a non-empty trace replays the pinned
/// interleaving through a [`ScriptChooser`] on the sequential engine;
/// otherwise the run uses the process-wide shard setting, byte-identical
/// to the pre-mcheck checker.
///
/// Panics on a malformed plan (unknown system, procedure kind, invariant,
/// or partition endpoint) — plans come from [`Scenario::plan`]
/// (crate::scenario::Scenario::plan) or a pinned corpus file, and a typo
/// there should fail loudly, not skip silently.
pub fn run_case(plan: &CasePlan) -> CheckReport {
    run_case_sharded(plan, neutrino_core::experiment::shards()).report
}

/// [`run_case`] with an explicit shard request, bypassing the
/// process-global setting (which parallel tests must not mutate). The
/// request is best-effort: fault-ful links or a non-empty `choice_trace`
/// degrade to the sequential engine — the outcome's `sharded` flag says
/// what actually ran.
pub fn run_case_sharded(plan: &CasePlan, shards: usize) -> RunOutcome {
    if plan.choice_trace.is_empty() {
        run_case_with(plan, shards, None)
    } else {
        let mut script = ScriptChooser::new(&plan.choice_trace);
        run_case_with(plan, 1, Some(&mut script))
    }
}

/// A delivery witness for flow-coverage runs: `(from, to, &msg)` for every
/// message the engine actually enqueues (see
/// [`neutrino_netsim::Sim::set_delivery_tap`]).
pub type DeliveryTap = neutrino_netsim::DeliveryTap<SimMsg>;

/// The full checker: one plan, an explicit shard count, and an optional
/// interleaving chooser (which requires `shards == 1` — chosen-mode
/// dispatch only exists on the sequential engine). This is the entry point
/// the exhaustive checker drives with an exploring chooser.
pub fn run_case_with(
    plan: &CasePlan,
    shards: usize,
    chooser: Option<&mut dyn neutrino_netsim::Chooser<SimMsg>>,
) -> RunOutcome {
    run_case_impl(plan, shards, chooser, None)
}

/// [`run_case_with`] on the sequential engine with a delivery tap
/// installed: the tap observes every enqueued message without perturbing
/// the event stream (`explore --flow-coverage` records witnessed protocol
/// flow edges this way).
pub fn run_case_witnessed(plan: &CasePlan, tap: DeliveryTap) -> RunOutcome {
    run_case_impl(plan, 1, None, Some(tap))
}

fn run_case_impl(
    plan: &CasePlan,
    shards: usize,
    mut chooser: Option<&mut dyn neutrino_netsim::Chooser<SimMsg>>,
    tap: Option<DeliveryTap>,
) -> RunOutcome {
    assert!(
        chooser.is_none() || shards == 1,
        "chosen-mode runs require the sequential engine"
    );
    assert!(
        tap.is_none() || shards == 1,
        "delivery-tap runs require the sequential engine"
    );
    let mut config = config_by_name(&plan.system)
        .unwrap_or_else(|| panic!("unknown system `{}`", plan.system));
    let kind =
        kind_by_name(&plan.kind).unwrap_or_else(|| panic!("unknown procedure `{}`", plan.kind));
    if let Some(storm) = &plan.storm {
        if storm.admission_rate_pps > 0 {
            config = config.with_admission(AdmissionParams::for_rate(storm.admission_rate_pps));
        }
    }
    // The workload: uniform-with-pool by default, the plan's storm shape,
    // or — for small-model plans — the explicit arrival schedule verbatim.
    // `measured_start` anchors the chaos schedule (crash/partition times
    // are relative to it) and `horizon` covers the traffic plus the drain
    // margin.
    let (workload, measured_start, horizon): (Workload, Instant, Duration) = match &plan.storm {
        None if plan.small_model.is_some() => {
            let sm = plan.small_model.as_ref().expect("checked");
            let arrivals = sm
                .arrivals
                .iter()
                .map(|a| Arrival {
                    at: Instant::ZERO + Duration::from_micros(a.at_us),
                    ue: UeId::new(a.ue),
                    kind: kind_by_name(&a.kind)
                        .unwrap_or_else(|| panic!("unknown procedure `{}`", a.kind)),
                })
                .collect();
            let horizon = Duration::from_millis(plan.duration_ms + plan.drain_ms);
            (Workload::from_vec(arrivals), Instant::ZERO, horizon)
        }
        None => {
            let (w, measured_start) = uniform_with_pool(
                UniformParams {
                    rate_pps: plan.rate_pps,
                    duration: Duration::from_millis(plan.duration_ms),
                    kind,
                    ues: plan.ues,
                    first_ue: 0,
                    start: Instant::ZERO,
                },
                ATTACH_RATE_PPS,
            );
            let horizon = measured_start.saturating_since(Instant::ZERO)
                + Duration::from_millis(plan.duration_ms + plan.drain_ms);
            (w, measured_start, horizon)
        }
        Some(storm) if storm.shape == "flash-crowd" => {
            let (w, sched) = flash_crowd_reattach(FlashCrowdParams {
                ues: plan.ues,
                first_ue: 0,
                steady_pps: plan.rate_pps,
                // Under the gate, pace the pool attach at half the
                // admission rate so the pre-storm phase registers without
                // tripping the gate itself.
                attach_pps: storm.admission_rate_pps / 2,
                steady: Duration::from_millis(storm.steady_ms),
                surge_delay: Duration::from_millis(storm.surge_delay_ms),
                surge_rate_pps: storm.surge_rate_pps,
                tail: Duration::from_millis(storm.tail_ms),
                start: Instant::ZERO,
            });
            let horizon = sched.end.saturating_since(Instant::ZERO)
                + Duration::from_millis(plan.drain_ms);
            (w, sched.steady_start, horizon)
        }
        Some(storm) if storm.shape == "iot-burst" => {
            let w = iot_burst_storm(IotStormParams {
                devices: plan.ues,
                first_ue: 0,
                pulses: storm.pulses,
                period: Duration::from_millis(storm.period_ms),
                window: Duration::from_millis(storm.window_ms),
                kind,
                start: Instant::ZERO,
            });
            let horizon = Duration::from_millis(
                storm.pulses * storm.period_ms + storm.window_ms + plan.drain_ms,
            );
            (w, Instant::ZERO, horizon)
        }
        Some(storm) => panic!("unknown storm shape `{}`", storm.shape),
    };
    let workload = adapt_workload(&config, workload);
    let links = LinkProfile {
        jitter: Duration::from_micros(plan.jitter_us),
        faults: FaultSpec {
            loss: plan.loss_ppm as f64 / 1e6,
            duplicate: plan.duplicate_ppm as f64 / 1e6,
            reorder: plan.reorder_ppm as f64 / 1e6,
            reorder_window: Duration::from_micros(plan.reorder_window_us),
        },
        ..LinkProfile::default()
    };
    let layout = match &plan.small_model {
        Some(sm) => {
            let d = RegionLayout::default();
            RegionLayout {
                bss_per_region: sm.bss_per_region as usize,
                cpfs_per_region: sm.cpfs_per_region as usize,
                upfs_per_region: sm.upfs_per_region as usize,
                // A replica set cannot exceed the pool that hosts it.
                replicas: d
                    .replicas
                    .min((sm.cpfs_per_region as usize).saturating_sub(1))
                    .max(1),
                ..d
            }
        }
        None => RegionLayout::default(),
    };
    let mut cluster = Cluster::build_with_sim(
        config,
        layout,
        workload,
        UePopConfig::default(),
        links,
        SimConfig::for_horizon(horizon),
        plan.seed,
        shards,
    );
    let sharded = cluster.sim.is_sharded();
    if let Some(tap) = tap {
        cluster.sim.set_delivery_tap(tap);
    }

    // Chaos schedule: crash and partition times are relative to the
    // measured phase so shrinking the attach pool keeps them meaningful.
    let cpfs = cluster.deployment.regions()[0].cpfs.clone();
    let cta0 = cluster.deployment.regions()[0].cta;
    for c in &plan.crashes {
        let victim = cpfs[c.cpf_index as usize % cpfs.len()];
        cluster.fail_cpf_at(measured_start + Duration::from_millis(c.at_ms), victim);
    }
    for p in &plan.partitions {
        let resolve = |e: &EndpointPlan| match e.kind.as_str() {
            "cta" => cta_node(cta0),
            "cpf" => cpf_node(cpfs[e.index as usize % cpfs.len()]),
            other => panic!("unknown partition endpoint kind `{other}`"),
        };
        cluster.sim.links_mut().add_partition(
            resolve(&p.a),
            resolve(&p.b),
            measured_start + Duration::from_millis(p.from_ms),
            measured_start + Duration::from_millis(p.until_ms),
        );
    }

    let mut invariants: Vec<Box<dyn Invariant>> = plan
        .invariants
        .iter()
        .map(|n| invariant_for_case(n, plan).unwrap_or_else(|| panic!("unknown invariant `{n}`")))
        .collect();

    // The oracle loop. Each pause lands on a multiple of the check
    // interval, but only when at least one event occurred since the last
    // pause — the next-event peek makes empty stretches free.
    let interval = Duration::from_millis(plan.check_interval_ms.max(1));
    let horizon_end = Instant::ZERO + horizon;
    let mut passes = 0u64;
    let mut recorded: Vec<ViolationRecord> = Vec::new();
    let mut total_violations = 0u64;
    let mut run_pass =
        |cluster: &mut Cluster, invs: &mut Vec<Box<dyn Invariant>>, now: Instant, final_pass: bool| {
            let mut batch: Vec<Violation> = Vec::new();
            for inv in invs.iter_mut() {
                let mut ctx = OracleCtx {
                    cluster,
                    now,
                    final_pass,
                };
                batch.extend(inv.check(&mut ctx));
            }
            // Invariants iterate HashMaps internally; the report must be
            // byte-stable across runs.
            batch.sort_by(|a, b| {
                (a.invariant, a.ue.map(|u| u.raw()), &a.detail)
                    .cmp(&(b.invariant, b.ue.map(|u| u.raw()), &b.detail))
            });
            total_violations += batch.len() as u64;
            for v in batch {
                if recorded.len() < MAX_RECORDED_VIOLATIONS {
                    recorded.push(ViolationRecord::from_violation(v));
                }
            }
        };
    loop {
        let next = match cluster.sim.next_event_at() {
            Some(t) if t < horizon_end => t,
            _ => break,
        };
        let k = next.as_nanos() / interval.as_nanos() + 1;
        let pause = Instant::from_nanos(k * interval.as_nanos());
        if pause >= horizon_end {
            break;
        }
        match &mut chooser {
            Some(c) => cluster.run_until_chosen(pause, &mut **c),
            None => cluster.run_until(pause),
        }
        passes += 1;
        run_pass(&mut cluster, &mut invariants, pause, false);
    }
    match &mut chooser {
        Some(c) => cluster.run_until_chosen(horizon_end, &mut **c),
        None => cluster.run_until(horizon_end),
    }
    passes += 1;
    run_pass(&mut cluster, &mut invariants, horizon_end, true);

    let sim = cluster.sim.sim_stats();
    let cta = cluster.cta_metrics();
    let max_queue_depth = cluster.max_control_queue_depth() as u64;
    let results = cluster.take_results();
    let report = CheckReport {
        violations: recorded,
        passes,
        fingerprint: Fingerprint {
            events_processed: sim.events_processed,
            started: results.started,
            completed: results.completed,
            re_attached: results.re_attached,
            retransmissions: results.retransmissions,
            dropped_loss: sim.dropped_loss,
            dropped_partition: sim.dropped_partition,
            duplicated: sim.duplicated,
            reordered: sim.reordered,
            timeout_pruned: cta.timeout_pruned,
            admitted: cta.admitted_by_class.to_vec(),
            shed: cta.shed_by_class.to_vec(),
            rejected: results.rejected,
            retries_exhausted: results.retries_exhausted,
            max_queue_depth,
            violations: total_violations,
        },
    };
    RunOutcome { report, sharded }
}
