//! The parallel seed explorer.
//!
//! ```text
//! explore --scenario failover --seeds 500 --jobs 8
//! explore --scenario all --seeds 1000 --corpus corpus-out
//! explore --exhaustive --scenario mcheck-attach-failover --bound 12
//! explore --flow-coverage --seeds 5 --json coverage.json
//! explore --replay crates/check/corpus/failover-seed17.json
//! explore --list
//! ```
//!
//! Expands the scenario into one plan per seed, runs them over the bench
//! crate's work-queue sweep runner (results are input-ordered, so output
//! is byte-identical for any `--jobs`), and reports every violation. On
//! failure it shrinks the lowest failing seed, pins the shrunk plan as a
//! corpus case, double-runs it to prove byte-identical replay, and exits
//! non-zero.
//!
//! `--exhaustive` switches from seed sweeping to small-model interleaving
//! checking: one plan (`--start-seed` picks the seed), every schedule of
//! its contended deliveries up to `--bound` branch points. The run is
//! single-threaded and fully deterministic — the report (and `--json`
//! output) is byte-identical across reruns and any `--jobs` value. A
//! violating interleaving is pinned to the corpus with its choice trace.

use neutrino_bench::sweep::run_cells_with;
use neutrino_check::corpus::{self, CorpusCase};
use neutrino_check::flowcov::{self, CoverageReport};
use neutrino_check::run::{run_case, CheckReport};
use neutrino_check::scenario::{plan_by_name, CasePlan, Scenario, SMALL_MODEL_NAMES};
use neutrino_check::shrink::shrink;
use neutrino_check::{explore_exhaustive, McheckOptions, ALL_INVARIANTS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scenario: String,
    seeds: u64,
    start_seed: u64,
    jobs: usize,
    shards: usize,
    corpus: Option<PathBuf>,
    shrink_budget: u64,
    replay: Option<PathBuf>,
    list: bool,
    exhaustive: bool,
    flow_coverage: bool,
    bound: usize,
    max_paths: u64,
    json: Option<PathBuf>,
}

const USAGE: &str = "usage: explore [--scenario NAME|all] [--seeds N] [--start-seed S] \
[--jobs J] [--shards S] [--corpus DIR] [--shrink-budget R] [--replay FILE] [--list] \
[--exhaustive] [--flow-coverage] [--bound B] [--max-paths P] [--json FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "all".to_string(),
        seeds: 100,
        start_seed: 0,
        jobs: 0,
        shards: 1,
        corpus: None,
        shrink_budget: 150,
        replay: None,
        list: false,
        exhaustive: false,
        flow_coverage: false,
        bound: McheckOptions::default().bound,
        max_paths: McheckOptions::default().max_paths,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?
            }
            "--start-seed" => {
                args.start_seed = value("--start-seed")?
                    .parse()
                    .map_err(|e| format!("--start-seed: {e}"))?
            }
            "--jobs" => {
                args.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("--shrink-budget: {e}"))?
            }
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--list" => args.list = true,
            "--exhaustive" => args.exhaustive = true,
            "--flow-coverage" => args.flow_coverage = true,
            "--bound" => {
                args.bound = value("--bound")?.parse().map_err(|e| format!("--bound: {e}"))?
            }
            "--max-paths" => {
                args.max_paths = value("--max-paths")?
                    .parse()
                    .map_err(|e| format!("--max-paths: {e}"))?
            }
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn list() {
    println!("scenarios:");
    for s in Scenario::all() {
        println!("  {:<18} {} [{}]", s.name, s.summary, s.system);
    }
    println!("small models (--exhaustive):");
    for name in SMALL_MODEL_NAMES {
        println!("  {name}");
    }
    println!("invariants:");
    for i in ALL_INVARIANTS {
        println!("  {i}");
    }
}

fn print_violations(report: &CheckReport) {
    for v in &report.violations {
        let ue = v.ue.map(|u| format!("ue {u}")).unwrap_or_else(|| "-".into());
        println!(
            "    [{}] t={:.3}ms {}: {}",
            v.invariant,
            v.at_us as f64 / 1e3,
            ue,
            v.detail
        );
    }
    let extra = report.fingerprint.violations - report.violations.len() as u64;
    if extra > 0 {
        println!("    ... and {extra} more violations beyond the record cap");
    }
}

/// Replays a pinned case twice; returns failure when violations appear or
/// the two runs diverge.
fn replay(path: &std::path::Path) -> ExitCode {
    let case = match corpus::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {} (scenario {}, seed {})",
        path.display(),
        case.plan.scenario,
        case.plan.seed
    );
    let first = run_case(&case.plan);
    let second = run_case(&case.plan);
    if first.to_json() != second.to_json() {
        eprintln!("error: replay is not byte-identical — determinism regression");
        return ExitCode::FAILURE;
    }
    println!(
        "  deterministic: yes ({} events, {} oracle passes)",
        first.fingerprint.events_processed, first.passes
    );
    if first.is_clean() {
        println!("  clean: no invariant fired");
        ExitCode::SUCCESS
    } else {
        println!("  FAILED: {} violations", first.fingerprint.violations);
        print_violations(&first);
        ExitCode::FAILURE
    }
}

/// Shrinks the failing plan, pins it, and proves the pin replays
/// byte-identically. Returns the corpus path.
fn pin_failure(plan: &CasePlan, dir: &std::path::Path, budget: u64) -> PathBuf {
    println!("  shrinking seed {} (budget {budget} runs)...", plan.seed);
    let outcome = shrink(plan, budget);
    println!(
        "    shrunk after {} runs: ues {} -> {}, duration {} -> {} ms, \
         {} -> {} crashes, {} -> {} partitions",
        outcome.runs,
        plan.ues,
        outcome.plan.ues,
        plan.duration_ms,
        outcome.plan.duration_ms,
        plan.crashes.len(),
        outcome.plan.crashes.len(),
        plan.partitions.len(),
        outcome.plan.partitions.len(),
    );
    let verify = run_case(&outcome.plan);
    assert_eq!(
        verify.to_json(),
        outcome.report.to_json(),
        "shrunk case must replay byte-identically"
    );
    let case = CorpusCase {
        violation: outcome.report.violations.first().cloned(),
        fingerprint: outcome.report.fingerprint.clone(),
        plan: outcome.plan,
    };
    let path = corpus::save(dir, &case).expect("corpus case writes");
    println!("    pinned {}", path.display());
    print_violations(&outcome.report);
    path
}

/// Machine-readable exhaustive-run summary (`--json`); byte-identical
/// across reruns of the same invocation.
#[derive(serde::Serialize)]
struct ExhaustiveSummary {
    scenario: String,
    seed: u64,
    bound: usize,
    max_paths: u64,
    paths_explored: u64,
    states_deduped: u64,
    max_frontier: u64,
    pruned_independent: u64,
    identity_choice_points: u64,
    truncated: bool,
    violations: u64,
}

/// Runs the small-model exhaustive checker on one named plan.
fn run_exhaustive(args: &Args, corpus_dir: &std::path::Path) -> ExitCode {
    let Some(mut plan) = plan_by_name(&args.scenario, args.start_seed) else {
        eprintln!("error: unknown scenario `{}` (try --list)", args.scenario);
        return ExitCode::FAILURE;
    };
    let opts = McheckOptions {
        bound: args.bound,
        max_paths: args.max_paths,
    };
    println!(
        "exhaustive {} (seed {}, bound {}, max paths {})",
        plan.scenario, plan.seed, opts.bound, opts.max_paths
    );
    let outcome = explore_exhaustive(&plan, &opts);
    let s = &outcome.stats;
    println!(
        "  {} paths explored, {} states deduped, max frontier {}, \
         {} pruned independent, {} identity choice points{}",
        s.paths_explored,
        s.states_deduped,
        s.max_frontier,
        s.pruned_independent,
        s.identity_choice_points,
        if s.truncated { " (TRUNCATED at --max-paths)" } else { "" }
    );
    let summary = ExhaustiveSummary {
        scenario: plan.scenario.clone(),
        seed: plan.seed,
        bound: opts.bound,
        max_paths: opts.max_paths,
        paths_explored: s.paths_explored,
        states_deduped: s.states_deduped,
        max_frontier: s.max_frontier,
        pruned_independent: s.pruned_independent,
        identity_choice_points: s.identity_choice_points,
        truncated: s.truncated,
        violations: outcome
            .violation
            .as_ref()
            .map(|v| v.report.fingerprint.violations)
            .unwrap_or(0),
    };
    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    match outcome.violation {
        None => {
            println!("  clean: no interleaving within the bound fires an invariant");
            ExitCode::SUCCESS
        }
        Some(v) => {
            println!(
                "  FAILED: interleaving {:?} fires {} violations",
                v.trace, v.report.fingerprint.violations
            );
            print_violations(&v.report);
            plan.choice_trace = v.trace;
            pin_failure(&plan, corpus_dir, args.shrink_budget);
            ExitCode::FAILURE
        }
    }
}

/// Sweeps scenario families with a delivery tap installed and diffs the
/// witnessed `(variant, src, dst)` edges against the declared flow
/// registry. Witness sets are unioned, so the report is byte-identical
/// across reruns and any `--jobs` value. Exit is non-zero only on
/// witnessed-but-undeclared edges (spec drift); dead declared edges are
/// advisory.
fn run_flow_coverage(args: &Args, jobs: usize) -> ExitCode {
    let scenarios: Vec<Scenario> = if args.scenario == "all" {
        flowcov::CORE_SCENARIOS
            .iter()
            .map(|n| Scenario::by_name(n).expect("core scenario exists"))
            .collect()
    } else {
        match Scenario::by_name(&args.scenario) {
            Some(s) => vec![s],
            None => {
                eprintln!("error: unknown scenario `{}` (try --list)", args.scenario);
                return ExitCode::FAILURE;
            }
        }
    };
    let names: Vec<String> = scenarios.iter().map(|s| s.name.to_string()).collect();
    println!(
        "flow coverage: {} scenario(s) x {} seed(s), {jobs} job(s)",
        names.len(),
        args.seeds
    );
    let cells = scenarios
        .iter()
        .flat_map(|s| {
            (args.start_seed..args.start_seed + args.seeds).map(|seed| {
                let s = s.clone();
                Box::new(move || flowcov::witness_case(&s, seed))
                    as Box<dyn FnOnce() -> std::collections::BTreeSet<flowcov::Edge> + Send>
            })
        })
        .collect();
    let t0 = std::time::Instant::now();
    let mut witnessed = std::collections::BTreeSet::new();
    for set in run_cells_with(jobs, cells) {
        witnessed.extend(set);
    }
    let report = CoverageReport::diff(names, args.seeds, &witnessed);
    println!(
        "  {} declared, {} witnessed, {} dead declared, {} undeclared witnessed, {:.1}s wall",
        report.declared.len(),
        report.witnessed.len(),
        report.dead_declared.len(),
        report.undeclared_witnessed.len(),
        t0.elapsed().as_secs_f64()
    );
    for e in &report.dead_declared {
        println!("  dead declared (advisory): {} {} -> {}", e.variant, e.src, e.dst);
    }
    for e in &report.undeclared_witnessed {
        println!("  UNDECLARED witnessed: {} {} -> {}", e.variant, e.src, e.dst);
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        println!("  clean: every witnessed edge is declared");
        ExitCode::SUCCESS
    } else {
        println!("  FAILED: witnessed edges missing from the flow registry");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        list();
        return ExitCode::SUCCESS;
    }
    // Engine shard count for every case this process runs (replays too).
    // Reports are byte-identical for any value; the shards-identity CI
    // job pins that by diffing fingerprints across --shards runs.
    neutrino_core::experiment::set_shards(args.shards);
    if let Some(path) = &args.replay {
        return replay(path);
    }
    if args.flow_coverage {
        let jobs = if args.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            args.jobs
        };
        return run_flow_coverage(&args, jobs);
    }
    if args.exhaustive {
        if args.scenario == "all" {
            eprintln!("error: --exhaustive needs a single --scenario (try --list)");
            return ExitCode::FAILURE;
        }
        let corpus_dir = args.corpus.clone().unwrap_or_else(corpus::corpus_dir);
        return run_exhaustive(&args, &corpus_dir);
    }
    let scenarios = if args.scenario == "all" {
        Scenario::all()
    } else {
        match Scenario::by_name(&args.scenario) {
            Some(s) => vec![s],
            None => {
                eprintln!("error: unknown scenario `{}` (try --list)", args.scenario);
                return ExitCode::FAILURE;
            }
        }
    };
    let jobs = if args.jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        args.jobs
    };
    let corpus_dir = args.corpus.clone().unwrap_or_else(corpus::corpus_dir);

    let mut failed = false;
    for scenario in scenarios {
        let plans: Vec<CasePlan> = (args.start_seed..args.start_seed + args.seeds)
            .map(|seed| scenario.plan(seed))
            .collect();
        let cells = plans
            .iter()
            .cloned()
            .map(|plan| {
                Box::new(move || run_case(&plan)) as Box<dyn FnOnce() -> CheckReport + Send>
            })
            .collect();
        let t0 = std::time::Instant::now();
        let reports = run_cells_with(jobs, cells);
        let elapsed = t0.elapsed();
        let events: u64 = reports.iter().map(|r| r.fingerprint.events_processed).sum();
        let failures: Vec<(&CasePlan, &CheckReport)> = plans
            .iter()
            .zip(&reports)
            .filter(|(_, r)| !r.is_clean())
            .collect();
        println!(
            "scenario {:<18} {} seeds, {} events, {:.1}s wall, {} failing",
            scenario.name,
            args.seeds,
            events,
            elapsed.as_secs_f64(),
            failures.len()
        );
        if let Some((plan, report)) = failures.first() {
            failed = true;
            println!(
                "  seed {} FAILED ({} violations):",
                plan.seed, report.fingerprint.violations
            );
            print_violations(report);
            pin_failure(plan, &corpus_dir, args.shrink_budget);
            for (plan, _) in failures.iter().skip(1) {
                println!("  seed {} also failed (not shrunk)", plan.seed);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
