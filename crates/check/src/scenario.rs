//! The scenario DSL: named chaos families that expand, per seed, into
//! fully concrete [`CasePlan`]s.
//!
//! A [`Scenario`] composes a system under test, a traffic profile, and
//! randomization *ranges* for the fault dimensions (link loss/duplication/
//! reorder, timed partitions, CPF crashes). [`Scenario::plan`] draws every
//! concrete value from a splitmix64 chain over the seed, so the same
//! `(scenario, seed)` pair always produces the identical plan — and the
//! plan itself is plain serializable data, so a failing case can be pinned
//! to disk and replayed byte-identically with no reference back to the
//! scenario that generated it.

use neutrino_cta::AdmissionParams;
use serde::{Deserialize, Serialize};

/// One endpoint of a partition window, resolved against the deployment at
/// build time (`kind` is `"cta"` or `"cpf"`, `index` picks within region 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointPlan {
    /// Node class: `"cta"` or `"cpf"`.
    pub kind: String,
    /// Index into region 0's nodes of that class (wrapped by modulo).
    pub index: u64,
}

/// One scheduled CPF crash. Times are relative to the measured-phase start
/// so they stay meaningful when the shrinker shortens the attach phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Milliseconds after the measured phase starts.
    pub at_ms: u64,
    /// Index into region 0's CPF pool (wrapped by modulo).
    pub cpf_index: u64,
}

/// One timed bidirectional partition window (relative to measured start).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Window start, milliseconds after the measured phase starts.
    pub from_ms: u64,
    /// Window end (exclusive), milliseconds after the measured phase starts.
    pub until_ms: u64,
    /// One side of the cut.
    pub a: EndpointPlan,
    /// The other side.
    pub b: EndpointPlan,
}

/// Overload-storm extras of a plan: which storm generator shapes the
/// workload, the CTA admission gate's sizing, and the queue-depth bound
/// the `bounded-queue` invariant enforces. Fields that a shape does not
/// use are zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormPlan {
    /// Storm generator: `"flash-crowd"` or `"iot-burst"`.
    pub shape: String,
    /// CTA admission-gate rate (procedures/second); `0` disables the gate
    /// entirely — the configuration the storm is expected to break.
    pub admission_rate_pps: u64,
    /// Engine-queue depth cap the `bounded-queue` invariant checks against
    /// (derived from the admission sizing, kept even when the gate is
    /// disabled so the violation is observable).
    pub queue_cap: u64,
    /// Flash-crowd: steady-phase length before the blackout (ms).
    pub steady_ms: u64,
    /// Flash-crowd: outage-detection lag before the herd re-attaches (ms).
    pub surge_delay_ms: u64,
    /// Flash-crowd: the herd's aggregate re-attach rate (pps).
    pub surge_rate_pps: u64,
    /// Flash-crowd: steady traffic after the surge drains (ms).
    pub tail_ms: u64,
    /// IoT-burst: synchronized pulses after the attach pulse.
    pub pulses: u64,
    /// IoT-burst: pulse period (ms).
    pub period_ms: u64,
    /// IoT-burst: window each pulse packs the fleet into (ms).
    pub window_ms: u64,
}

/// One explicitly scheduled procedure start in a small-model plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalPlan {
    /// Microseconds after the origin (small-model runs have no attach
    /// phase; the measured clock starts at zero).
    pub at_us: u64,
    /// UE index.
    pub ue: u64,
    /// Procedure kind name (see
    /// [`ProcedureKind::name`](neutrino_messages::procedures::ProcedureKind::name)).
    pub kind: String,
}

/// Small-model override for exhaustive interleaving checking: a tiny
/// fixed topology plus a hand-pinned arrival schedule that replaces the
/// rate-based workload entirely. Arrivals are pinned to shared ticks on
/// purpose — simultaneous deliveries are exactly what the checker
/// enumerates, and a rate-based workload would leave tie formation to
/// chance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmallModelPlan {
    /// CPFs per region (layout override; the default deployment has 5).
    pub cpfs_per_region: u64,
    /// Base stations per region.
    pub bss_per_region: u64,
    /// UPFs per region.
    pub upfs_per_region: u64,
    /// The explicit arrival schedule.
    pub arrivals: Vec<ArrivalPlan>,
}

/// A fully concrete, self-contained chaos schedule: everything one checked
/// run needs. Probabilities are parts-per-million integers so the JSON
/// form is byte-stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CasePlan {
    /// The scenario family this plan came from (informational).
    pub scenario: String,
    /// The seed it was drawn with; also the link-layer fault/jitter seed.
    pub seed: u64,
    /// System under test (a [`SystemConfig`](neutrino_core::SystemConfig)
    /// constructor name, e.g. `"neutrino"` or `"existing_epc"`).
    pub system: String,
    /// Procedure kind driven during the measured phase
    /// ([`ProcedureKind::name`](neutrino_messages::procedures::ProcedureKind::name)).
    pub kind: String,
    /// Measured-phase arrival rate (procedures/second).
    pub rate_pps: u64,
    /// UE pool size (attached before the measured phase).
    pub ues: u64,
    /// Measured-phase duration in milliseconds.
    pub duration_ms: u64,
    /// Drain margin after the measured phase (stragglers and retries).
    pub drain_ms: u64,
    /// Oracle pass interval in milliseconds.
    pub check_interval_ms: u64,
    /// Per-link loss probability, parts per million.
    pub loss_ppm: u64,
    /// Per-link duplication probability, parts per million.
    pub duplicate_ppm: u64,
    /// Per-link reorder probability, parts per million.
    pub reorder_ppm: u64,
    /// Reorder hold-back window, microseconds.
    pub reorder_window_us: u64,
    /// Per-hop jitter bound, microseconds.
    pub jitter_us: u64,
    /// Scheduled CPF crashes.
    pub crashes: Vec<CrashPlan>,
    /// Timed partition windows.
    pub partitions: Vec<PartitionPlan>,
    /// Invariants to check, by catalog name (see `oracle::ALL_INVARIANTS`).
    pub invariants: Vec<String>,
    /// Overload-storm extras; `None` (the default, so pinned pre-storm
    /// corpus cases still parse) means the uniform workload.
    #[serde(default)]
    pub storm: Option<StormPlan>,
    /// Interleaving replay script from the small-model checker: at the
    /// k-th *contended* delivery choice point, dispatch the
    /// `choice_trace[k]`-th enabled delivery; identity (lowest sequence)
    /// beyond the end of the trace. A non-empty trace forces the
    /// sequential engine (`shards = 1`). Pre-mcheck corpus files omit the
    /// field; parsing treats the omission as empty.
    #[serde(default)]
    pub choice_trace: Vec<u32>,
    /// Small-model topology/workload override (exhaustive checking);
    /// `None` means the rate-based workload on the default deployment.
    #[serde(default)]
    pub small_model: Option<SmallModelPlan>,
}

/// A stateless splitmix64 stream — the same generator family the link
/// fault layer uses, so plans and fault draws share one reproducibility
/// story.
pub struct SplitMix(u64);

impl SplitMix {
    /// Starts a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Inclusive randomization range.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Lower bound.
    pub lo: u64,
    /// Upper bound (inclusive).
    pub hi: u64,
}

const fn span(lo: u64, hi: u64) -> Span {
    Span { lo, hi }
}

/// A named chaos family: the ranges every per-seed draw comes from.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (the explorer's `--scenario` argument).
    pub name: &'static str,
    /// What the family stresses (shown by `explore --list`).
    pub summary: &'static str,
    /// System under test (config constructor name).
    pub system: &'static str,
    /// Measured-phase procedure kind.
    pub kind: &'static str,
    /// Arrival rate range (pps).
    pub rate_pps: Span,
    /// UE pool range.
    pub ues: Span,
    /// Measured duration range (ms).
    pub duration_ms: Span,
    /// Loss probability range (ppm).
    pub loss_ppm: Span,
    /// Duplication probability range (ppm).
    pub duplicate_ppm: Span,
    /// Reorder probability range (ppm).
    pub reorder_ppm: Span,
    /// Jitter bound range (µs).
    pub jitter_us: Span,
    /// CPF crash count range.
    pub crashes: Span,
    /// Partition window count range.
    pub partitions: Span,
    /// Invariants checked (catalog names).
    pub invariants: &'static [&'static str],
    /// Overload-storm dimensions (`None` for uniform-workload families).
    pub storm: Option<StormSpec>,
}

/// Randomization ranges of a storm family's overload dimensions.
#[derive(Debug, Clone, Copy)]
pub struct StormSpec {
    /// Storm generator: `"flash-crowd"` or `"iot-burst"`.
    pub shape: &'static str,
    /// CTA admission-gate rate range (pps). Always nonzero here — the
    /// registered storm families must sweep clean; tests disable the gate
    /// by zeroing the planned rate to demonstrate the violation.
    pub admission_rate_pps: Span,
    /// Flash-crowd: herd rate = steady `rate_pps` × this multiplier.
    pub surge_mult: Span,
    /// IoT-burst: pulse count range.
    pub pulses: Span,
    /// IoT-burst: pulse period range (ms).
    pub period_ms: Span,
    /// IoT-burst: pulse window range (ms).
    pub window_ms: Span,
}

/// Invariant set for systems that guarantee continuous consistency.
const NEUTRINO_INVARIANTS: &[&str] = &[
    "consistency",
    "no-lost-procedure",
    "bounded-stall",
    "session-ownership",
    "bounded-retry",
    "monotonic-checkpoint",
];

/// Invariant set for re-attach baselines: everything except continuous
/// consistency (which they violate by design after a failure).
const BASELINE_INVARIANTS: &[&str] = &[
    "no-lost-procedure",
    "bounded-stall",
    "session-ownership",
    "bounded-retry",
    "monotonic-checkpoint",
];

/// Invariant set for the overload-storm families. `bounded-retry` is
/// replaced by `no-retry-amplification`: under admission control the UE
/// population *deliberately* retransmits after every `Reject`, so the
/// drop-proportional retry budget does not apply — the amplification bound
/// (at most one re-offer per reject) does.
const STORM_INVARIANTS: &[&str] = &[
    "consistency",
    "no-lost-procedure",
    "bounded-stall",
    "session-ownership",
    "monotonic-checkpoint",
    "bounded-queue",
    "shed-priority-order",
    "no-retry-amplification",
];

impl Scenario {
    /// Every built-in scenario.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "failover",
                summary: "Neutrino CPF crash mid-run under light link faults",
                system: "neutrino",
                kind: "service-request",
                rate_pps: span(8_000, 24_000),
                ues: span(1_500, 3_000),
                duration_ms: span(200, 400),
                loss_ppm: span(0, 15_000),
                duplicate_ppm: span(0, 8_000),
                reorder_ppm: span(0, 25_000),
                jitter_us: span(0, 20),
                crashes: span(1, 1),
                partitions: span(0, 0),
                invariants: NEUTRINO_INVARIANTS,
                storm: None,
            },
            Scenario {
                name: "partition",
                summary: "timed CTA–CPF / CPF–CPF partitions, no crash",
                system: "neutrino",
                kind: "service-request",
                rate_pps: span(8_000, 20_000),
                ues: span(1_500, 2_500),
                duration_ms: span(250, 450),
                loss_ppm: span(0, 10_000),
                duplicate_ppm: span(0, 5_000),
                reorder_ppm: span(0, 15_000),
                jitter_us: span(0, 20),
                crashes: span(0, 0),
                partitions: span(1, 2),
                invariants: NEUTRINO_INVARIANTS,
                storm: None,
            },
            Scenario {
                name: "chaos",
                summary: "crash + partitions + heavy loss/dup/reorder at once",
                system: "neutrino",
                kind: "service-request",
                rate_pps: span(6_000, 18_000),
                ues: span(1_200, 2_400),
                duration_ms: span(250, 500),
                loss_ppm: span(5_000, 50_000),
                duplicate_ppm: span(0, 20_000),
                reorder_ppm: span(5_000, 60_000),
                jitter_us: span(0, 40),
                crashes: span(0, 2),
                partitions: span(0, 2),
                invariants: NEUTRINO_INVARIANTS,
                storm: None,
            },
            Scenario {
                name: "handover-failover",
                summary: "CPF crash while handovers migrate state",
                system: "neutrino",
                kind: "handover-cpf-change",
                rate_pps: span(8_000, 20_000),
                ues: span(1_500, 2_500),
                duration_ms: span(200, 400),
                loss_ppm: span(0, 15_000),
                duplicate_ppm: span(0, 8_000),
                reorder_ppm: span(0, 25_000),
                jitter_us: span(0, 20),
                crashes: span(1, 1),
                partitions: span(0, 0),
                invariants: NEUTRINO_INVARIANTS,
                storm: None,
            },
            Scenario {
                name: "epc-reattach",
                summary: "existing-EPC crash recovery by re-attach (liveness only)",
                system: "existing_epc",
                kind: "service-request",
                rate_pps: span(6_000, 16_000),
                ues: span(1_200, 2_400),
                duration_ms: span(200, 400),
                loss_ppm: span(0, 10_000),
                duplicate_ppm: span(0, 5_000),
                reorder_ppm: span(0, 15_000),
                jitter_us: span(0, 20),
                crashes: span(1, 1),
                partitions: span(0, 0),
                invariants: BASELINE_INVARIANTS,
                storm: None,
            },
            Scenario {
                name: "flash-crowd-reattach",
                summary: "regional blackout, then the whole population re-attaches at once",
                system: "neutrino",
                kind: "service-request",
                rate_pps: span(400, 800),
                ues: span(6_000, 10_000),
                duration_ms: span(1_000, 2_000),
                loss_ppm: span(0, 5_000),
                duplicate_ppm: span(0, 3_000),
                reorder_ppm: span(0, 10_000),
                jitter_us: span(0, 20),
                crashes: span(1, 2),
                partitions: span(0, 0),
                invariants: STORM_INVARIANTS,
                storm: Some(StormSpec {
                    shape: "flash-crowd",
                    admission_rate_pps: span(2_500, 4_000),
                    surge_mult: span(300, 500),
                    pulses: span(0, 0),
                    period_ms: span(0, 0),
                    window_ms: span(0, 0),
                }),
            },
            Scenario {
                name: "iot-burst-storm",
                summary: "IoT fleet wakes in synchronized diurnal pulses",
                system: "neutrino",
                kind: "tracking-area-update",
                rate_pps: span(1_000, 1_000),
                ues: span(2_000, 4_000),
                duration_ms: span(6_000, 12_000),
                loss_ppm: span(0, 5_000),
                duplicate_ppm: span(0, 3_000),
                reorder_ppm: span(0, 10_000),
                jitter_us: span(0, 20),
                crashes: span(0, 0),
                partitions: span(0, 0),
                invariants: STORM_INVARIANTS,
                storm: Some(StormSpec {
                    shape: "iot-burst",
                    admission_rate_pps: span(1_500, 3_000),
                    surge_mult: span(0, 0),
                    pulses: span(2, 3),
                    period_ms: span(3_000, 5_000),
                    window_ms: span(50, 150),
                }),
            },
        ]
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// Expands this family into the concrete plan for `seed`. Pure: the
    /// same `(scenario, seed)` always yields the identical plan.
    pub fn plan(&self, seed: u64) -> CasePlan {
        // Salt the stream with the scenario name so two scenarios sharing a
        // seed do not share their draw sequence.
        let salt = self
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
        let mut rng = SplitMix::new(seed ^ salt);
        let duration_ms = rng.range(self.duration_ms.lo, self.duration_ms.hi);
        let crashes = (0..rng.range(self.crashes.lo, self.crashes.hi))
            .map(|_| CrashPlan {
                // Land well inside the measured window so traffic is
                // flowing both before and after the crash.
                at_ms: rng.range(20, duration_ms.saturating_sub(40).max(21)),
                cpf_index: rng.range(0, 4),
            })
            .collect();
        let partitions = (0..rng.range(self.partitions.lo, self.partitions.hi))
            .map(|_| {
                let from_ms = rng.range(10, duration_ms.saturating_sub(80).max(11));
                let len_ms = rng.range(20, 80);
                // Cut either the CTA↔CPF hop or a CPF↔CPF pair; never the
                // UE side, so the retry machinery always keeps cycling.
                let (a, b) = if rng.range(0, 1) == 0 {
                    (
                        EndpointPlan { kind: "cta".into(), index: 0 },
                        EndpointPlan { kind: "cpf".into(), index: rng.range(0, 4) },
                    )
                } else {
                    let x = rng.range(0, 4);
                    (
                        EndpointPlan { kind: "cpf".into(), index: x },
                        EndpointPlan { kind: "cpf".into(), index: (x + 1 + rng.range(0, 3)) % 5 },
                    )
                };
                PartitionPlan {
                    from_ms,
                    until_ms: (from_ms + len_ms).min(duration_ms),
                    a,
                    b,
                }
            })
            .collect();
        // Field draws stay in this exact order: reordering them would
        // silently change every existing (scenario, seed) plan.
        let rate_pps = rng.range(self.rate_pps.lo, self.rate_pps.hi);
        let ues = rng.range(self.ues.lo, self.ues.hi);
        let loss_ppm = rng.range(self.loss_ppm.lo, self.loss_ppm.hi);
        let duplicate_ppm = rng.range(self.duplicate_ppm.lo, self.duplicate_ppm.hi);
        let reorder_ppm = rng.range(self.reorder_ppm.lo, self.reorder_ppm.hi);
        let reorder_window_us = rng.range(100, 400);
        let jitter_us = rng.range(self.jitter_us.lo, self.jitter_us.hi);
        // Storm draws come after every pre-existing draw, so non-storm
        // scenarios (which skip this block) keep their historic plans.
        let mut crashes: Vec<CrashPlan> = crashes;
        let storm = self.storm.map(|sp| {
            let admission_rate_pps = rng.range(sp.admission_rate_pps.lo, sp.admission_rate_pps.hi);
            let plan = StormPlan {
                shape: sp.shape.to_string(),
                admission_rate_pps,
                queue_cap: AdmissionParams::for_rate(admission_rate_pps).queue_cap,
                steady_ms: duration_ms,
                surge_delay_ms: rng.range(200, 500),
                surge_rate_pps: rate_pps * rng.range(sp.surge_mult.lo.max(1), sp.surge_mult.hi.max(1)),
                tail_ms: 1_000,
                pulses: rng.range(sp.pulses.lo, sp.pulses.hi),
                period_ms: rng.range(sp.period_ms.lo, sp.period_ms.hi),
                window_ms: rng.range(sp.window_ms.lo, sp.window_ms.hi),
            };
            if sp.shape == "flash-crowd" {
                // The blackout IS the regional failure: every scheduled
                // crash lands exactly when the steady phase ends.
                for c in &mut crashes {
                    c.at_ms = plan.steady_ms;
                }
            }
            plan
        });
        CasePlan {
            scenario: self.name.to_string(),
            seed,
            system: self.system.to_string(),
            kind: self.kind.to_string(),
            rate_pps,
            ues,
            duration_ms,
            drain_ms: 10_000,
            check_interval_ms: 25,
            loss_ppm,
            duplicate_ppm,
            reorder_ppm,
            reorder_window_us,
            jitter_us,
            crashes,
            partitions,
            invariants: self.invariants.iter().map(|s| s.to_string()).collect(),
            storm,
            choice_trace: Vec::new(),
            small_model: None,
        }
    }
}

/// Baseline plan for the small-model registry: every fault dimension off,
/// every field explicit so the configs below only state what they change.
fn small_model_base(name: &str, seed: u64) -> CasePlan {
    CasePlan {
        scenario: name.to_string(),
        seed,
        system: "neutrino".to_string(),
        kind: "initial-attach".to_string(),
        rate_pps: 0,
        ues: 2,
        duration_ms: 3,
        drain_ms: 20,
        check_interval_ms: 1,
        loss_ppm: 0,
        duplicate_ppm: 0,
        reorder_ppm: 0,
        reorder_window_us: 0,
        jitter_us: 0,
        crashes: Vec::new(),
        partitions: Vec::new(),
        invariants: NEUTRINO_INVARIANTS.iter().map(|s| s.to_string()).collect(),
        storm: None,
        choice_trace: Vec::new(),
        small_model: None,
    }
}

/// Named small-model configurations for the exhaustive interleaving
/// checker. These are separate from [`Scenario::all`]: a scenario is a
/// randomization *family*, while a small-model config is one hand-built
/// cluster state whose contended deliveries the checker enumerates — the
/// seed only salts link-layer draws (which the healthy configs do not
/// use), so the plans here are essentially seed-independent.
pub fn small_model_plan(name: &str, seed: u64) -> Option<CasePlan> {
    match name {
        // Two UEs attach on the same tick, CPF 0 crashes, then both issue
        // same-tick service requests that ride the failover path. Every
        // attach step yields same-destination delivery ties at the CTA,
        // the UE population, and the CPF, so the contended-delivery tree
        // is deep enough to exceed 1,000 interleavings by bound 12 while
        // each path still runs in milliseconds.
        "mcheck-attach-failover" => {
            let mut plan = small_model_base(name, seed);
            plan.crashes = vec![CrashPlan { at_ms: 1, cpf_index: 0 }];
            plan.small_model = Some(SmallModelPlan {
                cpfs_per_region: 2,
                bss_per_region: 1,
                upfs_per_region: 1,
                arrivals: vec![
                    ArrivalPlan { at_us: 10, ue: 0, kind: "initial-attach".into() },
                    ArrivalPlan { at_us: 10, ue: 1, kind: "initial-attach".into() },
                    ArrivalPlan { at_us: 2_000, ue: 0, kind: "service-request".into() },
                    ArrivalPlan { at_us: 2_000, ue: 1, kind: "service-request".into() },
                ],
            });
            Some(plan)
        }
        // Rate-based two-UE run under heavy loss with a mid-run CPF
        // crash: the regression model for the PR 4 `replay_floor` fix.
        // Loss makes fault draws depend on dispatch order, so the checker
        // runs this config with partial-order reduction and state
        // deduplication off (every branch is a genuinely different run).
        "mcheck-replay-floor" => {
            let mut plan = small_model_base(name, seed);
            plan.kind = "service-request".to_string();
            plan.rate_pps = 50;
            plan.duration_ms = 3_000;
            plan.drain_ms = 12_000;
            plan.loss_ppm = 200_000;
            plan.crashes = vec![CrashPlan { at_ms: 1_800, cpf_index: 0 }];
            plan.invariants = vec!["consistency".to_string()];
            Some(plan)
        }
        _ => None,
    }
}

/// Names registered in [`small_model_plan`], for `explore --list`.
pub const SMALL_MODEL_NAMES: &[&str] = &["mcheck-attach-failover", "mcheck-replay-floor"];

/// Resolves a plan by name: small-model registry first, then the scenario
/// families.
pub fn plan_by_name(name: &str, seed: u64) -> Option<CasePlan> {
    small_model_plan(name, seed).or_else(|| Scenario::by_name(name).map(|s| s.plan(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let s = Scenario::by_name("failover").unwrap();
        assert_eq!(s.plan(7), s.plan(7));
        assert_ne!(s.plan(7), s.plan(8));
    }

    #[test]
    fn scenario_names_are_unique_and_resolvable() {
        let all = Scenario::all();
        for s in &all {
            assert_eq!(Scenario::by_name(s.name).unwrap().name, s.name);
        }
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn plans_round_trip_through_json() {
        for s in Scenario::all() {
            let plan = s.plan(42);
            let json = serde_json::to_string_pretty(&plan).unwrap();
            let back: CasePlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn pre_mcheck_json_without_new_fields_still_parses() {
        // A corpus file pinned before `choice_trace`/`small_model` existed
        // omits both keys; parsing must fill in the defaults.
        let plan = Scenario::by_name("failover").unwrap().plan(3);
        let json = serde_json::to_string_pretty(&plan)
            .unwrap()
            .replace(",\n  \"choice_trace\": []", "")
            .replace(",\n  \"small_model\": null", "");
        assert!(!json.contains("choice_trace"), "test setup: key not stripped");
        let back: CasePlan = serde_json::from_str(&json).unwrap();
        assert!(back.choice_trace.is_empty());
        assert!(back.small_model.is_none());
        assert_eq!(back, plan);
    }

    #[test]
    fn small_model_registry_resolves_and_round_trips() {
        for name in SMALL_MODEL_NAMES {
            let plan = plan_by_name(name, 0).unwrap();
            assert_eq!(&plan.scenario, name);
            let json = serde_json::to_string_pretty(&plan).unwrap();
            let back: CasePlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plan);
        }
        assert!(small_model_plan("failover", 0).is_none());
        assert!(plan_by_name("failover", 0).is_some());
    }

    #[test]
    fn draws_land_in_their_spans() {
        let s = Scenario::by_name("chaos").unwrap();
        for seed in 0..50 {
            let p = s.plan(seed);
            assert!(p.rate_pps >= s.rate_pps.lo && p.rate_pps <= s.rate_pps.hi);
            assert!(p.ues >= s.ues.lo && p.ues <= s.ues.hi);
            assert!(p.duration_ms >= s.duration_ms.lo && p.duration_ms <= s.duration_ms.hi);
            assert!(p.crashes.len() as u64 <= s.crashes.hi);
            assert!(p.partitions.len() as u64 <= s.partitions.hi);
            for w in &p.partitions {
                assert!(w.from_ms < w.until_ms);
                assert!(w.until_ms <= p.duration_ms);
            }
        }
    }
}
