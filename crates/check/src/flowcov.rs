//! Static-vs-dynamic protocol-flow coverage (`explore --flow-coverage`).
//!
//! The flow registry ([`neutrino_messages::flow::FLOWS`]) declares which
//! `(variant, src role, dst role)` edges the protocol may use, and
//! `neutrino-lint`'s flow pass proves the *code* agrees with it. This
//! module closes the loop dynamically: it runs scenario plans on the
//! sequential engine with a delivery tap installed, records every edge the
//! simulator actually carries, and diffs witnessed against declared:
//!
//! * **witnessed-but-undeclared** edges are spec drift — the running
//!   system uses a flow the registry does not admit. Fatal (the nightly
//!   `flow-coverage` job fails on any).
//! * **declared-but-never-witnessed** edges are dead paths — either an
//!   unreachable declaration or a scenario-coverage gap. Advisory.
//!
//! Witness sets are unions, so the merged result is independent of the
//! order cells complete in: the report is byte-identical across reruns and
//! any `--jobs` value.

use crate::run::run_case_witnessed;
use crate::scenario::Scenario;
use neutrino_core::SimMsg;
use neutrino_messages::flow::{self, Role, FLOWS};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One `(variant, src role, dst role)` edge in canonical string form.
pub type Edge = (String, String, String);

/// The scenario families the nightly coverage job sweeps: every
/// deterministic non-storm family. The storm families exercise the same
/// flows at higher volume and add no new edges, so they stay out of the
/// sweep budget.
pub const CORE_SCENARIOS: &[&str] =
    &["failover", "partition", "chaos", "handover-failover", "epc-reattach"];

/// The declared edge set, in canonical form.
pub fn declared_edges() -> BTreeSet<Edge> {
    FLOWS
        .iter()
        .flat_map(|spec| {
            spec.edges.iter().map(move |(s, d)| {
                (spec.variant.to_string(), s.name().to_string(), d.name().to_string())
            })
        })
        .collect()
}

/// Runs `scenario` at `seed` on the sequential engine with a delivery tap
/// installed and returns the witnessed edge set. Non-protocol messages
/// (the arrival-pump `Kick`) and nodes outside the role bands are ignored
/// rather than invented.
pub fn witness_case(scenario: &Scenario, seed: u64) -> BTreeSet<Edge> {
    let seen: Arc<Mutex<BTreeSet<Edge>>> = Arc::default();
    let sink = Arc::clone(&seen);
    run_case_witnessed(
        &scenario.plan(seed),
        Box::new(move |from, to, msg| {
            let SimMsg::Sys(sys) = msg else { return };
            let (Some(src), Some(dst)) =
                (Role::of_node_raw(from.raw()), Role::of_node_raw(to.raw()))
            else {
                return;
            };
            sink.lock().expect("tap lock").insert((
                flow::variant_name(sys).to_string(),
                src.name().to_string(),
                dst.name().to_string(),
            ));
        }),
    );
    Arc::try_unwrap(seen)
        .expect("tap dropped with the sim")
        .into_inner()
        .expect("tap lock")
}

/// One edge in the JSON report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EdgeRecord {
    /// `SysMsg` variant name.
    pub variant: String,
    /// Sending role.
    pub src: String,
    /// Receiving role.
    pub dst: String,
}

fn records(set: &BTreeSet<Edge>) -> Vec<EdgeRecord> {
    set.iter()
        .map(|(v, s, d)| EdgeRecord { variant: v.clone(), src: s.clone(), dst: d.clone() })
        .collect()
}

/// The coverage diff (`explore --flow-coverage --json`). Every list is
/// sorted; serialization is byte-stable.
#[derive(Debug, serde::Serialize)]
pub struct CoverageReport {
    /// Scenario families swept.
    pub scenarios: Vec<String>,
    /// Seeds per family.
    pub seeds: u64,
    /// Edges declared in the flow registry.
    pub declared: Vec<EdgeRecord>,
    /// Edges witnessed at least once.
    pub witnessed: Vec<EdgeRecord>,
    /// Declared but never witnessed — dead paths (advisory).
    pub dead_declared: Vec<EdgeRecord>,
    /// Witnessed but not declared — spec drift (fatal).
    pub undeclared_witnessed: Vec<EdgeRecord>,
}

impl CoverageReport {
    /// Diffs a merged witnessed set against the registry.
    pub fn diff(scenarios: Vec<String>, seeds: u64, witnessed: &BTreeSet<Edge>) -> CoverageReport {
        let declared = declared_edges();
        CoverageReport {
            scenarios,
            seeds,
            dead_declared: records(&declared.difference(witnessed).cloned().collect()),
            undeclared_witnessed: records(&witnessed.difference(&declared).cloned().collect()),
            declared: records(&declared),
            witnessed: records(witnessed),
        }
    }

    /// True when no witnessed edge falls outside the registry.
    pub fn is_clean(&self) -> bool {
        self.undeclared_witnessed.is_empty()
    }

    /// Deterministic pretty JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_set_matches_registry_size() {
        let edges = declared_edges();
        let total: usize = FLOWS.iter().map(|s| s.edges.len()).sum();
        assert_eq!(edges.len(), total, "registry edges must be distinct");
    }

    #[test]
    fn witnessed_subset_is_clean_and_missing_edges_are_dead() {
        let mut witnessed = declared_edges();
        let dropped = witnessed.pop_first().expect("non-empty registry");
        let report =
            CoverageReport::diff(vec!["unit".into()], 1, &witnessed);
        assert!(report.is_clean());
        assert_eq!(report.dead_declared.len(), 1);
        assert_eq!(report.dead_declared[0].variant, dropped.0);
    }

    #[test]
    fn undeclared_edge_is_fatal() {
        let mut witnessed = BTreeSet::new();
        witnessed.insert(("Control".to_string(), "upf".to_string(), "cta".to_string()));
        let report = CoverageReport::diff(vec!["unit".into()], 1, &witnessed);
        assert!(!report.is_clean());
        assert_eq!(report.undeclared_witnessed.len(), 1);
    }

    #[test]
    fn report_json_is_byte_stable() {
        let witnessed = declared_edges();
        let a = CoverageReport::diff(vec!["x".into()], 3, &witnessed).to_json();
        let b = CoverageReport::diff(vec!["x".into()], 3, &witnessed).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn one_small_case_witnesses_only_declared_edges() {
        // The cheapest real run: a small-model plan carries real traffic
        // through every node band; whatever it witnesses must be declared.
        let scenario = Scenario::by_name("failover").expect("failover exists");
        let witnessed = witness_case(&scenario, 0);
        assert!(!witnessed.is_empty(), "a failover run delivers messages");
        let report = CoverageReport::diff(vec!["failover".into()], 1, &witnessed);
        assert!(
            report.is_clean(),
            "undeclared edges witnessed: {:?}",
            report.undeclared_witnessed
        );
    }
}
