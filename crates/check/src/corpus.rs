//! Pinned regression cases.
//!
//! When the explorer finds a violation, it shrinks the plan and writes a
//! [`CorpusCase`] into `crates/check/corpus/`. The contract for files in
//! that directory: on a **healthy** tree every case replays *clean* and
//! *byte-identically* (same [`Fingerprint`] on every run) — the recorded
//! `violation` documents what the case caught when it was pinned, on the
//! then-broken tree. The corpus test replays every pinned case; the
//! `explore --replay FILE` flag replays one interactively.

use crate::run::{Fingerprint, ViolationRecord};
use crate::scenario::CasePlan;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One pinned regression case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusCase {
    /// The (shrunk) plan that reproduced the violation.
    pub plan: CasePlan,
    /// The first violation observed when the case was pinned — what the
    /// then-broken build did, kept for the human reading the file.
    pub violation: Option<ViolationRecord>,
    /// The broken build's fingerprint at pin time (documentation; a fixed
    /// tree produces a different one).
    pub fingerprint: Fingerprint,
}

/// The in-tree corpus directory (`crates/check/corpus/`).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Canonical file name for a case.
pub fn case_filename(plan: &CasePlan) -> String {
    format!("{}-seed{}.json", plan.scenario, plan.seed)
}

/// Writes a case into `dir`; returns the path written.
pub fn save(dir: &Path, case: &CorpusCase) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(case_filename(&case.plan));
    let json = serde_json::to_string_pretty(case).expect("case serializes");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Loads one case file.
pub fn load(path: &Path) -> Result<CorpusCase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads every `.json` case in `dir`, sorted by file name (deterministic
/// replay order). A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load(&p).map(|c| (p, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Fingerprint;
    use crate::scenario::Scenario;

    #[test]
    fn save_load_round_trips() {
        let case = CorpusCase {
            plan: Scenario::by_name("failover").unwrap().plan(99),
            violation: Some(ViolationRecord {
                invariant: "consistency".into(),
                at_us: 123_456,
                ue: Some(7),
                detail: "no live copy; CTA expects procedure 3".into(),
            }),
            fingerprint: Fingerprint {
                violations: 1,
                ..Fingerprint::default()
            },
        };
        let dir = std::env::temp_dir().join(format!(
            "neutrino-check-corpus-{}",
            std::process::id()
        ));
        let path = save(&dir, &case).unwrap();
        assert_eq!(path.file_name().unwrap(), "failover-seed99.json");
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, case);
        let all = load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, case);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = std::env::temp_dir().join("neutrino-check-no-such-dir");
        assert!(load_dir(&dir).unwrap().is_empty());
    }
}
