//! Small-model exhaustive interleaving checking (stateless-search DPOR).
//!
//! The netsim engine is deterministic: one seed fixes the entire event
//! stream. That buys replayability, but it also means a seed sweep only
//! ever sees *one* dispatch order per seed — same-tick deliveries always
//! land in `(at, seq)` order, and a race the protocol loses only under a
//! different service order stays invisible. This module enumerates those
//! orders for *small models*: hand-built clusters (two CPFs, two UEs, one
//! crash) whose simultaneously enabled deliveries form a tree shallow
//! enough to walk completely.
//!
//! The search is stateless in the jbsimsa/Shuttle style: the engine is
//! never forked. Each path re-runs the plan from the root through
//! [`run_case_with`] with a script chooser; at every choice point (≥ 2
//! deliveries enabled at one tick) the script says which enabled delivery
//! to dispatch, and past the script's end the identity choice (lowest
//! sequence number — the sequential engine's order) finishes the run.
//! Re-running from the root costs `O(depth)` per path, but small-model
//! runs are milliseconds and the approach needs no engine snapshotting —
//! determinism *is* the snapshot.
//!
//! Three prunes keep the tree honest without losing soundness of what is
//! reported (every explored path is a real, replayable run — a violation
//! found here is a violation, full stop; the prunes only risk *missing*
//! paths, and each one's assumption is stated where it is applied):
//!
//! * **per-stream FIFO** — two enabled deliveries on the same (source,
//!   destination, UE) stream never reorder: links are FIFO per stream, so
//!   only stream *heads* are schedulable candidates.
//! * **independence** — a candidate whose destination node differs from
//!   every earlier candidate's destination is not branched to: deliveries
//!   to different nodes touch disjoint state and commute, so some explored
//!   schedule already covers that order. Crash/recover barriers at the
//!   same tick void the assumption, so choice points that jump across a
//!   staged non-delivery event (`barrier` in [`ChoiceCtx`]) branch fully.
//! * **state deduplication** — the engine's order-canonical per-node
//!   dispatch-history hash ([`choice_state_hash`]
//!   (neutrino_netsim::Sim::choice_state_hash)) identifies states already
//!   expanded at the same or shallower depth. The hash is approximate
//!   (bitstate hashing): a collision can hide a path, never invent a
//!   violation.
//!
//! Fault-ful plans (loss/duplication/reorder/jitter) disable the latter
//! two prunes: fault draws are salted by per-link send sequence, so
//! dispatch order feeds back into *which messages exist* — neither the
//! commutativity argument nor the state hash's "same history ⇒ same
//! future" premise holds. Such plans still explore, just without
//! reduction.

use crate::run::{run_case_with, CheckReport};
use crate::scenario::CasePlan;
use neutrino_core::SimMsg;
use neutrino_messages::SysMsg;
use neutrino_netsim::{ChoiceCtx, Chooser, Enabled, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Replays a pinned choice trace: the k-th consultation dispatches the
/// `script[k]`-th enabled delivery; identity (index 0) past the end.
///
/// Picks are clamped into range rather than panicking: a shrunk plan can
/// reach a choice point with fewer enabled deliveries than the original
/// run had, and the shrinker's replay check — not the chooser — decides
/// whether the result still fails.
pub struct ScriptChooser<'a> {
    script: &'a [u32],
    pos: usize,
}

impl<'a> ScriptChooser<'a> {
    /// A chooser that follows `script`, then identity.
    pub fn new(script: &'a [u32]) -> Self {
        ScriptChooser { script, pos: 0 }
    }
}

impl<M> Chooser<M> for ScriptChooser<'_> {
    fn choose(&mut self, _ctx: &ChoiceCtx, enabled: &[Enabled<'_, M>]) -> usize {
        let pick = self.script.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        pick.min(enabled.len() - 1)
    }
}

/// One schedulable candidate at a choice point: the head of one delivery
/// stream.
#[derive(Debug, Clone)]
struct CandidateRec {
    /// Index into the engine's enabled array (what a script entry means).
    idx: u32,
    /// Destination node — the independence rule's commutativity key.
    to: NodeId,
}

/// The record of one chooser consultation along a path.
#[derive(Debug)]
struct ChoicePointRec {
    /// The enabled index actually dispatched.
    chosen: u32,
    /// Stream-head candidates, in enabled (ascending-seq) order.
    candidates: Vec<CandidateRec>,
    /// True when the enabled set jumped across a staged non-delivery
    /// event (crash/recover/timer at the same tick) — commutativity does
    /// not hold across it, so independence pruning is off here.
    barrier: bool,
    /// Engine state hash *before* this dispatch (deduplication key).
    state_hash: u64,
}

/// FIFO stream identity of an enabled delivery. Control-plane messages
/// for different UEs share physical links but are logically independent
/// flows — the upstream arrival race between two UEs' messages on one
/// BS→CTA link is exactly the kind of reordering the checker must
/// explore. Messages of the *same* UE on one link stay FIFO (in-order
/// transport), as does every non-control stream.
fn stream_key(e: &Enabled<'_, SimMsg>) -> (u64, u64, u64, u64) {
    match e.msg {
        SimMsg::Sys(SysMsg::Control(env)) => (e.from.raw(), e.to.raw(), 1, env.ue.raw()),
        _ => (e.from.raw(), e.to.raw(), 0, 0),
    }
}

/// Follows a script, then identity — while recording every consultation
/// (candidates, barrier flag, state hash) for the driver to expand.
struct ExploringChooser {
    script: Vec<u32>,
    log: Vec<ChoicePointRec>,
}

impl Chooser<SimMsg> for ExploringChooser {
    fn choose(&mut self, ctx: &ChoiceCtx, enabled: &[Enabled<'_, SimMsg>]) -> usize {
        let k = self.log.len();
        let mut keys: Vec<(u64, u64, u64, u64)> = Vec::with_capacity(enabled.len());
        let mut candidates = Vec::new();
        for (i, e) in enabled.iter().enumerate() {
            let key = stream_key(e);
            if !keys.contains(&key) {
                keys.push(key);
                candidates.push(CandidateRec {
                    idx: i as u32,
                    to: e.to,
                });
            }
        }
        let chosen = match self.script.get(k) {
            Some(&s) => {
                debug_assert!(
                    (s as usize) < enabled.len(),
                    "scripted pick out of range on a deterministic replay"
                );
                s.min(enabled.len() as u32 - 1)
            }
            None => 0,
        };
        self.log.push(ChoicePointRec {
            chosen,
            candidates,
            barrier: ctx.barrier,
            state_hash: ctx.state_hash,
        });
        chosen as usize
    }
}

/// Exhaustive-exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McheckOptions {
    /// Branch-point depth: only the first `bound` *dependent* choice
    /// points of a path (consultations offering at least one unpruned
    /// alternative) spawn branches; deeper ones run identity. This bounds
    /// the tree by contended deliveries, not events — one binary tie per
    /// attach step means `bound` 12 covers a full two-UE
    /// attach-plus-failover small model with up to `2^12` schedules.
    pub bound: usize,
    /// Hard ceiling on explored paths (a safety valve against a
    /// mis-sized model, not a tuning knob — hitting it sets
    /// [`McheckStats::truncated`]).
    pub max_paths: u64,
}

impl Default for McheckOptions {
    fn default() -> Self {
        McheckOptions {
            bound: 12,
            max_paths: 200_000,
        }
    }
}

/// Byte-stable exploration counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct McheckStats {
    /// Complete root-to-leaf runs executed.
    pub paths_explored: u64,
    /// Expansions cut because the state hash was already expanded at the
    /// same or shallower depth.
    pub states_deduped: u64,
    /// Largest depth-first frontier (pending alternative scripts).
    pub max_frontier: u64,
    /// Alternatives skipped by the independence (commuting-destinations)
    /// rule.
    pub pruned_independent: u64,
    /// Choice points consulted on the identity (first) path.
    pub identity_choice_points: u64,
    /// True when `max_paths` stopped the search before the tree was
    /// exhausted.
    pub truncated: bool,
}

/// A violating interleaving: the choice trace that reaches it and the
/// report of that run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McheckViolation {
    /// Executed choice trace (trailing identity picks trimmed); replay
    /// by setting [`CasePlan::choice_trace`] to this.
    pub trace: Vec<u32>,
    /// The violating run's full report.
    pub report: CheckReport,
}

/// Outcome of one exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McheckOutcome {
    /// Exploration counters (byte-stable for a given plan and options).
    pub stats: McheckStats,
    /// First violating interleaving found, if any (the search stops on
    /// it).
    pub violation: Option<McheckViolation>,
}

/// Walks every schedule of the plan's contended deliveries up to
/// `opts.bound`, depth-first, stopping at the first invariant violation.
///
/// Single-threaded and fully deterministic: the same `(plan, opts)` pair
/// produces the identical outcome — and therefore byte-identical JSON —
/// on every run.
pub fn explore_exhaustive(plan: &CasePlan, opts: &McheckOptions) -> McheckOutcome {
    // Fault draws are salted by per-link send sequence: dispatch order
    // changes which messages exist, so neither commutativity nor
    // same-hash-same-future holds. Explore fault-ful plans unreduced.
    let has_faults = plan.loss_ppm > 0
        || plan.duplicate_ppm > 0
        || plan.reorder_ppm > 0
        || plan.jitter_us > 0;
    let reduce = !has_faults;
    let mut stats = McheckStats::default();
    // Depth-first worklist of alternative scripts still to run.
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    // State hash → shallowest depth at which it was expanded. A state
    // reached again at the same or greater depth has nothing new below
    // it (the earlier expansion covered a superset of remaining budget).
    let mut visited: BTreeMap<u64, usize> = BTreeMap::new();
    let mut violation = None;
    while let Some(script) = stack.pop() {
        if stats.paths_explored >= opts.max_paths {
            stats.truncated = true;
            break;
        }
        let mut chooser = ExploringChooser {
            script,
            log: Vec::new(),
        };
        let report = run_case_with(plan, 1, Some(&mut chooser)).report;
        stats.paths_explored += 1;
        if stats.paths_explored == 1 {
            stats.identity_choice_points = chooser.log.len() as u64;
        }
        if !report.is_clean() {
            let mut trace: Vec<u32> = chooser.log.iter().map(|c| c.chosen).collect();
            while trace.last() == Some(&0) {
                trace.pop();
            }
            violation = Some(McheckViolation { trace, report });
            break;
        }
        // Expand alternatives at every *branch point* this path reached
        // beyond its scripted prefix (earlier points were expanded when
        // the prefix itself ran). A branch point is a choice point with at
        // least one unpruned alternative; only those count against the
        // bound — a consultation whose candidates all commute away
        // contributes nothing to the interleaving tree and must not eat
        // exploration depth.
        let from = chooser.script.len();
        let mut branch_points = 0usize;
        for (k, cp) in chooser.log.iter().enumerate() {
            if branch_points >= opts.bound {
                break;
            }
            let mut alts: Vec<u32> = Vec::new();
            for (ci, cand) in cp.candidates.iter().enumerate() {
                if cand.idx == cp.chosen {
                    continue;
                }
                // Independence: only branch to a candidate that races an
                // earlier candidate for the same destination node —
                // deliveries to different nodes commute (void across
                // crash/recover barriers, hence the flag).
                if reduce
                    && !cp.barrier
                    && !cp.candidates[..ci].iter().any(|e| e.to == cand.to)
                {
                    if k >= from {
                        stats.pruned_independent += 1;
                    }
                    continue;
                }
                alts.push(cand.idx);
            }
            if alts.is_empty() {
                continue;
            }
            branch_points += 1;
            if k < from {
                continue; // an ancestor already expanded this point
            }
            if reduce {
                match visited.get(&cp.state_hash) {
                    Some(&d) if d <= k => {
                        stats.states_deduped += 1;
                        break;
                    }
                    _ => {
                        visited.insert(cp.state_hash, k);
                    }
                }
            }
            for alt in alts {
                let mut child: Vec<u32> = Vec::with_capacity(k + 1);
                child.extend(chooser.log[..k].iter().map(|c| c.chosen));
                child.push(alt);
                stack.push(child);
            }
            stats.max_frontier = stats.max_frontier.max(stack.len() as u64);
        }
    }
    McheckOutcome { stats, violation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::time::Instant;

    #[test]
    fn script_chooser_follows_then_identity_and_clamps() {
        let script = vec![1u32, 7];
        let mut c = ScriptChooser::new(&script);
        let msgs = [0u64, 1, 2];
        let enabled: Vec<Enabled<'_, u64>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| Enabled {
                seq: i as u64,
                from: NodeId::new(1),
                to: NodeId::new(2),
                msg: m,
            })
            .collect();
        let ctx = ChoiceCtx {
            now: Instant::ZERO,
            deliveries: 0,
            state_hash: 0,
            barrier: false,
        };
        assert_eq!(Chooser::<u64>::choose(&mut c, &ctx, &enabled), 1);
        // Out-of-range script entries clamp (shrunk plans may shrink the
        // enabled set).
        assert_eq!(Chooser::<u64>::choose(&mut c, &ctx, &enabled), 2);
        // Past the script: identity.
        assert_eq!(Chooser::<u64>::choose(&mut c, &ctx, &enabled), 0);
    }
}
