//! The invariant catalog.
//!
//! Each entry implements [`neutrino_core::Invariant`] and inspects the
//! paused cluster read-only. The catalog complements the consistency audit
//! (which `neutrino-core` exposes as [`ConsistencyInvariant`]) with
//! liveness- and resource-style properties that hold for *every* system,
//! not just Neutrino:
//!
//! | name                     | property                                              |
//! |--------------------------|-------------------------------------------------------|
//! | `consistency`            | CTA log / CPF stores / UPF sessions agree (audit)     |
//! | `no-lost-procedure`      | end of run: nothing in flight, nothing pruned         |
//! | `bounded-stall`          | no in-flight procedure sits beyond the retry budget   |
//! | `session-ownership`      | every UPF session belongs to a UE some live CTA knows |
//! | `bounded-retry`          | retransmissions stay proportional to observed drops   |
//! | `monotonic-checkpoint`   | per-UE completed-procedure watermarks never regress   |
//! | `bounded-queue`          | control-plane engine queues stay under the plan's cap |
//! | `shed-priority-order`    | admission never sheds a class while serving a lower one |
//! | `no-retry-amplification` | at most one client re-offer per reject, drop-bounded retries |

use crate::scenario::CasePlan;
use neutrino_core::simnode::{cta_node, upf_node, CtaNode, UpfNode};
use neutrino_core::{ConsistencyInvariant, Invariant, OracleCtx, Violation};
use neutrino_cta::admission::priority_order_violation;
use std::collections::{BTreeMap, HashSet};

/// Catalog name of [`NoLostProcedure`].
pub const NO_LOST_PROCEDURE: &str = "no-lost-procedure";
/// Catalog name of [`BoundedStall`].
pub const BOUNDED_STALL: &str = "bounded-stall";
/// Catalog name of [`SessionOwnership`].
pub const SESSION_OWNERSHIP: &str = "session-ownership";
/// Catalog name of [`BoundedRetry`].
pub const BOUNDED_RETRY: &str = "bounded-retry";
/// Catalog name of [`MonotonicCheckpoint`].
pub const MONOTONIC_CHECKPOINT: &str = "monotonic-checkpoint";
/// Catalog name of [`BoundedQueue`].
pub const BOUNDED_QUEUE: &str = "bounded-queue";
/// Catalog name of [`ShedPriorityOrder`].
pub const SHED_PRIORITY_ORDER: &str = "shed-priority-order";
/// Catalog name of [`NoRetryAmplification`].
pub const NO_RETRY_AMPLIFICATION: &str = "no-retry-amplification";

/// Every catalog name, including the core crate's `consistency`.
pub const ALL_INVARIANTS: &[&str] = &[
    neutrino_core::oracle::CONSISTENCY,
    NO_LOST_PROCEDURE,
    BOUNDED_STALL,
    SESSION_OWNERSHIP,
    BOUNDED_RETRY,
    MONOTONIC_CHECKPOINT,
    BOUNDED_QUEUE,
    SHED_PRIORITY_ORDER,
    NO_RETRY_AMPLIFICATION,
];

/// Instantiates a fresh invariant by catalog name.
pub fn invariant_by_name(name: &str) -> Option<Box<dyn Invariant>> {
    match name {
        n if n == neutrino_core::oracle::CONSISTENCY => Some(Box::<ConsistencyInvariant>::default()),
        NO_LOST_PROCEDURE => Some(Box::<NoLostProcedure>::default()),
        BOUNDED_STALL => Some(Box::<BoundedStall>::default()),
        SESSION_OWNERSHIP => Some(Box::<SessionOwnership>::default()),
        BOUNDED_RETRY => Some(Box::<BoundedRetry>::default()),
        MONOTONIC_CHECKPOINT => Some(Box::<MonotonicCheckpoint>::default()),
        BOUNDED_QUEUE => Some(Box::<BoundedQueue>::default()),
        SHED_PRIORITY_ORDER => Some(Box::<ShedPriorityOrder>::default()),
        NO_RETRY_AMPLIFICATION => Some(Box::<NoRetryAmplification>::default()),
        _ => None,
    }
}

/// Instantiates an invariant configured for a specific plan: the
/// `bounded-queue` cap comes from the plan's storm block when present.
/// Falls back to [`invariant_by_name`] defaults otherwise.
pub fn invariant_for_case(name: &str, plan: &CasePlan) -> Option<Box<dyn Invariant>> {
    if name == BOUNDED_QUEUE {
        if let Some(storm) = &plan.storm {
            return Some(Box::new(BoundedQueue::with_cap(storm.queue_cap)));
        }
    }
    invariant_by_name(name)
}

/// End-of-run liveness: after the drain margin, no procedure may still be
/// in flight and the CTA's ACK-timeout scan must not have pruned any
/// procedure from the log (pruned procedures silently lost their
/// replication). Final pass only — mid-run there are always procedures in
/// flight.
#[derive(Debug, Default)]
pub struct NoLostProcedure;

impl Invariant for NoLostProcedure {
    fn name(&self) -> &'static str {
        NO_LOST_PROCEDURE
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        if !ctx.final_pass {
            return Vec::new();
        }
        let now = ctx.now;
        let mut out: Vec<Violation> = ctx
            .cluster
            .population()
            .active_procedures()
            .into_iter()
            .map(|(ue, started, _, retries)| Violation {
                invariant: NO_LOST_PROCEDURE,
                at: now,
                ue: Some(ue),
                detail: format!(
                    "procedure still in flight at end of run (started at {} ms, {} retries)",
                    started.as_nanos() / 1_000_000,
                    retries
                ),
            })
            .collect();
        let pruned = ctx.cluster.cta_metrics().timeout_pruned;
        if pruned > 0 {
            out.push(Violation {
                invariant: NO_LOST_PROCEDURE,
                at: now,
                ue: None,
                detail: format!("CTA ACK-timeout scan pruned {pruned} procedures from the log"),
            });
        }
        out
    }
}

/// Mid-run liveness: the retry machinery bounds how long any in-flight
/// procedure can sit without progress — `retry_timeout × max_retries`
/// until the UE gives up and re-attaches (which itself counts as
/// progress). A procedure stalled well past that bound means a timer was
/// lost or the retry path is wedged.
#[derive(Debug, Default)]
pub struct BoundedStall;

/// Slack multiplier on top of the give-up deadline: covers timer
/// re-arming and the re-attach hop before declaring the machinery dead.
const STALL_SLACK_RETRIES: u64 = 4;

impl Invariant for BoundedStall {
    fn name(&self) -> &'static str {
        BOUNDED_STALL
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        let now = ctx.now;
        let pop = ctx.cluster.population();
        let bound_ns = pop.config().retry_timeout.as_nanos()
            * (pop.config().max_retries as u64 + STALL_SLACK_RETRIES);
        pop.active_procedures()
            .into_iter()
            .filter_map(|(ue, _, last_progress, retries)| {
                let stall_ns = now.saturating_since(last_progress).as_nanos();
                (stall_ns > bound_ns).then(|| Violation {
                    invariant: BOUNDED_STALL,
                    at: now,
                    ue: Some(ue),
                    detail: format!(
                        "no progress for {} ms (bound {} ms, {} retries)",
                        stall_ns / 1_000_000,
                        bound_ns / 1_000_000,
                        retries
                    ),
                })
            })
            .collect()
    }
}

/// Every UPF session must belong to a UE some live CTA knows about —
/// the audit's orphan check, standalone so re-attach baselines (whose
/// consistency the full audit would rightly fail) still get it. Skipped
/// while any CTA is down: a dead CTA's knowledge is unavailable, not lost.
#[derive(Debug, Default)]
pub struct SessionOwnership;

impl Invariant for SessionOwnership {
    fn name(&self) -> &'static str {
        SESSION_OWNERSHIP
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        let now = ctx.now;
        let cluster = &mut *ctx.cluster;
        let ctas: Vec<_> = cluster.deployment.regions().iter().map(|r| r.cta).collect();
        let upfs: Vec<_> = cluster
            .deployment
            .regions()
            .iter()
            .flat_map(|r| r.upfs.clone())
            .collect();
        let mut known = HashSet::new();
        for cta in ctas {
            if !cluster.sim.is_up(cta_node(cta)) {
                return Vec::new();
            }
            if let Some(node) = cluster.sim.node_as::<CtaNode>(cta_node(cta)) {
                known.extend(node.core().log().ues().map(|(ue, _)| *ue));
            }
        }
        let mut out = Vec::new();
        for upf in upfs {
            if !cluster.sim.is_up(upf_node(upf)) {
                continue;
            }
            if let Some(node) = cluster.sim.node_as::<UpfNode>(upf_node(upf)) {
                out.extend(
                    node.core()
                        .table()
                        .iter()
                        .filter(|(ue, _)| !known.contains(ue))
                        .map(|(ue, s)| Violation {
                            invariant: SESSION_OWNERSHIP,
                            at: now,
                            ue: Some(*ue),
                            detail: format!(
                                "orphaned session at UPF {} (owning CPF {})",
                                upf.raw(),
                                s.cpf.raw()
                            ),
                        }),
                );
            }
        }
        out
    }
}

/// Retransmissions must stay proportional to what the network actually
/// did to this run: every retransmission is caused by a lost delivery
/// (fault-layer loss, a partition window, or a message arriving at a
/// down/crashed node), plus a constant head-room for timeouts on
/// responses that were merely slow. Unbounded growth with no matching
/// drops means a retry loop.
#[derive(Debug, Default)]
pub struct BoundedRetry;

/// Constant head-room before drops are required to justify retries.
const RETRY_BUDGET_BASE: u64 = 128;
/// Allowed retransmissions per observed drop (a drop mid-procedure can
/// strand several steps, each of which then retransmits).
const RETRY_BUDGET_PER_DROP: u64 = 8;

impl Invariant for BoundedRetry {
    fn name(&self) -> &'static str {
        BOUNDED_RETRY
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        let sim = ctx.cluster.sim.sim_stats();
        let drops = sim.dropped_loss + sim.dropped_partition + ctx.cluster.total_node_drops();
        let retx = ctx.cluster.population().results().retransmissions;
        let budget = RETRY_BUDGET_BASE + RETRY_BUDGET_PER_DROP * drops;
        if retx <= budget {
            return Vec::new();
        }
        vec![Violation {
            invariant: BOUNDED_RETRY,
            at: ctx.now,
            ue: None,
            detail: format!(
                "{retx} retransmissions exceed budget {budget} ({drops} observed drops)"
            ),
        }]
    }
}

/// Per-UE completed-procedure watermarks at each CTA never regress
/// between oracle passes: the message log's `last_completed` is the
/// checkpoint id the failover path trusts, and a regression would let a
/// stale CPF copy masquerade as fresh. Stateful: watermarks persist
/// across passes for the whole run.
#[derive(Debug, Default)]
pub struct MonotonicCheckpoint {
    /// Highest `last_completed` observed per `(cta, ue)`.
    watermarks: BTreeMap<(u64, u64), u64>,
}

impl Invariant for MonotonicCheckpoint {
    fn name(&self) -> &'static str {
        MONOTONIC_CHECKPOINT
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        let now = ctx.now;
        let cluster = &mut *ctx.cluster;
        let ctas: Vec<_> = cluster.deployment.regions().iter().map(|r| r.cta).collect();
        let mut out = Vec::new();
        for cta in ctas {
            if !cluster.sim.is_up(cta_node(cta)) {
                continue;
            }
            let node = match cluster.sim.node_as::<CtaNode>(cta_node(cta)) {
                Some(n) => n,
                None => continue,
            };
            for (ue, log) in node.core().log().ues() {
                let cur = log.last_completed.raw();
                let slot = self.watermarks.entry((cta.raw(), ue.raw())).or_insert(cur);
                if cur < *slot {
                    out.push(Violation {
                        invariant: MONOTONIC_CHECKPOINT,
                        at: now,
                        ue: Some(*ue),
                        detail: format!(
                            "CTA {} last_completed regressed {} -> {}",
                            cta.raw(),
                            *slot,
                            cur
                        ),
                    });
                } else {
                    *slot = cur;
                }
            }
        }
        out
    }
}

/// Overload containment: the largest engine queue depth across
/// control-plane nodes (CTAs, CPFs, UPFs — the UE population's own queue
/// is its business) must stay under the cap the admission gate is sized
/// for. Reports the first breach only — the depth is a running maximum,
/// so every later pass would re-report the same event.
#[derive(Debug)]
pub struct BoundedQueue {
    cap: u64,
    tripped: bool,
}

/// Fallback queue cap when the plan declares none: generous enough that
/// only a genuine overload collapse (not a burst) can reach it.
const DEFAULT_QUEUE_CAP: u64 = 4_096;

impl Default for BoundedQueue {
    fn default() -> Self {
        BoundedQueue { cap: DEFAULT_QUEUE_CAP, tripped: false }
    }
}

impl BoundedQueue {
    /// A checker with an explicit depth cap (the plan's `storm.queue_cap`).
    pub fn with_cap(cap: u64) -> Self {
        BoundedQueue { cap: cap.max(1), tripped: false }
    }
}

impl Invariant for BoundedQueue {
    fn name(&self) -> &'static str {
        BOUNDED_QUEUE
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        if self.tripped {
            return Vec::new();
        }
        let depth = ctx.cluster.max_control_queue_depth() as u64;
        if depth <= self.cap {
            return Vec::new();
        }
        self.tripped = true;
        vec![Violation {
            invariant: BOUNDED_QUEUE,
            at: ctx.now,
            ue: None,
            detail: format!(
                "control-plane queue depth reached {depth}, cap {} — \
                 admission is not containing the storm",
                self.cap
            ),
        }]
    }
}

/// Graceful-degradation ordering: the admission gate must shut classes
/// off lowest-priority-first. The gate records, per class, the lowest
/// token level it admitted at and the highest level it shed at; a
/// higher-priority class shed at or above a level where a lower-priority
/// class was admitted means the priority ladder inverted. Final pass
/// only — the evidence is cumulative over the whole run.
#[derive(Debug, Default)]
pub struct ShedPriorityOrder;

impl Invariant for ShedPriorityOrder {
    fn name(&self) -> &'static str {
        SHED_PRIORITY_ORDER
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        if !ctx.final_pass {
            return Vec::new();
        }
        let Some((min_admit, max_shed)) = ctx.cluster.admission_evidence() else {
            return Vec::new();
        };
        priority_order_violation(&min_admit, &max_shed)
            .map(|(hi, lo)| Violation {
                invariant: SHED_PRIORITY_ORDER,
                at: ctx.now,
                ue: None,
                detail: format!(
                    "higher-priority class `{}` was shed at a bucket level where \
                     lower-priority class `{}` was still admitted",
                    hi.label(),
                    lo.label()
                ),
            })
            .into_iter()
            .collect()
    }
}

/// Overload must not feed on itself: every UE retransmission is accounted
/// for by either an observed delivery drop (loss, partition, down node —
/// the [`BoundedRetry`] argument) or an explicit admission `Reject`, which
/// licenses *exactly one* deferred re-offer. Retransmissions beyond
/// `base + per_drop·drops + rejects` mean the client retry machinery is
/// amplifying the storm instead of pacing it.
#[derive(Debug, Default)]
pub struct NoRetryAmplification;

impl Invariant for NoRetryAmplification {
    fn name(&self) -> &'static str {
        NO_RETRY_AMPLIFICATION
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        if !ctx.final_pass {
            return Vec::new();
        }
        let sim = ctx.cluster.sim.sim_stats();
        let drops = sim.dropped_loss + sim.dropped_partition + ctx.cluster.total_node_drops();
        let results = ctx.cluster.population().results();
        let (retx, rejected) = (results.retransmissions, results.rejected);
        let budget = RETRY_BUDGET_BASE + RETRY_BUDGET_PER_DROP * drops + rejected;
        if retx <= budget {
            return Vec::new();
        }
        vec![Violation {
            invariant: NO_RETRY_AMPLIFICATION,
            at: ctx.now,
            ue: None,
            detail: format!(
                "{retx} retransmissions exceed the amplification budget {budget} \
                 ({drops} drops, {rejected} rejects — more than one re-offer per reject)"
            ),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_resolves() {
        for name in ALL_INVARIANTS {
            let inv = invariant_by_name(name).expect("catalog name resolves");
            assert_eq!(inv.name(), *name);
        }
        assert!(invariant_by_name("no-such-invariant").is_none());
    }

    #[test]
    fn scenario_invariant_lists_resolve() {
        for s in crate::scenario::Scenario::all() {
            for name in s.plan(0).invariants {
                assert!(
                    invariant_by_name(&name).is_some(),
                    "scenario {} references unknown invariant {name}",
                    s.name
                );
            }
        }
    }
}
