//! Cross-node consistency audit.
//!
//! After a failure experiment, the cluster's surviving nodes must still
//! agree on every UE: for each UE the CTA has seen complete a procedure,
//! some live CPF must hold a servable state copy at (or beyond) that
//! procedure — or the CTA's message log must still be able to rebuild one
//! by replay (§4.2.5 scenario 2). UPF sessions must belong to UEs the
//! control plane knows. Neutrino maintains this invariant *continuously*,
//! even between a crash and the first post-failure contact; re-attach-based
//! baselines violate it for every UE whose only state copy died, until (and
//! unless) the UE re-attaches.
//!
//! The audit is read-only: it never injects events, so running it mid-
//! experiment does not perturb the simulation's deterministic schedule.

use crate::cluster::Cluster;
use crate::simnode::{cpf_node, cta_node, upf_node, CpfNode, CtaNode, UpfNode};
use neutrino_common::{CpfId, CtaId, ProcedureId, UeId, UpfId};
use std::collections::HashSet;

/// One observed violation of the cross-node consistency invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// The CTA saw procedures complete for this UE, but no live CPF holds
    /// any copy of its state and the log cannot rebuild one from scratch.
    MissingState {
        /// The UE concerned.
        ue: UeId,
        /// The last procedure the CTA saw complete.
        expected: ProcedureId,
    },
    /// The freshest live copy (servable or outdated) predates the last
    /// procedure the CTA saw complete, and the log cannot close the gap by
    /// replay on top of it.
    StaleState {
        /// The UE concerned.
        ue: UeId,
        /// The freshest version any live CPF holds.
        held: ProcedureId,
        /// The last procedure the CTA saw complete.
        expected: ProcedureId,
    },
    /// A UPF session exists for a UE no live CTA knows about.
    OrphanedSession {
        /// The UE concerned.
        ue: UeId,
        /// The UPF holding the session.
        upf: UpfId,
    },
}

impl Divergence {
    /// The UE the divergence concerns.
    pub fn ue(&self) -> UeId {
        match self {
            Divergence::MissingState { ue, .. }
            | Divergence::StaleState { ue, .. }
            | Divergence::OrphanedSession { ue, .. } => *ue,
        }
    }

    fn sort_key(&self) -> (u64, u8) {
        let rank = match self {
            Divergence::MissingState { .. } => 0,
            Divergence::StaleState { .. } => 1,
            Divergence::OrphanedSession { .. } => 2,
        };
        (self.ue().raw(), rank)
    }
}

/// Outcome of one or more audit passes over a cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Audit passes merged into this report.
    pub passes: u64,
    /// UE records checked (summed over passes).
    pub ues_checked: u64,
    /// UPF sessions checked (summed over passes).
    pub sessions_checked: u64,
    /// Every divergence observed, in deterministic (UE, kind) order per
    /// pass.
    pub divergences: Vec<Divergence>,
}

impl AuditReport {
    /// True when no pass observed any divergence.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Folds another report (e.g. a later pass) into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.passes += other.passes;
        self.ues_checked += other.ues_checked;
        self.sessions_checked += other.sessions_checked;
        self.divergences.extend(other.divergences);
    }
}

/// What one live CTA expects for one UE.
struct Expectation {
    cta: CtaId,
    ue: UeId,
    expected: ProcedureId,
}

/// Runs one audit pass over the cluster's current state.
pub fn audit_cluster(cluster: &mut Cluster) -> AuditReport {
    let mut report = AuditReport {
        passes: 1,
        ..AuditReport::default()
    };

    let ctas: Vec<CtaId> = cluster.deployment.regions().iter().map(|r| r.cta).collect();
    let cpfs: Vec<CpfId> = cluster.deployment.all_cpfs();
    let upfs: Vec<UpfId> = cluster
        .deployment
        .regions()
        .iter()
        .flat_map(|r| r.upfs.clone())
        .collect();

    // Phase 1: collect what every live CTA knows. A UE with no completed
    // procedure has no durable state to check yet, but still counts as
    // "known" for the orphan check.
    let mut known: HashSet<UeId> = HashSet::new();
    let mut expectations: Vec<Expectation> = Vec::new();
    for &cta in &ctas {
        if !cluster.sim.is_up(cta_node(cta)) {
            continue;
        }
        let node = match cluster.sim.node_as::<CtaNode>(cta_node(cta)) {
            Some(n) => n,
            None => continue,
        };
        for (ue, ue_log) in node.core().log().ues() {
            known.insert(*ue);
            if ue_log.last_completed.raw() > 0 {
                expectations.push(Expectation {
                    cta,
                    ue: *ue,
                    expected: ue_log.last_completed,
                });
            }
        }
    }

    // Phase 2: for each expectation, find the freshest servable copy on any
    // live CPF, then fall back to replay coverage from the owning CTA's log.
    // Replay can rebuild on top of *any* surviving copy, including ones
    // marked outdated during a migration (§4.2.5 scenario 2) — outdated only
    // forbids serving traffic, not recovery — so the replay base is the
    // freshest live copy of any freshness.
    let mut divergences = Vec::new();
    for exp in &expectations {
        report.ues_checked += 1;
        let mut best_servable: Option<ProcedureId> = None;
        let mut best_any: Option<ProcedureId> = None;
        for &cpf in &cpfs {
            if !cluster.sim.is_up(cpf_node(cpf)) {
                continue;
            }
            let node = match cluster.sim.node_as::<CpfNode>(cpf_node(cpf)) {
                Some(n) => n,
                None => continue,
            };
            if let Some(rec) = node.core().store().get(exp.ue) {
                let v = rec.state.version.procedure;
                if best_any.map(|b| v > b).unwrap_or(true) {
                    best_any = Some(v);
                }
                if node.core().store().servable(exp.ue)
                    && best_servable.map(|b| v > b).unwrap_or(true)
                {
                    best_servable = Some(v);
                }
            }
        }
        if best_servable.unwrap_or(ProcedureId(0)) >= exp.expected {
            continue;
        }
        // No fresh-enough servable copy: the CTA log may still close the gap
        // from the freshest surviving copy (or from scratch). Only systems
        // that log messages get this fallback — with logging off the CTA
        // still tracks completion *metadata* (empty procedure entries), and
        // `replay_covers` over empty entries would vacuously excuse a state
        // copy nothing can actually rebuild.
        let base = best_any.unwrap_or(ProcedureId(0));
        let recoverable = cluster.config().logging
            && cluster
                .sim
                .node_as::<CtaNode>(cta_node(exp.cta))
                .map(|n| n.core().log().replay_covers(exp.ue, base))
                .unwrap_or(false);
        if recoverable {
            continue;
        }
        divergences.push(match best_any {
            None => Divergence::MissingState {
                ue: exp.ue,
                expected: exp.expected,
            },
            Some(held) => Divergence::StaleState {
                ue: exp.ue,
                held,
                expected: exp.expected,
            },
        });
    }

    // Phase 3: every UPF session must belong to a known UE.
    for &upf in &upfs {
        if !cluster.sim.is_up(upf_node(upf)) {
            continue;
        }
        let node = match cluster.sim.node_as::<UpfNode>(upf_node(upf)) {
            Some(n) => n,
            None => continue,
        };
        let orphans: Vec<UeId> = node
            .core()
            .table()
            .iter()
            .map(|(ue, _)| *ue)
            .filter(|ue| !known.contains(ue))
            .collect();
        report.sessions_checked += node.core().table().len() as u64;
        divergences.extend(
            orphans
                .into_iter()
                .map(|ue| Divergence::OrphanedSession { ue, upf }),
        );
    }

    // Divergences accumulate from several per-node scans; impose one
    // global order so the report is byte-stable across runs and `--jobs N`.
    divergences.sort_by_key(Divergence::sort_key);
    report.divergences = divergences;
    report
}
