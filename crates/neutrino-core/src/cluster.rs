//! Builds a complete simulated deployment from a [`SystemConfig`].

use crate::config::{SystemConfig, SystemKind};
use crate::simnode::{cpf_node, cta_node, upf_node, CpfNode, CtaNode, UpfNode, UEPOP_NODE};
use crate::uepop::{RegionRoute, UePopConfig, UePopResults, UePopulation, Workload};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::CpfId;
use neutrino_cpf::{CpfConfig, CpfCore, CpfMetrics};
use neutrino_cta::{CtaConfig, CtaCore, CtaMetrics};
use neutrino_geo::{Deployment, RegionLayout};
use neutrino_messages::SysMsg;
use neutrino_netsim::{FaultSpec, LinkSpec, Links, ShardedSim, SimConfig};
use neutrino_upf::UpfCore;

/// Merged admission-gate priority evidence: per class, the lowest token
/// level a request was admitted at and the highest level one was shed at.
pub type AdmissionEvidence = ([Option<u64>; 4], [Option<u64>; 4]);

/// The simulator's message type: protocol traffic plus the bootstrap kick
/// for the UE population's arrival loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SimMsg {
    /// Protocol traffic.
    Sys(SysMsg),
    /// Bootstraps the arrival pump.
    Kick,
}

/// Link latencies of the edge deployment.
#[derive(Debug, Clone, Copy)]
pub struct LinkProfile {
    /// Same-region hops (BS↔CTA, CTA↔CPF, CPF↔UPF): the paper's testbed is
    /// two servers on 40 GbE with DPDK kernel-bypass I/O — single-digit
    /// microseconds one way.
    pub intra_region: Duration,
    /// Cross-region hops (CPF ↔ level-2 replica CPFs): different edge sites.
    pub inter_region: Duration,
    /// Maximum deterministic per-hop jitter (uniform in `0..=jitter`,
    /// re-rolled per [`ExperimentSpec::seed`](crate::experiment::ExperimentSpec::seed)).
    /// Zero — the default — keeps every link delay exact.
    pub jitter: Duration,
    /// Seeded fault injection applied to every link (loss, duplication,
    /// bounded reorder). [`FaultSpec::NONE`] — the default — keeps the
    /// fault-free event stream byte-identical to the pre-fault engine.
    pub faults: FaultSpec,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            intra_region: Duration::from_micros(5),
            inter_region: Duration::from_micros(500),
            jitter: Duration::ZERO,
            faults: FaultSpec::NONE,
        }
    }
}

/// A built simulation plus its id maps.
pub struct Cluster {
    /// The simulator: region-sharded when built with `shards > 1` and the
    /// link table is jitter- and fault-free, sequential otherwise — either
    /// way byte-identical event order.
    pub sim: ShardedSim<SimMsg>,
    /// The deployment it models.
    pub deployment: Deployment,
    config: SystemConfig,
}

impl Cluster {
    /// Builds a cluster: per level-1 region one CTA, a CPF pool, UPFs; one
    /// UE-population node emulating all UEs and base stations.
    pub fn build(
        config: SystemConfig,
        layout: RegionLayout,
        workload: Workload,
        uecfg: UePopConfig,
        links_profile: LinkProfile,
    ) -> Cluster {
        Self::build_with_sim(
            config,
            layout,
            workload,
            uecfg,
            links_profile,
            SimConfig::default(),
            0,
            crate::experiment::shards(),
        )
    }

    /// [`Cluster::build`] with an explicit engine config (runaway-event
    /// budget), jitter seed, and engine shard count; `run_experiment`
    /// derives all three per cell.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_sim(
        config: SystemConfig,
        mut layout: RegionLayout,
        workload: Workload,
        mut uecfg: UePopConfig,
        links_profile: LinkProfile,
        sim_config: SimConfig,
        seed: u64,
        shards: usize,
    ) -> Cluster {
        layout.replicas = config.replicas;
        let deployment = Deployment::build(layout);

        // Links: intra-region by default, cross-region overridden.
        let jitter = links_profile.jitter;
        let mut links = Links::with_default(LinkSpec {
            latency: links_profile.intra_region,
            jitter,
        });
        links.set_seed(seed);
        links.set_fault_default(links_profile.faults);
        let inter = LinkSpec {
            latency: links_profile.inter_region,
            jitter,
        };
        for a in deployment.regions() {
            for b in deployment.regions() {
                if a.id == b.id {
                    continue;
                }
                for &ca in &a.cpfs {
                    for &cb in &b.cpfs {
                        links.set(cpf_node(ca), cpf_node(cb), inter);
                    }
                    links.set_symmetric(cta_node(b.cta), cpf_node(ca), inter);
                }
            }
        }
        let mut sim = ShardedSim::with_config(links, sim_config, shards);

        // UE population. All workload traffic enters through region 0's CTA
        // and CPF pool — the paper's testbed drives one pool of five CPF
        // instances (§5); sibling regions host the level-2 backup replicas
        // and handover targets.
        uecfg.codec = config.codec;
        // Overload control is end-to-end: when the CTA gates ingress, the
        // UEs also spread their re-offers with exponential backoff instead
        // of re-offering in lockstep the moment `retry_after` elapses.
        if config.admission.is_some() && uecfg.backoff_base == Duration::ZERO {
            uecfg.backoff_base = Duration::from_millis(50);
        }
        // Route 0 (region 0) carries all traffic — the paper's testbed
        // shape; the rest are fallbacks for CTA-failure recovery
        // (§4.2.5 scenario 4).
        uecfg.routes = deployment
            .regions()
            .iter()
            .map(|r| RegionRoute {
                cta: r.cta,
                bss: r.bss.clone(),
            })
            .collect();
        // The population shares shard 0 with region 0 (the entry point for
        // all workload traffic), so the hot UE↔CTA path stays shard-local.
        sim.add_node(UEPOP_NODE, Box::new(UePopulation::new(uecfg, workload)), 0);

        // Per-region control plane: each region's nodes land together on
        // the shard `crates/geo` assigns it, so only the 500 µs
        // inter-region links (and the population's cross-region fallback
        // routes) cross shard boundaries.
        for region in deployment.regions() {
            let shard = deployment.shard_of_region(region.id, shards);
            let ring = deployment
                .ring_stack(region.id)
                .expect("regions have rings");
            let cta_cfg = CtaConfig {
                id: region.cta,
                logging: config.logging,
                failover: config.failover,
                ack_timeout: Duration::from_secs(30),
                // No replication → no ACKs will ever come; a resync chase
                // would just spam the primary. Zero disables it.
                resync_base: if config.replication == neutrino_cpf::ReplicationMode::None {
                    Duration::ZERO
                } else {
                    Duration::from_secs(4)
                },
                codec: config.codec,
                admission: config.admission,
            };
            sim.add_node(
                cta_node(region.cta),
                Box::new(CtaNode::new(
                    CtaCore::new(cta_cfg, ring.clone()),
                    config.cpu,
                    config.logging,
                    Duration::from_secs(5),
                )),
                shard,
            );
            let remote_peers: Vec<_> = deployment
                .level2_siblings(region.id)
                .into_iter()
                .filter_map(|r| deployment.region(r))
                .flat_map(|r| r.cpfs.clone())
                .collect();
            for &cpf in &region.cpfs {
                let cpf_cfg = CpfConfig {
                    id: cpf,
                    replication: config.replication,
                    ring: if config.kind == SystemKind::Neutrino {
                        Some(ring.clone())
                    } else {
                        None
                    },
                    peers: region.cpfs.clone(),
                    remote_peers: remote_peers.clone(),
                    upfs: region.upfs.clone(),
                    enforce_consistency: config.enforce_consistency,
                    home_cta: region.cta,
                    parallel_upf: config.parallel_upf,
                };
                sim.add_node(
                    cpf_node(cpf),
                    Box::new(CpfNode::new(CpfCore::new(cpf_cfg), config.clone())),
                    shard,
                );
            }
            for &upf in &region.upfs {
                sim.add_node(
                    upf_node(upf),
                    Box::new(UpfNode::new(UpfCore::with_cta(upf, region.cta), config.cpu)),
                    shard,
                );
            }
        }

        // Bootstrap the arrival pump.
        sim.inject_at(Instant::ZERO, UEPOP_NODE, SimMsg::Kick);

        Cluster {
            sim,
            deployment,
            config,
        }
    }

    /// The system configuration this cluster runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Crashes a CTA at `at` (failure scenario 4: its UEs re-attach through
    /// another region's CTA after their retries run out — no notice is
    /// delivered anywhere, because "we do not backup CTA state", §4.2.5).
    pub fn fail_cta_at(&mut self, at: Instant, region_index: usize) {
        let cta = self.deployment.regions()[region_index].cta;
        self.sim.crash_at(at, cta_node(cta));
    }

    /// Crashes a CPF at `at` and delivers the failure notice to every CTA
    /// and every surviving CPF right after (failure *detection* time is
    /// excluded from PCT, §6.4). CPFs need the notice too: their ring views
    /// drive checkpoint targeting, and must drop the dead peer in lockstep
    /// with the CTA's ACK expectations.
    pub fn fail_cpf_at(&mut self, at: Instant, cpf: CpfId) {
        self.sim.crash_at(at, cpf_node(cpf));
        let notice_at = at + Duration::from_micros(1);
        let ctas: Vec<_> = self.deployment.regions().iter().map(|r| r.cta).collect();
        for cta in ctas {
            self.sim.inject_at(
                notice_at,
                cta_node(cta),
                SimMsg::Sys(SysMsg::CpfFailure { cpf }),
            );
        }
        for peer in self.deployment.all_cpfs() {
            if peer != cpf {
                self.sim.inject_at(
                    notice_at,
                    cpf_node(peer),
                    SimMsg::Sys(SysMsg::CpfFailure { cpf }),
                );
            }
        }
    }

    /// Injects downlink user data for `ue` arriving at its region's first
    /// UPF at `at` (the §3.1 reachability experiments).
    pub fn inject_downlink_data_at(&mut self, at: Instant, ue: neutrino_common::UeId) {
        let upf = self.deployment.regions()[0].upfs
            [ue.raw() as usize % self.deployment.regions()[0].upfs.len().max(1)];
        self.sim
            .inject_at(at, upf_node(upf), SimMsg::Sys(SysMsg::DownlinkData { ue }));
    }

    /// Marks a UE's session idle at its UPF (emulates the S1 inactivity
    /// release, which our procedure set does not model as messages).
    pub fn release_ue_to_idle(&mut self, ue: neutrino_common::UeId) {
        let upfs: Vec<_> = self
            .deployment
            .regions()
            .iter()
            .flat_map(|r| r.upfs.clone())
            .collect();
        for upf in upfs {
            if let Some(node) = self.sim.node_as::<UpfNode>(upf_node(upf)) {
                node.core_mut().table_mut().release(ue);
            }
        }
    }

    /// Downlink delivery log across all UPFs: `(time, ue, delivered)`.
    pub fn downlink_log(&mut self) -> Vec<(Instant, neutrino_common::UeId, bool)> {
        let upfs: Vec<_> = self
            .deployment
            .regions()
            .iter()
            .flat_map(|r| r.upfs.clone())
            .collect();
        let mut out = Vec::new();
        for upf in upfs {
            if let Some(node) = self.sim.node_as::<UpfNode>(upf_node(upf)) {
                out.extend_from_slice(node.downlink_log());
            }
        }
        out.sort();
        out
    }

    /// Runs until `deadline` (virtual time).
    pub fn run_until(&mut self, deadline: Instant) {
        self.sim.run_until(deadline);
    }

    /// Runs until `deadline`, consulting `chooser` at every point where
    /// ≥2 deliveries are simultaneously enabled (small-model checking;
    /// requires `shards = 1` — see `Sim::run_until_chosen`).
    pub fn run_until_chosen(
        &mut self,
        deadline: Instant,
        chooser: &mut dyn neutrino_netsim::Chooser<SimMsg>,
    ) {
        self.sim.run_until_chosen(deadline, chooser);
    }

    /// Runs until the event queue drains.
    pub fn run_to_completion(&mut self) {
        self.sim.run_to_completion();
    }

    /// The UE-population node (read-mostly access for invariant oracles).
    pub fn population(&mut self) -> &mut UePopulation {
        self.sim
            .node_as::<UePopulation>(UEPOP_NODE)
            .expect("population exists")
    }

    /// Total messages dropped at down or crashed nodes across the whole
    /// deployment (the bounded-retry oracle's drop budget).
    pub fn total_node_drops(&self) -> u64 {
        let mut ids = vec![UEPOP_NODE];
        for region in self.deployment.regions() {
            ids.push(cta_node(region.cta));
            ids.extend(region.cpfs.iter().map(|&c| cpf_node(c)));
            ids.extend(region.upfs.iter().map(|&u| upf_node(u)));
        }
        ids.into_iter()
            .filter_map(|id| self.sim.stats(id))
            .map(|s| s.dropped_down + s.dropped_crash)
            .sum()
    }

    /// Extracts the UE population's results.
    pub fn take_results(&mut self) -> UePopResults {
        self.sim
            .node_as::<UePopulation>(UEPOP_NODE)
            .expect("population exists")
            .take_results()
    }

    /// Peak CTA log footprint across all regions (Fig. 17).
    pub fn max_log_bytes(&mut self) -> usize {
        let ctas: Vec<_> = self.deployment.regions().iter().map(|r| r.cta).collect();
        let mut total = 0;
        for cta in ctas {
            if let Some(node) = self.sim.node_as::<CtaNode>(cta_node(cta)) {
                total += node.core().max_log_bytes();
            }
        }
        total
    }

    /// The CPF currently serving a UE, according to region 0's CTA (the
    /// entry point for all workload traffic).
    pub fn serving_cpf(&mut self, ue: neutrino_common::UeId) -> Option<CpfId> {
        let cta = self.deployment.regions()[0].cta;
        self.sim
            .node_as::<CtaNode>(cta_node(cta))?
            .core_mut()
            .primary_for(ue)
    }

    /// The state version the UE's serving CPF holds (consistency checks).
    pub fn ue_state_version(
        &mut self,
        ue: neutrino_common::UeId,
    ) -> Option<neutrino_messages::state::StateVersion> {
        let cpf = self.serving_cpf(ue)?;
        let node = self.sim.node_as::<CpfNode>(cpf_node(cpf))?;
        node.core().store().get(ue).map(|r| r.state.version)
    }

    /// Whether the UE's serving CPF may serve it right now (fresh state).
    pub fn ue_servable(&mut self, ue: neutrino_common::UeId) -> bool {
        match self.serving_cpf(ue) {
            Some(cpf) => self
                .sim
                .node_as::<CpfNode>(cpf_node(cpf))
                .map(|n| n.core().store().servable(ue))
                .unwrap_or(false),
            None => false,
        }
    }

    /// Aggregated CTA metrics.
    pub fn cta_metrics(&mut self) -> CtaMetrics {
        let ctas: Vec<_> = self.deployment.regions().iter().map(|r| r.cta).collect();
        let mut agg = CtaMetrics::default();
        for cta in ctas {
            if let Some(node) = self.sim.node_as::<CtaNode>(cta_node(cta)) {
                let m = node.core().metrics();
                agg.forwarded_uplink += m.forwarded_uplink;
                agg.forwarded_downlink += m.forwarded_downlink;
                agg.failover_up_to_date += m.failover_up_to_date;
                agg.failover_replayed += m.failover_replayed;
                agg.failover_re_attach += m.failover_re_attach;
                agg.outdated_notices += m.outdated_notices;
                agg.timeout_pruned += m.timeout_pruned;
                agg.resyncs_requested += m.resyncs_requested;
                agg.resyncs_replayed += m.resyncs_replayed;
                for i in 0..4 {
                    agg.admitted_by_class[i] += m.admitted_by_class[i];
                    agg.shed_by_class[i] += m.shed_by_class[i];
                }
                agg.rejects_sent += m.rejects_sent;
                agg.acks_deferred += m.acks_deferred;
                agg.breaker_opened += m.breaker_opened;
                agg.breaker_suppressed += m.breaker_suppressed;
                agg.unexpected_msgs += m.unexpected_msgs;
            }
        }
        agg
    }

    /// Admission-gate priority evidence, merged across regions: per class,
    /// the lowest token level admitted at and the highest level shed at
    /// (the `shed-priority-order` invariant's witness).
    pub fn admission_evidence(&mut self) -> Option<AdmissionEvidence> {
        let ctas: Vec<_> = self.deployment.regions().iter().map(|r| r.cta).collect();
        let mut merged: Option<AdmissionEvidence> = None;
        for cta in ctas {
            let Some(node) = self.sim.node_as::<CtaNode>(cta_node(cta)) else { continue };
            let Some(gate) = node.core().admission() else { continue };
            let (admit, shed) = gate.priority_evidence();
            let (ma, ms) = merged.get_or_insert(([None; 4], [None; 4]));
            for i in 0..4 {
                ma[i] = match (ma[i], admit[i]) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                ms[i] = match (ms[i], shed[i]) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        merged
    }

    /// Largest engine queue depth across the control-plane nodes (CTAs,
    /// CPFs, UPFs) — the `bounded-queue` invariant's observable. The UE
    /// population node is excluded: it models the device fleet, not a
    /// control-plane queue.
    pub fn max_control_queue_depth(&self) -> usize {
        let mut ids = Vec::new();
        for region in self.deployment.regions() {
            ids.push(cta_node(region.cta));
            ids.extend(region.cpfs.iter().map(|&c| cpf_node(c)));
            ids.extend(region.upfs.iter().map(|&u| upf_node(u)));
        }
        ids.into_iter()
            .filter_map(|id| self.sim.stats(id))
            .map(|s| s.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Aggregated CPF metrics.
    pub fn cpf_metrics(&mut self) -> CpfMetrics {
        let cpfs = self.deployment.all_cpfs();
        let mut agg = CpfMetrics::default();
        for cpf in cpfs {
            if let Some(node) = self.sim.node_as::<CpfNode>(cpf_node(cpf)) {
                let m = node.core().metrics();
                agg.processed += m.processed;
                agg.replayed += m.replayed;
                agg.completed += m.completed;
                agg.syncs_sent += m.syncs_sent;
                agg.syncs_applied += m.syncs_applied;
                agg.syncs_ignored += m.syncs_ignored;
                agg.re_attach_asked += m.re_attach_asked;
                agg.migrations += m.migrations;
                agg.pages_sent += m.pages_sent;
                agg.pages_failed += m.pages_failed;
                agg.resyncs_answered += m.resyncs_answered;
                agg.dup_uplink_nudges += m.dup_uplink_nudges;
                agg.unexpected_msgs += m.unexpected_msgs;
            }
        }
        agg
    }
}
