//! One-call experiment runner.

use crate::audit::{audit_cluster, AuditReport};
use crate::cluster::{Cluster, LinkProfile};
use crate::config::{HandoverPolicy, SystemConfig};
use crate::uepop::{Arrival, ProcedureWindow, UePopConfig, Workload};
use neutrino_common::stats::{Percentiles, Summary};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::CpfId;
use neutrino_cpf::CpfMetrics;
use neutrino_cta::CtaMetrics;
use neutrino_geo::RegionLayout;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_netsim::{SimConfig, SimStats};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default for [`ExperimentSpec::shards`], settable once from
/// a `--shards N` CLI flag before any spec is built (the same pattern the
/// bench sweep uses for `--jobs`). Defaults to 1: sequential execution,
/// byte-identical to the pre-sharding engine by construction.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default engine shard count.
pub fn set_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::SeqCst);
}

/// The process-wide default engine shard count.
pub fn shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::SeqCst)
}

/// A CPF failure injection.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// When the CPF crashes.
    pub at: Instant,
    /// Which CPF.
    pub cpf: CpfId,
}

/// Everything one experiment run needs.
pub struct ExperimentSpec {
    /// The system under test.
    pub config: SystemConfig,
    /// Deployment shape.
    pub layout: RegionLayout,
    /// The control workload.
    pub workload: Workload,
    /// Virtual-time horizon: the run executes until the workload drains or
    /// this deadline, whichever is later... (the queue empties naturally).
    pub horizon: Duration,
    /// Failure injections.
    pub failures: Vec<FailureSpec>,
    /// UE-population tuning (PCT sampling, probe UEs, retry policy).
    pub uecfg: UePopConfig,
    /// Link latencies.
    pub links: LinkProfile,
    /// Jitter seed: re-rolls every link-delay draw when
    /// [`LinkProfile::jitter`] is non-zero. Two runs of the same spec and
    /// seed are bit-identical; seed 0 (the default) reproduces the historic
    /// unseeded stream, so existing figures are unchanged.
    pub seed: u64,
    /// Engine shards: regions are partitioned round-robin onto this many
    /// parallel sub-engines whose merged dispatch order is byte-identical
    /// to the sequential engine (see `neutrino_netsim::shard`). Defaults
    /// to the process-wide [`set_shards`] value; 1 runs sequentially. The
    /// engine itself degrades to sequential when jitter or faults make
    /// the link table sequence-sensitive.
    pub shards: usize,
}

impl ExperimentSpec {
    /// A spec with defaults for everything but the system and workload.
    pub fn new(config: SystemConfig, workload: Workload) -> Self {
        ExperimentSpec {
            config,
            layout: RegionLayout::default(),
            workload,
            horizon: Duration::from_secs(120),
            failures: Vec::new(),
            uecfg: UePopConfig::default(),
            links: LinkProfile::default(),
            seed: 0,
            shards: shards(),
        }
    }
}

/// Engine-level perf record of one `run_experiment` call, accumulated in a
/// thread-local so a sweep worker can attribute simulator throughput to the
/// figure cell it just executed (cells run wholly on one worker thread).
#[derive(Debug, Clone, Copy)]
pub struct RunPerf {
    /// Events the engine processed during the run.
    pub events_processed: u64,
    /// Host time the engine spent inside `run_until`.
    pub wall: std::time::Duration,
}

thread_local! {
    static RUN_PERF: RefCell<Vec<RunPerf>> = const { RefCell::new(Vec::new()) };
}

/// Drains the calling thread's accumulated per-run perf records.
pub fn drain_run_perf() -> Vec<RunPerf> {
    RUN_PERF.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Results of one run.
#[derive(Debug)]
pub struct RunResults {
    /// PCT distributions (milliseconds) per executed procedure kind.
    pub pct: BTreeMap<ProcedureKind, Percentiles>,
    /// Probe-UE interruption windows.
    pub windows: Vec<ProcedureWindow>,
    /// Procedures started / completed.
    pub started: u64,
    /// Critical paths completed.
    pub completed: u64,
    /// Re-attaches performed.
    pub re_attached: u64,
    /// Arrivals skipped because the UE was mid-procedure.
    pub skipped_busy: u64,
    /// S1AP retransmissions the UE population sent.
    pub retransmissions: u64,
    /// Procedures UEs abandoned after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Admission `Reject` frames UEs received.
    pub rejected: u64,
    /// Largest engine queue depth across control-plane nodes (CTAs, CPFs,
    /// UPFs) over the whole run.
    pub max_queue_depth: usize,
    /// Procedures still in flight when the run ended (0 after a fully
    /// drained run).
    pub incomplete: u64,
    /// Explicit procedure failures: procedures still incomplete at the end
    /// of the run, plus procedures the CTA's ACK-timeout scan pruned from
    /// the log (their replication never converged — previously these
    /// silently vanished from all accounting).
    pub failed_procedures: u64,
    /// Peak total CTA log bytes (Fig. 17).
    pub max_log_bytes: usize,
    /// Aggregated CTA counters.
    pub cta: CtaMetrics,
    /// Aggregated CPF counters.
    pub cpf: CpfMetrics,
    /// Engine throughput for this run (events processed, wall time). Not
    /// serialized into figure outputs — wall-clock varies run to run.
    pub sim: SimStats,
    /// Cross-node consistency audit: one pass shortly after each injected
    /// failure plus a final pass at the end of the run. `None` when the run
    /// injected no failures.
    pub audit: Option<AuditReport>,
}

impl RunResults {
    /// Summary of one procedure kind's PCT (NaN-filled when absent).
    pub fn summary(&mut self, kind: ProcedureKind) -> Summary {
        self.pct.entry(kind).or_default().summary()
    }

    /// Median PCT across every recorded procedure (milliseconds).
    pub fn median_pct_ms(&mut self) -> f64 {
        let mut all = Percentiles::new();
        for p in self.pct.values() {
            all.merge(p);
        }
        all.median()
    }
}

/// The CPF the deployment's rings make primary for a UE (victim selection
/// in failure experiments; mirrors the UE population's region routing).
pub fn primary_cpf_for(
    config: &SystemConfig,
    layout: RegionLayout,
    ue: neutrino_common::UeId,
) -> Option<CpfId> {
    let mut layout = layout;
    layout.replicas = config.replicas;
    let deployment = neutrino_geo::Deployment::build(layout);
    // All workload traffic enters region 0 (see `Cluster::build`).
    let region = &deployment.regions()[0];
    deployment.ring_stack(region.id)?.primary(ue)
}

/// Rewrites generic handover arrivals to the system's handover flavor:
/// proactive geo-replication turns a handover-with-CPF-change into a fast
/// handover (§4.3).
pub fn adapt_workload(config: &SystemConfig, workload: Workload) -> Workload {
    let proactive = config.handover == HandoverPolicy::Proactive;
    Workload::new(workload.into_arrivals().map(move |mut a: Arrival| {
        if proactive && a.kind == ProcedureKind::HandoverWithCpfChange {
            a.kind = ProcedureKind::FastHandover;
        }
        a
    }))
}

/// Runs one experiment to completion and extracts everything the figures
/// need.
pub fn run_experiment(spec: ExperimentSpec) -> RunResults {
    let workload = adapt_workload(&spec.config, spec.workload);
    // Runaway-loop budget scales with the horizon: a genuine feedback loop
    // trips it with a descriptive panic (virtual time, heap size, deepest
    // backlog) instead of the old silent 2B-event stop.
    let mut cluster = Cluster::build_with_sim(
        spec.config,
        spec.layout,
        workload,
        spec.uecfg,
        spec.links,
        SimConfig::for_horizon(spec.horizon),
        spec.seed,
        spec.shards,
    );
    for f in &spec.failures {
        cluster.fail_cpf_at(f.at, f.cpf);
    }
    // The horizon bounds stragglers (retry loops after unrecoverable
    // failures); the workload itself ends the run in the common case.
    // Failure runs execute in segments so the consistency audit can observe
    // the cluster inside each post-failure window; the audit is read-only
    // and segmented `run_until` calls process the identical event stream,
    // so fault-free runs and failure runs stay byte-reproducible.
    let horizon_end = Instant::ZERO + spec.horizon;
    let audit = if spec.failures.is_empty() {
        cluster.run_until(horizon_end);
        None
    } else {
        let mut report = AuditReport::default();
        let mut pauses: Vec<Instant> = spec
            .failures
            .iter()
            .map(|f| f.at + Duration::from_millis(2))
            .collect();
        pauses.sort_unstable();
        for pause in pauses {
            if pause < horizon_end {
                cluster.run_until(pause);
                report.merge(audit_cluster(&mut cluster));
            }
        }
        cluster.run_until(horizon_end);
        report.merge(audit_cluster(&mut cluster));
        Some(report)
    };
    let sim = cluster.sim.sim_stats();
    RUN_PERF.with(|p| {
        p.borrow_mut().push(RunPerf {
            events_processed: sim.events_processed,
            wall: sim.wall,
        })
    });
    let results = cluster.take_results();
    let cta = cluster.cta_metrics();
    let max_queue_depth = cluster.max_control_queue_depth();
    RunResults {
        pct: results.pct,
        windows: results.windows,
        started: results.started,
        completed: results.completed,
        re_attached: results.re_attached,
        skipped_busy: results.skipped_busy,
        retransmissions: results.retransmissions,
        retries_exhausted: results.retries_exhausted,
        rejected: results.rejected,
        max_queue_depth,
        incomplete: results.incomplete,
        failed_procedures: results.incomplete + cta.timeout_pruned,
        max_log_bytes: cluster.max_log_bytes(),
        cta,
        cpf: cluster.cpf_metrics(),
        sim,
        audit,
    }
}
