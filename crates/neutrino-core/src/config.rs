//! System configurations: the §6.2 baselines and Neutrino variants as data.

use neutrino_codec::CodecKind;
use neutrino_common::time::Duration;
use neutrino_cpf::ReplicationMode;
use neutrino_cta::{AdmissionParams, FailoverPolicy};

/// Which published system a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// The paper's system.
    Neutrino,
    /// Existing EPC (modified OpenAirInterface, §6.2).
    ExistingEpc,
    /// DPCM \[37\]: device-side state, parallelized control operations.
    Dpcm,
    /// SkyCore \[40\]: per-message state broadcast.
    SkyCore,
}

/// How inter-region handovers run (§4.3 / Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoverPolicy {
    /// UE state migrates to the target before the handover completes
    /// ("Neutrino - Default", and all non-Neutrino baselines).
    MigrateOnDemand,
    /// The target already holds a proactive level-2 replica: fast handover
    /// ("Neutrino - Proactive").
    Proactive,
}

/// CPU provisioning of the simulated nodes, mirroring §5's "five CPF
/// instances, each running on two CPU cores (one for processing requests
/// and the second one for state synchronization)".
#[derive(Debug, Clone, Copy)]
pub struct CpuProfile {
    /// Request-processing cores per CPF (the second, sync core is modeled by
    /// not charging checkpoint *encoding* to this core — §4.2.2's
    /// non-blocking replication).
    pub cpf_cores: usize,
    /// Cores per CTA (DPDK producer/consumer threads).
    pub cta_cores: usize,
    /// Cores per UPF.
    pub upf_cores: usize,
    /// Cores of the traffic-generator node (never the bottleneck).
    pub uepop_cores: usize,
    /// Fixed per-message state-machine cost on a CPF besides serialization
    /// (hash lookups, state mutation).
    pub cpf_state_update: Duration,
    /// Per-message lock/checkpoint overhead a CPF pays when replicating on
    /// *every* message (Fig. 15's "frequent state locking").
    pub per_message_lock: Duration,
    /// Per-message routing cost on the CTA.
    pub cta_route: Duration,
    /// In-memory log append cost per logged message (a map insert + clone;
    /// §6.7.2 shows it is negligible — but not zero).
    pub cta_log_append: Duration,
    /// S11 session-table operation cost on the UPF.
    pub upf_s11: Duration,
    /// Global scale on CPF service times, calibrating absolute saturation
    /// points to the paper's testbed: with 5 CPF instances, existing EPC
    /// saturates near 60K attach procedures/s (§6.3, Fig. 8). The *relative*
    /// behavior of the systems comes entirely from the measured codec costs;
    /// this factor only positions the knees on the paper's x-axis (the
    /// authors' Xeon cores run a full OAI stack per message; our CPF state
    /// machine is far leaner).
    pub cpf_scale: f64,
}

impl Default for CpuProfile {
    fn default() -> Self {
        CpuProfile {
            cpf_cores: 1,
            cta_cores: 4,
            upf_cores: 4,
            uepop_cores: 64,
            cpf_state_update: Duration::from_nanos(800),
            per_message_lock: Duration::from_micros(3),
            cta_route: Duration::from_nanos(400),
            cta_log_append: Duration::from_nanos(150),
            upf_s11: Duration::from_micros(2),
            cpf_scale: 8.0,
        }
    }
}

/// A complete system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which system this models.
    pub kind: SystemKind,
    /// Display name for experiment output.
    pub name: &'static str,
    /// Control-message serialization.
    pub codec: CodecKind,
    /// State replication mode.
    pub replication: ReplicationMode,
    /// CTA failure recovery policy.
    pub failover: FailoverPolicy,
    /// Whether the CTA keeps the in-memory message log.
    pub logging: bool,
    /// Handover policy.
    pub handover: HandoverPolicy,
    /// DPCM's parallel UPF interaction.
    pub parallel_upf: bool,
    /// DPCM's operation parallelism \[61\]: device-provided state lets the
    /// CPF overlap request parsing with response building, so a message
    /// charges `max(parse, build)` instead of their sum.
    pub parallel_ops: bool,
    /// Whether CPFs refuse to serve stale state.
    pub enforce_consistency: bool,
    /// Backup replica count N.
    pub replicas: usize,
    /// CPU provisioning.
    pub cpu: CpuProfile,
    /// CTA ingress admission gate (overload control). `None` — the stock
    /// setting for every baseline — admits everything, preserving
    /// byte-identical behavior with pre-overload-control runs.
    pub admission: Option<AdmissionParams>,
}

impl SystemConfig {
    /// This configuration with the CTA admission gate enabled.
    pub fn with_admission(mut self, params: AdmissionParams) -> Self {
        self.admission = Some(params);
        self
    }
}

impl SystemConfig {
    /// Neutrino as evaluated (§6.2): optimized FlatBuffers, per-procedure
    /// replication, message log, replay-based recovery, proactive
    /// geo-replication.
    pub fn neutrino() -> Self {
        SystemConfig {
            kind: SystemKind::Neutrino,
            name: "Neutrino",
            codec: CodecKind::FastbufOptimized,
            replication: ReplicationMode::PerProcedure,
            failover: FailoverPolicy::ReplayFromLog,
            logging: true,
            handover: HandoverPolicy::Proactive,
            parallel_upf: false,
            parallel_ops: false,
            enforce_consistency: true,
            replicas: 2,
            cpu: CpuProfile::default(),
            admission: None,
        }
    }

    /// "Neutrino - Default" (Fig. 11): no proactive replication in the
    /// handover path; state migrates on demand.
    pub fn neutrino_default_handover() -> Self {
        SystemConfig {
            name: "Neutrino-Default",
            handover: HandoverPolicy::MigrateOnDemand,
            ..Self::neutrino()
        }
    }

    /// Fig. 15's "No Rep": Neutrino without replication or logging.
    pub fn neutrino_no_replication() -> Self {
        SystemConfig {
            name: "Neutrino-NoRep",
            replication: ReplicationMode::None,
            logging: false,
            failover: FailoverPolicy::ReAttach,
            ..Self::neutrino()
        }
    }

    /// Fig. 15's "Per Msg Rep": Neutrino with per-message replication.
    pub fn neutrino_per_message() -> Self {
        SystemConfig {
            name: "Neutrino-PerMsg",
            replication: ReplicationMode::PerMessage,
            ..Self::neutrino()
        }
    }

    /// Fig. 16's "No logging": Neutrino with the CTA message log disabled.
    pub fn neutrino_no_logging() -> Self {
        SystemConfig {
            name: "Neutrino-NoLog",
            logging: false,
            ..Self::neutrino()
        }
    }

    /// Existing EPC (§6.2): ASN.1, no replication, re-attach on failure,
    /// DPDK I/O (the CTA still front-ends as the load balancer \[14\]).
    pub fn existing_epc() -> Self {
        SystemConfig {
            kind: SystemKind::ExistingEpc,
            name: "ExistingEPC",
            codec: CodecKind::Asn1Per,
            replication: ReplicationMode::None,
            failover: FailoverPolicy::ReAttach,
            logging: false,
            handover: HandoverPolicy::MigrateOnDemand,
            parallel_upf: false,
            parallel_ops: false,
            enforce_consistency: true,
            replicas: 0,
            cpu: CpuProfile::default(),
            admission: None,
        }
    }

    /// DPCM (§6.2): existing EPC with client-side state and parallelized
    /// control operations \[61\].
    pub fn dpcm() -> Self {
        SystemConfig {
            kind: SystemKind::Dpcm,
            name: "DPCM",
            parallel_upf: true,
            parallel_ops: true,
            ..Self::existing_epc()
        }
    }

    /// SkyCore (§6.2): existing EPC with user state synchronized on each
    /// control message \[40\].
    pub fn skycore() -> Self {
        SystemConfig {
            kind: SystemKind::SkyCore,
            name: "SkyCore",
            codec: CodecKind::Asn1Per,
            replication: ReplicationMode::PerMessage,
            failover: FailoverPolicy::AnyPeer,
            logging: false,
            handover: HandoverPolicy::MigrateOnDemand,
            parallel_upf: false,
            parallel_ops: false,
            enforce_consistency: false,
            replicas: 0,
            cpu: CpuProfile::default(),
            admission: None,
        }
    }

    /// The four §6.2 comparison systems in the order the figures list them.
    pub fn comparison_set() -> Vec<SystemConfig> {
        vec![
            Self::existing_epc(),
            Self::dpcm(),
            Self::skycore(),
            Self::neutrino(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_differ_in_the_right_knobs() {
        let n = SystemConfig::neutrino();
        let e = SystemConfig::existing_epc();
        let d = SystemConfig::dpcm();
        let s = SystemConfig::skycore();
        assert_eq!(n.codec, CodecKind::FastbufOptimized);
        assert_eq!(e.codec, CodecKind::Asn1Per);
        assert!(d.parallel_upf && !e.parallel_upf);
        assert_eq!(s.replication, ReplicationMode::PerMessage);
        assert_eq!(n.replication, ReplicationMode::PerProcedure);
        assert!(n.logging && !e.logging);
    }

    #[test]
    fn variants_share_the_neutrino_base() {
        let v = SystemConfig::neutrino_per_message();
        assert_eq!(v.codec, CodecKind::FastbufOptimized);
        assert_eq!(v.replication, ReplicationMode::PerMessage);
        let v = SystemConfig::neutrino_no_logging();
        assert!(!v.logging);
        assert_eq!(v.replication, ReplicationMode::PerProcedure);
        let v = SystemConfig::neutrino_default_handover();
        assert_eq!(v.handover, HandoverPolicy::MigrateOnDemand);
    }

    #[test]
    fn comparison_set_has_four_distinct_systems() {
        let set = SystemConfig::comparison_set();
        assert_eq!(set.len(), 4);
        let kinds: std::collections::HashSet<_> = set.iter().map(|c| c.kind).collect();
        assert_eq!(kinds.len(), 4);
    }
}
