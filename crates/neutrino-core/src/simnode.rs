//! `netsim` adapters around the protocol cores.
//!
//! Each adapter translates node outputs into simulator sends and charges the
//! calibrated per-message CPU costs (§6.1's substitute for running on real
//! cores — see DESIGN.md).

use crate::cluster::SimMsg;
use crate::config::{CpuProfile, SystemConfig};
use neutrino_common::time::Duration;
use neutrino_common::{CpfId, CtaId, UpfId};
use neutrino_cpf::{CpfCore, CpfOutput, ReplicationMode};
use neutrino_cta::{CtaCore, CtaOutput};
use neutrino_messages::costs::{state_sync_cost, CostTable};
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::{Direction, MessageKind, SysMsg};
use neutrino_netsim::{Node, NodeEvent, NodeId, Outbox};
use neutrino_upf::{UpfCore, UpfOutput};
use std::any::Any;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The UE/BS population node id.
pub const UEPOP_NODE: NodeId = NodeId::new(0);

/// Simulator node id of a CTA. The band bases live in
/// [`neutrino_messages::flow`] so [`Role::of_node_raw`]
/// (the flow-coverage witness mapping) can never drift from the layout here.
///
/// [`Role::of_node_raw`]: neutrino_messages::flow::Role::of_node_raw
pub fn cta_node(id: CtaId) -> NodeId {
    NodeId::new(neutrino_messages::flow::CTA_NODE_BAND + id.raw())
}

/// Simulator node id of a CPF.
pub fn cpf_node(id: CpfId) -> NodeId {
    NodeId::new(neutrino_messages::flow::CPF_NODE_BAND + id.raw())
}

/// Simulator node id of a UPF.
pub fn upf_node(id: UpfId) -> NodeId {
    NodeId::new(neutrino_messages::flow::UPF_NODE_BAND + id.raw())
}

/// For each `(procedure, uplink message)` pair, the downlink kind the CPF
/// answers with (if the template's next step is a downlink) — used to charge
/// the response-encoding cost on the message that produces it.
fn response_kind(proc: ProcedureKind, ul: MessageKind) -> Option<MessageKind> {
    static MAP: OnceLock<HashMap<(ProcedureKind, MessageKind), MessageKind>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut m = HashMap::new();
        for kind in ProcedureKind::ALL {
            let t = kind.template();
            for (i, step) in t.steps.iter().enumerate() {
                if step.direction == Direction::Uplink {
                    if let Some(next) = t.steps.get(i + 1) {
                        if next.direction == Direction::Downlink {
                            m.insert((*kind, step.kind), next.kind);
                        }
                    }
                }
            }
        }
        m
    })
    .get(&(proc, ul))
    .copied()
}

/// Service time a CPF charges for one incoming system message (scaled by
/// [`CpuProfile::cpf_scale`]).
pub fn cpf_service_time(config: &SystemConfig, msg: &SysMsg) -> Duration {
    raw_cpf_service_time(config, msg).mul_f64(config.cpu.cpf_scale)
}

fn raw_cpf_service_time(config: &SystemConfig, msg: &SysMsg) -> Duration {
    let costs = CostTable::baked();
    let codec = config.codec;
    let cpu = &config.cpu;
    let cost_of = |kind: MessageKind| {
        costs
            .sim_cost(codec, kind)
            .expect("baked table covers all kinds")
    };
    match msg {
        SysMsg::Control(env) => {
            // Parse the request, run the state machine, build the response
            // (when the next template step is a downlink). DPCM overlaps
            // parsing with response building (device-provided state).
            let parse = cost_of(env.msg.kind()).access;
            let build = response_kind(env.proc_kind, env.msg.kind())
                .map(|resp| cost_of(resp).encode)
                .unwrap_or(Duration::ZERO);
            let mut t = if config.parallel_ops {
                parse.max(build) + cpu.cpf_state_update
            } else {
                parse + build + cpu.cpf_state_update
            };
            if config.replication == ReplicationMode::PerMessage && config.enforce_consistency {
                // Fig. 15: *consistent* per-message checkpointing locks the
                // UE state on the processing path. SkyCore's asynchronous
                // broadcast skips the lock — and the consistency (§3.1).
                // (Checkpoint *encoding* runs on the dedicated sync core and
                // is not charged, §4.2.2.)
                t += cpu.per_message_lock;
            }
            t
        }
        // Replica duty: parse + apply the checkpoint. State snapshots are
        // system-internal (each system serializes them with its own code,
        // not the ASN.1 control-plane codec).
        SysMsg::StateSync(_) => {
            state_sync_cost(neutrino_codec::CodecKind::FastbufOptimized).access
                + cpu.cpf_state_update
        }
        // Replaying n logged messages re-parses and re-applies each.
        SysMsg::Replay(r) => {
            let mut t = Duration::ZERO;
            for env in &r.messages {
                t += cost_of(env.msg.kind()).access + cpu.cpf_state_update;
            }
            t
        }
        // The pending downlink's encoding was charged on the uplink message
        // that triggered the S11 op; resuming is bookkeeping.
        SysMsg::S11Resp(_) => cpu.cpf_state_update,
        SysMsg::FetchStateResp { .. } => {
            state_sync_cost(neutrino_codec::CodecKind::FastbufOptimized).access
        }
        // Paging an idle UE encodes a Paging message.
        SysMsg::DdnRequest { .. } => cost_of(MessageKind::Paging).encode + cpu.cpf_state_update,
        SysMsg::MigrationAck { .. }
        | SysMsg::MarkOutdated(_)
        | SysMsg::FetchState { .. }
        | SysMsg::SyncAck(_)
        | SysMsg::ResyncRequest { .. }
        | SysMsg::ResyncBehind { .. } => Duration::from_nanos(300),
        _ => Duration::from_nanos(200),
    }
}

/// A CPF inside the simulator.
pub struct CpfNode {
    core: CpfCore,
    config: SystemConfig,
}

impl CpfNode {
    /// Wraps a CPF core.
    pub fn new(core: CpfCore, config: SystemConfig) -> Self {
        CpfNode { core, config }
    }

    /// The wrapped core (result extraction).
    pub fn core(&self) -> &CpfCore {
        &self.core
    }

    fn dispatch(outs: Vec<CpfOutput>, out: &mut Outbox<SimMsg>) {
        for o in outs {
            match o {
                CpfOutput::ToCta { cta, msg } => out.send(cta_node(cta), SimMsg::Sys(msg)),
                CpfOutput::ToCpf { cpf, msg } => out.send(cpf_node(cpf), SimMsg::Sys(msg)),
                CpfOutput::ToUpf { upf, msg } => out.send(upf_node(upf), SimMsg::Sys(msg)),
            }
        }
    }
}

impl Node<SimMsg> for CpfNode {
    fn service_time(&self, msg: &SimMsg) -> Duration {
        match msg {
            SimMsg::Sys(sys) => cpf_service_time(&self.config, sys),
            _ => Duration::ZERO,
        }
    }

    fn handle(&mut self, event: NodeEvent<SimMsg>, out: &mut Outbox<SimMsg>) {
        if let NodeEvent::Message {
            msg: SimMsg::Sys(sys),
            ..
        } = event
        {
            Self::dispatch(self.core.handle(sys), out);
        }
    }

    fn cores(&self) -> usize {
        self.config.cpu.cpf_cores
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Timer id of the CTA's periodic ACK scan.
const CTA_SCAN_TIMER: u64 = 1;

/// A CTA inside the simulator.
pub struct CtaNode {
    core: CtaCore,
    cpu: CpuProfile,
    logging: bool,
    scan_interval: Duration,
    scan_armed: bool,
}

impl CtaNode {
    /// Wraps a CTA core; the scan timer arms on first traffic.
    pub fn new(core: CtaCore, cpu: CpuProfile, logging: bool, scan_interval: Duration) -> Self {
        CtaNode {
            core,
            cpu,
            logging,
            scan_interval,
            scan_armed: false,
        }
    }

    /// The wrapped core (log size metrics).
    pub fn core(&self) -> &CtaCore {
        &self.core
    }

    /// Mutable core access (routing introspection).
    pub fn core_mut(&mut self) -> &mut CtaCore {
        &mut self.core
    }

    fn dispatch(outs: Vec<CtaOutput>, out: &mut Outbox<SimMsg>) {
        for o in outs {
            match o {
                CtaOutput::ToCpf { cpf, msg } => out.send(cpf_node(cpf), SimMsg::Sys(msg)),
                CtaOutput::ToBs { msg, .. } => out.send(UEPOP_NODE, SimMsg::Sys(msg)),
            }
        }
    }
}

impl Node<SimMsg> for CtaNode {
    fn service_time(&self, msg: &SimMsg) -> Duration {
        match msg {
            SimMsg::Sys(SysMsg::Control(env)) => {
                let log = if self.logging && env.direction == neutrino_messages::Direction::Uplink {
                    self.cpu.cta_log_append
                } else {
                    Duration::ZERO
                };
                self.cpu.cta_route + log
            }
            SimMsg::Sys(_) => Duration::from_nanos(200),
            _ => Duration::ZERO,
        }
    }

    fn handle(&mut self, event: NodeEvent<SimMsg>, out: &mut Outbox<SimMsg>) {
        match event {
            NodeEvent::Message {
                msg: SimMsg::Sys(sys),
                ..
            } => {
                if !self.scan_armed {
                    self.scan_armed = true;
                    out.set_timer(self.scan_interval, CTA_SCAN_TIMER);
                }
                let outs = self.core.handle(sys, out.now());
                Self::dispatch(outs, out);
            }
            NodeEvent::Timer { id: CTA_SCAN_TIMER } => {
                let outs = self.core.scan(out.now());
                Self::dispatch(outs, out);
                out.set_timer(self.scan_interval, CTA_SCAN_TIMER);
            }
            _ => {}
        }
    }

    fn cores(&self) -> usize {
        self.cpu.cta_cores
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A UPF inside the simulator.
pub struct UpfNode {
    core: UpfCore,
    cpu: CpuProfile,
    downlink_log: Vec<(neutrino_common::time::Instant, neutrino_common::UeId, bool)>,
}

impl UpfNode {
    /// Wraps a UPF core.
    pub fn new(core: UpfCore, cpu: CpuProfile) -> Self {
        UpfNode {
            core,
            cpu,
            downlink_log: Vec::new(),
        }
    }

    /// Downlink packet outcomes observed at this UPF: `(time, ue,
    /// delivered)` — `false` marks the §3.1 "core cannot reach the UE"
    /// case.
    pub fn downlink_log(&self) -> &[(neutrino_common::time::Instant, neutrino_common::UeId, bool)] {
        &self.downlink_log
    }

    /// The wrapped core (session-table access for data-plane checks).
    pub fn core(&self) -> &UpfCore {
        &self.core
    }

    /// Mutable core access.
    pub fn core_mut(&mut self) -> &mut UpfCore {
        &mut self.core
    }
}

impl Node<SimMsg> for UpfNode {
    fn service_time(&self, msg: &SimMsg) -> Duration {
        match msg {
            SimMsg::Sys(SysMsg::S11(_)) => self.cpu.upf_s11,
            SimMsg::Sys(SysMsg::DownlinkData { .. }) => Duration::from_nanos(500),
            _ => Duration::ZERO,
        }
    }

    fn handle(&mut self, event: NodeEvent<SimMsg>, out: &mut Outbox<SimMsg>) {
        if let NodeEvent::Message {
            msg: SimMsg::Sys(sys),
            ..
        } = event
        {
            for o in self.core.handle(sys) {
                match o {
                    UpfOutput::ToCpf { cpf, msg } => out.send(cpf_node(cpf), SimMsg::Sys(msg)),
                    UpfOutput::ToCta { cta, msg } => out.send(cta_node(cta), SimMsg::Sys(msg)),
                    UpfOutput::Delivered { ue } => {
                        self.downlink_log.push((out.now(), ue, true));
                    }
                    UpfOutput::Undeliverable { ue } => {
                        self.downlink_log.push((out.now(), ue, false));
                    }
                }
            }
        }
    }

    fn cores(&self) -> usize {
        self.cpu.upf_cores
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_codec::CodecKind;

    #[test]
    fn node_bands_agree_with_flow_roles() {
        use neutrino_messages::flow::Role;
        assert_eq!(Role::of_node_raw(UEPOP_NODE.raw()), Some(Role::UePop));
        assert_eq!(Role::of_node_raw(cta_node(CtaId::new(3)).raw()), Some(Role::Cta));
        assert_eq!(Role::of_node_raw(cpf_node(CpfId::new(7)).raw()), Some(Role::Cpf));
        assert_eq!(Role::of_node_raw(upf_node(UpfId::new(9)).raw()), Some(Role::Upf));
        assert_eq!(Role::of_node_raw(NodeId::EXTERNAL.raw()), Some(Role::Harness));
    }

    #[test]
    fn response_kind_follows_templates() {
        assert_eq!(
            response_kind(ProcedureKind::InitialAttach, MessageKind::InitialUeMessage),
            Some(MessageKind::AuthenticationRequest)
        );
        assert_eq!(
            response_kind(
                ProcedureKind::InitialAttach,
                MessageKind::SecurityModeComplete
            ),
            Some(MessageKind::InitialContextSetupRequest)
        );
        assert_eq!(
            response_kind(ProcedureKind::TrackingAreaUpdate, MessageKind::TauRequest),
            Some(MessageKind::TauAccept)
        );
        // The attach's final uplink has no downlink response.
        assert_eq!(
            response_kind(ProcedureKind::InitialAttach, MessageKind::AttachComplete),
            None
        );
    }

    #[test]
    fn epc_control_costs_exceed_neutrino() {
        let epc = SystemConfig::existing_epc();
        let neu = SystemConfig::neutrino();
        let env = neutrino_messages::Envelope::uplink(
            neutrino_common::UeId::new(1),
            neutrino_common::ProcedureId::FIRST,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(1),
        );
        let m = SysMsg::Control(env);
        let te = cpf_service_time(&epc, &m);
        let tn = cpf_service_time(&neu, &m);
        assert!(
            te.as_nanos() > 2 * tn.as_nanos(),
            "EPC {te:?} must be well above Neutrino {tn:?}"
        );
        assert_eq!(epc.codec, CodecKind::Asn1Per);
    }

    #[test]
    fn per_message_replication_charges_the_lock() {
        let neu = SystemConfig::neutrino();
        let per_msg = SystemConfig::neutrino_per_message();
        let env = neutrino_messages::Envelope::uplink(
            neutrino_common::UeId::new(1),
            neutrino_common::ProcedureId::FIRST,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(1),
        );
        let m = SysMsg::Control(env);
        let base = cpf_service_time(&neu, &m);
        let locked = cpf_service_time(&per_msg, &m);
        assert_eq!(
            locked - base,
            neu.cpu.per_message_lock.mul_f64(neu.cpu.cpf_scale),
            "exactly the (scaled) lock overhead"
        );
    }
}
