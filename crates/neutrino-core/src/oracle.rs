//! Pluggable in-run invariant oracles.
//!
//! The [`audit`](crate::audit) module checks cross-node consistency once,
//! at hand-picked instants. This module generalizes it into an [`Invariant`]
//! trait a checking harness can evaluate at *configurable sim-time
//! intervals* over any cluster: each invariant inspects the paused cluster
//! read-only (never injecting events, so the deterministic event schedule
//! is unperturbed) and reports violations as structured traces.
//!
//! The invariant *catalog* — liveness, bounded retry, monotonic checkpoint
//! ids — lives in `neutrino-check`; this module owns the trait, the
//! violation type, and [`ConsistencyInvariant`], the oracle form of the
//! end-of-run audit.

use crate::audit::{audit_cluster, Divergence};
use crate::cluster::Cluster;
use crate::config::{SystemConfig, SystemKind};
use neutrino_common::time::Instant;
use neutrino_common::UeId;

/// One observed invariant violation: a structured trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that fired (its stable catalog name).
    pub invariant: &'static str,
    /// Virtual time of the oracle pass that observed it.
    pub at: Instant,
    /// The UE concerned, when the violation is per-UE.
    pub ue: Option<UeId>,
    /// Human-readable specifics.
    pub detail: String,
}

/// What an invariant sees at each oracle pass: the paused cluster plus the
/// pass's position in the run. All inspection must be read-only — the
/// engine's event stream continues from exactly this state.
pub struct OracleCtx<'a> {
    /// The paused cluster.
    pub cluster: &'a mut Cluster,
    /// Virtual time of this pass.
    pub now: Instant,
    /// True on the last pass, after the horizon: end-of-run-only checks
    /// (e.g. "no procedure left in flight") gate on this.
    pub final_pass: bool,
}

/// A pluggable, possibly stateful invariant checked at sim-time intervals.
///
/// Implementations may keep cross-pass state (watermarks, counters); a
/// fresh instance is created per run, and passes arrive in increasing
/// virtual-time order.
pub trait Invariant {
    /// Stable catalog name (used in violation traces and scenario specs).
    fn name(&self) -> &'static str;

    /// Whether this invariant is a guarantee of the given system. Scenario
    /// authors use this to pick defaults; an explicitly requested invariant
    /// runs regardless (e.g. demonstrating that a baseline violates it).
    fn applies(&self, config: &SystemConfig) -> bool {
        let _ = config;
        true
    }

    /// Inspects the paused cluster; returns this pass's violations.
    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation>;
}

/// The end-of-run consistency audit as an in-run invariant: at every pass,
/// each UE the CTA saw complete a procedure must be servable from some live
/// CPF at (or beyond) that procedure, or rebuildable by log replay, and no
/// UPF session may be orphaned. Neutrino maintains this *continuously*;
/// re-attach baselines do not.
#[derive(Debug, Default)]
pub struct ConsistencyInvariant;

/// Catalog name of [`ConsistencyInvariant`].
pub const CONSISTENCY: &str = "consistency";

impl Invariant for ConsistencyInvariant {
    fn name(&self) -> &'static str {
        CONSISTENCY
    }

    fn applies(&self, config: &SystemConfig) -> bool {
        // Only Neutrino with the message log guarantees the invariant
        // between a failure and the first post-failure contact.
        config.kind == SystemKind::Neutrino && config.logging
    }

    fn check(&mut self, ctx: &mut OracleCtx<'_>) -> Vec<Violation> {
        let report = audit_cluster(ctx.cluster);
        report
            .divergences
            .into_iter()
            .map(|d| Violation {
                invariant: CONSISTENCY,
                at: ctx.now,
                ue: Some(d.ue()),
                detail: match d {
                    Divergence::MissingState { expected, .. } => {
                        format!("no live copy; CTA expects procedure {}", expected.raw())
                    }
                    Divergence::StaleState { held, expected, .. } => format!(
                        "freshest live copy at procedure {}, CTA expects {}, replay cannot close",
                        held.raw(),
                        expected.raw()
                    ),
                    Divergence::OrphanedSession { upf, .. } => {
                        format!("orphaned session at UPF {}", upf.raw())
                    }
                },
            })
            .collect()
    }
}
