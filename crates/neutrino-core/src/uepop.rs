//! The UE/BS population: the paper's DPDK traffic generator (§5) as a
//! simulator node.
//!
//! One node emulates every UE and base station: it starts control
//! procedures according to a workload schedule, walks each procedure's
//! template (sending uplink steps, reacting to downlink steps), measures
//! procedure completion times at the UE exactly as §6 defines them
//! (including re-attach time after failures), and applies UE-side
//! serialization costs.

use crate::cluster::SimMsg;
use crate::simnode::cta_node;
use neutrino_codec::CodecKind;
use neutrino_common::stats::Percentiles;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::{BsId, CtaId, ProcedureId, UeId};
use neutrino_messages::costs::CostTable;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::{Direction, Envelope, SysMsg};
use neutrino_netsim::{Node, NodeEvent, Outbox};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// One scheduled procedure start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the UE initiates the procedure.
    pub at: Instant,
    /// Which UE.
    pub ue: UeId,
    /// Which procedure.
    pub kind: ProcedureKind,
}

/// A time-ordered stream of procedure starts.
pub struct Workload {
    arrivals: Box<dyn Iterator<Item = Arrival> + Send>,
}

impl Workload {
    /// Wraps an arrival iterator (must be time-ordered).
    pub fn new(arrivals: impl Iterator<Item = Arrival> + Send + 'static) -> Self {
        Workload {
            arrivals: Box::new(arrivals),
        }
    }

    /// A workload from a pre-built vector.
    pub fn from_vec(mut v: Vec<Arrival>) -> Self {
        v.sort_by_key(|a| a.at);
        Self::new(v.into_iter())
    }

    /// Unwraps the arrival stream (for adapters).
    pub fn into_arrivals(self) -> Box<dyn Iterator<Item = Arrival> + Send> {
        self.arrivals
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Workload(..)")
    }
}

/// Routing of UEs to regions: a UE with id `u` uses entry `u % len`.
#[derive(Debug, Clone)]
pub struct RegionRoute {
    /// The region's CTA.
    pub cta: CtaId,
    /// The region's base stations (UE `u` camps on `bss[u % len]`).
    pub bss: Vec<BsId>,
}

/// UE population configuration.
#[derive(Debug, Clone)]
pub struct UePopConfig {
    /// Serialization in use on the UE/BS side.
    pub codec: CodecKind,
    /// Region routing table.
    pub routes: Vec<RegionRoute>,
    /// How long a UE waits for a response before retrying.
    pub retry_timeout: Duration,
    /// Retries before giving up and re-attaching.
    pub max_retries: u32,
    /// Total retry *budget* per procedure: retransmissions, reject
    /// re-offers, and re-attach restarts all draw from it. Once spent, the
    /// UE abandons the procedure (`retries_exhausted`) instead of looping
    /// forever — PR 3's give-up → re-attach cycle never terminated when
    /// the CTA stayed unreachable.
    pub max_attempts: u32,
    /// Base of the exponential backoff added on top of a `Reject`'s
    /// `retry_after_ms`. `ZERO` (the default) adds only the deterministic
    /// jitter.
    pub backoff_base: Duration,
    /// Ceiling of the exponential backoff term.
    pub backoff_cap: Duration,
    /// Record every k-th completed PCT sample (1 = all).
    pub pct_sample_every: u64,
    /// UEs whose data-access interruption windows are recorded (the app
    /// experiments' probe UEs).
    pub record_windows_for: BTreeSet<UeId>,
    /// Generator cores (never the bottleneck).
    pub cores: usize,
}

impl Default for UePopConfig {
    fn default() -> Self {
        UePopConfig {
            codec: CodecKind::FastbufOptimized,
            routes: vec![RegionRoute {
                cta: CtaId::new(0),
                bss: (0..8).map(BsId::new).collect(),
            }],
            retry_timeout: Duration::from_secs(1),
            max_retries: 2,
            max_attempts: 16,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_secs(4),
            pct_sample_every: 1,
            record_windows_for: BTreeSet::new(),
            cores: 64,
        }
    }
}

/// A completed procedure's data-access interruption window at a probe UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcedureWindow {
    /// The UE.
    pub ue: UeId,
    /// The procedure run's id (unique per UE).
    pub procedure: ProcedureId,
    /// What ran.
    pub kind: ProcedureKind,
    /// When the UE initiated it.
    pub start: Instant,
    /// When the UE regained data access (the critical step's arrival).
    pub end: Instant,
}

/// Aggregated results extracted after a run.
#[derive(Debug, Default)]
pub struct UePopResults {
    /// PCT distributions per procedure kind (milliseconds).
    pub pct: BTreeMap<ProcedureKind, Percentiles>,
    /// Interruption windows of probe UEs.
    pub windows: Vec<ProcedureWindow>,
    /// Procedures started.
    pub started: u64,
    /// Procedures whose critical path completed.
    pub completed: u64,
    /// Re-attaches performed (failure recovery).
    pub re_attached: u64,
    /// Arrivals skipped because the UE was mid-procedure.
    pub skipped_busy: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Procedures still in flight when results were extracted (0 after a
    /// fully drained run — the liveness check).
    pub incomplete: u64,
    /// Paging messages received (downlink reachability).
    pub paged: u64,
    /// Procedures abandoned because their retry budget ran out.
    pub retries_exhausted: u64,
    /// `Reject` frames received from the admission gate.
    pub rejected: u64,
    /// `SysMsg` variants delivered to the UE side that the flow contract
    /// says it never receives (misrouted traffic — counted, never silently
    /// swallowed).
    pub unexpected_msgs: u64,
}

#[derive(Debug, Clone)]
struct Active {
    kind: ProcedureKind,
    /// The kind PCT is reported under (survives re-attach recovery).
    report_kind: ProcedureKind,
    procedure: ProcedureId,
    next_step: usize,
    started: Instant,
    critical_done: bool,
    retries: u32,
    last_progress: Instant,
    last_uplink: Option<Envelope>,
    /// Lifetime retry-budget charges (survives re-attach restarts).
    budget_used: u32,
    /// Set while honoring a `Reject`: no re-offer before this instant.
    deferred_until: Option<Instant>,
}

const ARRIVAL_TIMER: u64 = u64::MAX;

/// The splitmix64 finalizer: a stateless bijective mixer, used for the
/// per-(UE, attempt) backoff jitter so no RNG state is shared.
fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The UE/BS population node.
pub struct UePopulation {
    config: UePopConfig,
    workload: Workload,
    pending_arrival: Option<Arrival>,
    active: BTreeMap<UeId, Active>,
    proc_seq: BTreeMap<UeId, u64>,
    /// Which entry of `routes` each UE currently camps on. Everyone starts
    /// on route 0; a UE that exhausts its retries *twice in a row* (its CTA
    /// looks dead, not merely overloaded) advances to the next route —
    /// §4.2.5 scenario 4: "the UE executes the Re-Attach procedure through
    /// a new CTA".
    route_override: BTreeMap<UeId, usize>,
    /// Consecutive give-ups per UE (reset by any completed procedure).
    give_ups: BTreeMap<UeId, u32>,
    results: UePopResults,
    costs: &'static CostTable,
}

impl UePopulation {
    /// Creates the population over a workload.
    pub fn new(config: UePopConfig, workload: Workload) -> Self {
        UePopulation {
            config,
            workload,
            pending_arrival: None,
            active: BTreeMap::new(),
            proc_seq: BTreeMap::new(),
            route_override: BTreeMap::new(),
            give_ups: BTreeMap::new(),
            results: UePopResults::default(),
            costs: CostTable::baked(),
        }
    }

    /// Takes the results (leaves defaults behind).
    pub fn take_results(&mut self) -> UePopResults {
        self.results.incomplete = self.active.len() as u64;
        std::mem::take(&mut self.results)
    }

    /// Read access to results.
    pub fn results(&self) -> &UePopResults {
        &self.results
    }

    /// Mutable access to results. Test harnesses use this to plant
    /// counter states that exercise oracle kill-switches; production
    /// drivers never need it.
    pub fn results_mut(&mut self) -> &mut UePopResults {
        &mut self.results
    }

    /// Number of procedures currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Read-only snapshot of every in-flight procedure, sorted by UE id:
    /// `(ue, started, last_progress, retries)`. Mid-run liveness oracles
    /// use `last_progress` to bound how long a UE may sit without the
    /// retry machinery moving it forward.
    pub fn active_procedures(&self) -> Vec<(UeId, Instant, Instant, u32)> {
        let mut v: Vec<_> = self
            .active
            .iter()
            .map(|(ue, a)| (*ue, a.started, a.last_progress, a.retries))
            .collect();
        v.sort_by_key(|e| e.0.raw());
        v
    }

    /// The population's configuration (retry policy, routes).
    pub fn config(&self) -> &UePopConfig {
        &self.config
    }

    fn route(&self, ue: UeId) -> (BsId, CtaId) {
        let idx = self.route_override.get(&ue).copied().unwrap_or(0);
        let r = &self.config.routes[idx % self.config.routes.len()];
        let bs = r.bss[ue.raw() as usize % r.bss.len().max(1)];
        (bs, r.cta)
    }

    fn next_procedure_id(&mut self, ue: UeId) -> ProcedureId {
        let seq = self.proc_seq.entry(ue).or_insert(0);
        *seq += 1;
        ProcedureId::new(*seq)
    }

    fn send_uplink(&mut self, ue: UeId, step_idx: usize, out: &mut Outbox<SimMsg>) {
        let (bs, cta) = self.route(ue);
        let active = self.active.get_mut(&ue).expect("active");
        let template = active.kind.template();
        let step = template.steps[step_idx];
        debug_assert_eq!(step.direction, Direction::Uplink);
        let mut env = Envelope::uplink(
            ue,
            active.procedure,
            active.kind,
            step.kind.sample(ue.raw()),
        )
        .from_bs(bs);
        if step_idx + 1 == template.steps.len() {
            env = env.ending_procedure();
        }
        active.last_uplink = Some(env.clone());
        out.send(cta_node(cta), SimMsg::Sys(SysMsg::Control(env)));
    }

    fn start_procedure(
        &mut self,
        ue: UeId,
        kind: ProcedureKind,
        report_kind: ProcedureKind,
        started: Instant,
        budget_used: u32,
        out: &mut Outbox<SimMsg>,
    ) {
        let procedure = self.next_procedure_id(ue);
        self.results.started += 1;
        self.active.insert(
            ue,
            Active {
                kind,
                report_kind,
                procedure,
                next_step: 1, // step 0 goes out right now
                started,
                critical_done: false,
                retries: 0,
                last_progress: out.now(),
                last_uplink: None,
                budget_used,
                deferred_until: None,
            },
        );
        self.send_uplink(ue, 0, out);
        out.set_timer(self.config.retry_timeout, ue.raw());
    }

    /// Spends one unit of `ue`'s retry budget. Returns `true` when the
    /// budget is exhausted — the procedure has then been abandoned.
    fn charge_budget(&mut self, ue: UeId) -> bool {
        let a = match self.active.get_mut(&ue) {
            Some(a) => a,
            None => return false,
        };
        a.budget_used += 1;
        if a.budget_used > self.config.max_attempts {
            self.active.remove(&ue);
            self.give_ups.remove(&ue);
            self.results.retries_exhausted += 1;
            true
        } else {
            false
        }
    }

    fn record_completion(&mut self, ue: UeId, now: Instant) {
        let active = self.active.get_mut(&ue).expect("active");
        if active.critical_done {
            return;
        }
        active.critical_done = true;
        self.give_ups.remove(&ue);
        self.results.completed += 1;
        let pct = now.saturating_since(active.started);
        let kind = active.report_kind;
        let every = self.config.pct_sample_every.max(1);
        if self.results.completed.is_multiple_of(every) {
            self.results
                .pct
                .entry(kind)
                .or_default()
                .push_duration_ms(pct);
        }
        if self.config.record_windows_for.contains(&ue) {
            let start = active.started;
            let procedure = active.procedure;
            self.results.windows.push(ProcedureWindow {
                ue,
                procedure,
                kind,
                start,
                end: now,
            });
        }
    }

    fn on_downlink(&mut self, env: Envelope, out: &mut Outbox<SimMsg>) {
        let ue = env.ue;
        let now = out.now();
        // An unsolicited page: respond with a service request (idle →
        // connected) unless a procedure is already running.
        if env.msg.kind() == neutrino_messages::MessageKind::Paging {
            self.results.paged += 1;
            if !self.active.contains_key(&ue) {
                self.start_procedure(
                    ue,
                    ProcedureKind::ServiceRequest,
                    ProcedureKind::ServiceRequest,
                    now,
                    0,
                    out,
                );
            }
            return;
        }
        let matches = self
            .active
            .get(&ue)
            .map(|a| a.procedure == env.procedure)
            .unwrap_or(false);
        if !matches {
            return; // stale or duplicate downlink
        }
        {
            let active = self.active.get_mut(&ue).expect("checked");
            let template = active.kind.template();
            // Accept the downlink if it is the next expected DL step (skip
            // duplicates of already-passed steps).
            let pos = template.steps[active.next_step..]
                .iter()
                .position(|s| s.direction == Direction::Downlink && s.kind == env.msg.kind());
            match pos {
                Some(rel) => active.next_step += rel + 1,
                None => return, // duplicate from a replayed recovery: ignore
            }
            active.last_progress = now;
            active.retries = 0;
        }
        // Did we just pass the critical step?
        let (critical_idx, next_step, kind) = {
            let a = self.active.get(&ue).expect("checked");
            (a.kind.template().completion_index(), a.next_step, a.kind)
        };
        if next_step > critical_idx {
            self.record_completion(ue, now);
        }
        // Send consecutive uplink steps that follow.
        let template = kind.template();
        let mut step = next_step;
        while step < template.steps.len() && template.steps[step].direction == Direction::Uplink {
            self.send_uplink(ue, step, out);
            step += 1;
            let active = self.active.get_mut(&ue).expect("checked");
            active.next_step = step;
        }
        // Finished the whole template?
        if step >= template.steps.len() {
            self.active.remove(&ue);
        } else {
            out.set_timer(self.config.retry_timeout, ue.raw());
        }
    }

    fn on_ask_re_attach(&mut self, ue: UeId, out: &mut Outbox<SimMsg>) {
        let now = out.now();
        let (report_kind, started, budget) = match self.active.get(&ue) {
            // Failure mid-procedure: the PCT keeps accumulating from the
            // original start, as §6.4 measures it — and the restart draws
            // from the same retry budget.
            Some(a) => (a.report_kind, a.started, a.budget_used + 1),
            // Idle UE told to re-attach: a fresh re-attach procedure.
            None => (ProcedureKind::ReAttach, now, 0),
        };
        if budget > self.config.max_attempts {
            self.active.remove(&ue);
            self.give_ups.remove(&ue);
            self.results.retries_exhausted += 1;
            return;
        }
        self.results.re_attached += 1;
        self.start_procedure(ue, ProcedureKind::ReAttach, report_kind, started, budget, out);
    }

    fn on_retry_timer(&mut self, ue: UeId, out: &mut Outbox<SimMsg>) {
        let now = out.now();
        // A UE honoring a `Reject` does nothing until its deferral ends;
        // then it re-offers the shed procedure start (already charged to
        // the budget when the Reject arrived).
        if let Some(t) = self.active.get(&ue).and_then(|a| a.deferred_until) {
            if now < t {
                out.set_timer(t.saturating_since(now), ue.raw());
                return;
            }
            {
                let a = self.active.get_mut(&ue).expect("checked");
                a.deferred_until = None;
                a.last_progress = now;
            }
            let resend = self.active.get(&ue).and_then(|a| a.last_uplink.clone());
            if let Some(env) = resend {
                self.results.retransmissions += 1;
                let (_, cta) = self.route(ue);
                out.send(cta_node(cta), SimMsg::Sys(SysMsg::Control(env)));
            }
            out.set_timer(self.config.retry_timeout, ue.raw());
            return;
        }
        let stalled = match self.active.get(&ue) {
            Some(a) => now.saturating_since(a.last_progress) >= self.config.retry_timeout,
            None => return,
        };
        if !stalled {
            out.set_timer(self.config.retry_timeout, ue.raw());
            return;
        }
        let give_up = {
            let a = self.active.get_mut(&ue).expect("checked");
            a.retries += 1;
            a.retries > self.config.max_retries
        };
        if give_up {
            // One silent procedure can be overload; two consecutive dead
            // re-attach attempts mean the CTA itself is gone — scenario 4
            // (§4.2.5): re-attach through the next one.
            let gu = self.give_ups.entry(ue).or_insert(0);
            *gu += 1;
            if *gu >= 2 {
                let idx = self.route_override.entry(ue).or_insert(0);
                *idx = (*idx + 1) % self.config.routes.len().max(1);
            }
            self.on_ask_re_attach(ue, out);
            return;
        }
        // Retransmit the last uplink — one budget charge per resend.
        if self.charge_budget(ue) {
            return;
        }
        let resend = self.active.get(&ue).and_then(|a| a.last_uplink.clone());
        if let Some(env) = resend {
            self.results.retransmissions += 1;
            let (_, cta) = self.route(ue);
            out.send(cta_node(cta), SimMsg::Sys(SysMsg::Control(env)));
        }
        out.set_timer(self.config.retry_timeout, ue.raw());
    }

    /// The CTA's admission gate shed this UE's procedure start. Honor the
    /// `retry_after_ms` hint plus deterministic jittered exponential
    /// backoff, then re-offer — unless the retry budget is spent.
    fn on_reject(&mut self, ue: UeId, retry_after_ms: u64, out: &mut Outbox<SimMsg>) {
        let now = out.now();
        if !self.active.contains_key(&ue) {
            return; // stale reject for an abandoned procedure
        }
        self.results.rejected += 1;
        if self.charge_budget(ue) {
            return;
        }
        let a = self.active.get_mut(&ue).expect("checked");
        // Exponential term: base << attempt, capped. With the default
        // ZERO base only the jitter window remains.
        let expo_ns = self
            .config
            .backoff_base
            .as_nanos()
            .checked_shl(a.budget_used.min(16))
            .unwrap_or(u64::MAX)
            .min(self.config.backoff_cap.as_nanos());
        // Stateless splitmix64 jitter keyed on (ue, attempt): no shared RNG
        // state, so the draw is identical under any worker interleaving.
        let jitter_window = (expo_ns / 2).max(1_000_000); // ≥ 1ms to break sync
        let jitter_ns = splitmix64(
            ue.raw()
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(a.budget_used)),
        ) % jitter_window;
        let wait = Duration::from_millis(retry_after_ms)
            + Duration::from_nanos(expo_ns / 2 + jitter_ns);
        a.deferred_until = Some(now + wait);
        a.last_progress = now;
        a.retries = 0;
        out.set_timer(wait, ue.raw());
    }

    fn pump_arrivals(&mut self, out: &mut Outbox<SimMsg>) {
        let now = out.now();
        loop {
            let arrival = match self
                .pending_arrival
                .take()
                .or_else(|| self.workload.arrivals.next())
            {
                Some(a) => a,
                None => return, // workload exhausted
            };
            if arrival.at > now {
                self.pending_arrival = Some(arrival);
                out.set_timer(arrival.at.saturating_since(now), ARRIVAL_TIMER);
                return;
            }
            if self.active.contains_key(&arrival.ue) {
                self.results.skipped_busy += 1;
                continue;
            }
            self.start_procedure(arrival.ue, arrival.kind, arrival.kind, arrival.at, 0, out);
        }
    }
}

impl Node<SimMsg> for UePopulation {
    fn service_time(&self, msg: &SimMsg) -> Duration {
        match msg {
            SimMsg::Sys(SysMsg::Control(env)) => {
                // UE/BS-side parse of the downlink.
                self.costs
                    .sim_cost(self.config.codec, env.msg.kind())
                    .map(|c| c.access)
                    .unwrap_or(Duration::from_nanos(500))
            }
            SimMsg::Sys(SysMsg::AskReAttach { .. }) => Duration::from_nanos(500),
            SimMsg::Sys(SysMsg::Reject { .. }) => Duration::from_nanos(500),
            _ => Duration::ZERO,
        }
    }

    fn handle(&mut self, event: NodeEvent<SimMsg>, out: &mut Outbox<SimMsg>) {
        match event {
            NodeEvent::Message { msg, .. } => match msg {
                SimMsg::Kick => self.pump_arrivals(out),
                SimMsg::Sys(SysMsg::Control(env)) => {
                    debug_assert_eq!(env.direction, Direction::Downlink);
                    self.on_downlink(env, out);
                }
                SimMsg::Sys(SysMsg::AskReAttach { ue }) => {
                    self.on_ask_re_attach(ue, out);
                }
                SimMsg::Sys(SysMsg::Reject { ue, retry_after_ms, .. }) => {
                    self.on_reject(ue, retry_after_ms, out);
                }
                // lint-allow(flow-wildcard): counted — a misrouted SysMsg increments unexpected_msgs instead of vanishing
                _ => self.results.unexpected_msgs += 1,
            },
            NodeEvent::Timer { id: ARRIVAL_TIMER } => self.pump_arrivals(out),
            NodeEvent::Timer { id } => self.on_retry_timer(UeId::new(id), out),
            NodeEvent::Recovered => {}
        }
    }

    fn cores(&self) -> usize {
        self.config.cores
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_from_vec_sorts() {
        let w = Workload::from_vec(vec![
            Arrival {
                at: Instant::from_millis(5),
                ue: UeId::new(2),
                kind: ProcedureKind::ServiceRequest,
            },
            Arrival {
                at: Instant::from_millis(1),
                ue: UeId::new(1),
                kind: ProcedureKind::InitialAttach,
            },
        ]);
        let v: Vec<_> = w.arrivals.collect();
        assert_eq!(v[0].ue, UeId::new(1));
        assert_eq!(v[1].ue, UeId::new(2));
    }

    #[test]
    fn route_is_deterministic() {
        let pop = UePopulation::new(UePopConfig::default(), Workload::from_vec(vec![]));
        let a = pop.route(UeId::new(17));
        let b = pop.route(UeId::new(17));
        assert_eq!(a, b);
    }
}
