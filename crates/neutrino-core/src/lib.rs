//! System assembly: Neutrino and its baselines, end to end.
//!
//! This crate wires the sans-IO protocol cores (`neutrino-cta`,
//! `neutrino-cpf`, `neutrino-upf`) into a complete simulated deployment on
//! the `neutrino-netsim` engine, reproducing the paper's testbed (§6.1):
//! a UE/BS traffic generator, per-region CTAs, CPF pools (5 instances by
//! default), and UPFs — with per-message CPU costs taken from the calibrated
//! serialization cost table.
//!
//! * [`config`] — [`SystemConfig`]: every §6.2 baseline (existing EPC,
//!   DPCM, SkyCore) and every Neutrino variant (default, proactive,
//!   no-replication, per-message replication, no-logging) as data.
//! * [`simnode`] — `netsim` adapters around the protocol cores, charging
//!   calibrated service times.
//! * [`uepop`] — the UE/BS population: drives procedures, measures PCTs,
//!   handles re-attach requests and retransmissions (the paper's DPDK
//!   traffic generator, §5).
//! * [`cluster`] — builds the simulation from a [`SystemConfig`] +
//!   deployment layout.
//! * [`experiment`] — one-call experiment runner returning PCT
//!   distributions and system metrics.
//! * [`audit`] — post-failure cross-node consistency audit (CTA log vs CPF
//!   stores vs UPF session tables).
//! * [`oracle`] — the audit generalized into a pluggable [`Invariant`]
//!   trait for in-run checking (the `neutrino-check` harness's hook).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod config;
pub mod experiment;
pub mod oracle;
pub mod simnode;
pub mod uepop;

pub use audit::{audit_cluster, AuditReport, Divergence};
pub use oracle::{ConsistencyInvariant, Invariant, OracleCtx, Violation};
pub use cluster::{Cluster, LinkProfile, SimMsg};
pub use config::{CpuProfile, HandoverPolicy, SystemConfig, SystemKind};
pub use experiment::{run_experiment, ExperimentSpec, FailureSpec, RunResults};
pub use uepop::{Arrival, ProcedureWindow, UePopConfig, UePopulation, Workload};
