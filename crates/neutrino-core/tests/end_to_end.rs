//! End-to-end tests of the assembled system: whole procedures through
//! UE population → CTA → CPF → UPF and back, for every baseline, with and
//! without failures.

use neutrino_common::time::Instant;
use neutrino_common::UeId;
use neutrino_core::experiment::{primary_cpf_for, run_experiment, ExperimentSpec, FailureSpec};
use neutrino_core::uepop::Arrival;
use neutrino_core::{SystemConfig, Workload};
use neutrino_messages::procedures::ProcedureKind;

/// Attach for each UE, then the given procedure, uniformly spread.
fn workload(kind: ProcedureKind, ues: u64, spacing_us: u64) -> Workload {
    let mut v = Vec::new();
    for u in 0..ues {
        v.push(Arrival {
            at: Instant::from_micros(u * spacing_us),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        });
        v.push(Arrival {
            at: Instant::from_micros(u * spacing_us + 200_000),
            ue: UeId::new(u),
            kind,
        });
    }
    Workload::from_vec(v)
}

#[test]
fn every_baseline_completes_attach_and_service_request() {
    for config in SystemConfig::comparison_set() {
        let name = config.name;
        let spec = ExperimentSpec::new(config, workload(ProcedureKind::ServiceRequest, 50, 500));
        let mut results = run_experiment(spec);
        assert_eq!(results.started, 100, "{name}: all procedures started");
        assert_eq!(
            results.completed, 100,
            "{name}: all critical paths completed (re_attached={}, retrans={:?})",
            results.re_attached, results.cta
        );
        let attach = results.summary(ProcedureKind::InitialAttach);
        assert!(attach.p50 > 0.0, "{name}: attach PCT is positive");
        assert!(
            attach.p50 < 10.0,
            "{name}: unloaded attach PCT should be well under 10 ms, got {}",
            attach.p50
        );
    }
}

#[test]
fn neutrino_is_faster_than_epc_without_failures() {
    let run = |config: SystemConfig| {
        let spec = ExperimentSpec::new(config, workload(ProcedureKind::ServiceRequest, 200, 200));
        let mut r = run_experiment(spec);
        r.summary(ProcedureKind::ServiceRequest).p50
    };
    let neutrino = run(SystemConfig::neutrino());
    let epc = run(SystemConfig::existing_epc());
    // At this light load the gap is CPU-bound only (links shared); the full
    // 2.3x of Fig. 7 appears near saturation in the benchmark harness.
    assert!(
        epc > neutrino * 1.25,
        "EPC service-request median ({epc} ms) must clearly exceed Neutrino ({neutrino} ms)"
    );
}

#[test]
fn neutrino_masks_cpf_failure_with_replay() {
    // Enough UEs that the failed CPF is primary for several of them.
    let mut spec = ExperimentSpec::new(
        SystemConfig::neutrino(),
        workload(ProcedureKind::ServiceRequest, 80, 1_000),
    );
    // Fail the CPF serving UE 0 mid-run (procedures still arriving after).
    let victim = primary_cpf_for(&spec.config, spec.layout, UeId::new(0)).unwrap();
    spec.failures.push(FailureSpec {
        at: Instant::from_millis(120),
        cpf: victim,
    });
    let results = run_experiment(spec);
    assert_eq!(
        results.completed, 160,
        "every procedure eventually completes (re_attached={}, cta={:?})",
        results.re_attached, results.cta
    );
    let recovered = results.cta.failover_up_to_date + results.cta.failover_replayed;
    assert!(
        recovered > 0,
        "some UEs must have failed over via replica promotion: {:?}",
        results.cta
    );
}

#[test]
fn epc_recovers_from_failure_only_by_re_attaching() {
    let mut spec = ExperimentSpec::new(
        SystemConfig::existing_epc(),
        workload(ProcedureKind::ServiceRequest, 80, 1_000),
    );
    let victim = primary_cpf_for(&spec.config, spec.layout, UeId::new(0)).unwrap();
    spec.failures.push(FailureSpec {
        at: Instant::from_millis(120),
        cpf: victim,
    });
    let results = run_experiment(spec);
    assert_eq!(results.completed, 160);
    assert_eq!(
        results.cta.failover_up_to_date + results.cta.failover_replayed,
        0,
        "EPC has no replicas to promote"
    );
    assert!(
        results.re_attached > 0,
        "EPC recovery means re-attaching: {:?}",
        results.cta
    );
}

#[test]
fn neutrino_failure_audits_clean() {
    let mut spec = ExperimentSpec::new(
        SystemConfig::neutrino(),
        workload(ProcedureKind::ServiceRequest, 80, 1_000),
    );
    let victim = primary_cpf_for(&spec.config, spec.layout, UeId::new(0)).unwrap();
    spec.failures.push(FailureSpec {
        at: Instant::from_millis(120),
        cpf: victim,
    });
    let results = run_experiment(spec);
    let audit = results.audit.expect("failure runs carry an audit");
    assert_eq!(audit.passes, 2, "one post-failure pass plus the final pass");
    assert!(audit.ues_checked > 0, "the audit must have checked UEs");
    assert!(
        audit.is_clean(),
        "Neutrino must stay consistent through the failure: {:?}",
        audit.divergences
    );
}

#[test]
fn epc_failure_reports_inconsistency_window() {
    let mut spec = ExperimentSpec::new(
        SystemConfig::existing_epc(),
        workload(ProcedureKind::ServiceRequest, 80, 1_000),
    );
    let victim = primary_cpf_for(&spec.config, spec.layout, UeId::new(0)).unwrap();
    spec.failures.push(FailureSpec {
        at: Instant::from_millis(120),
        cpf: victim,
    });
    let results = run_experiment(spec);
    let audit = results.audit.expect("failure runs carry an audit");
    assert!(
        !audit.is_clean(),
        "EPC's only state copy died: the post-failure pass must see it"
    );
    assert!(
        audit
            .divergences
            .iter()
            .any(|d| matches!(d, neutrino_core::Divergence::MissingState { .. })),
        "the window shows as missing state: {:?}",
        audit.divergences
    );
}

#[test]
fn neutrino_converges_under_link_faults_and_failure() {
    use neutrino_common::time::Duration;
    let run = || {
        let mut spec = ExperimentSpec::new(
            SystemConfig::neutrino(),
            workload(ProcedureKind::ServiceRequest, 80, 1_000),
        );
        let victim = primary_cpf_for(&spec.config, spec.layout, UeId::new(0)).unwrap();
        spec.failures.push(FailureSpec {
            at: Instant::from_millis(120),
            cpf: victim,
        });
        spec.links.faults = neutrino_netsim::FaultSpec {
            loss: 0.01,
            duplicate: 0.005,
            reorder: 0.02,
            reorder_window: Duration::from_micros(200),
        };
        spec.seed = 11;
        run_experiment(spec)
    };
    let results = run();
    // Faults can leave a UE mid-retry when its next arrival lands (skipped
    // as busy), so the exact completion count can dip below the arrival
    // count — but everything that started must converge.
    assert_eq!(
        results.incomplete, 0,
        "no procedure may stall forever (retrans={}, re_attached={})",
        results.retransmissions, results.re_attached
    );
    assert_eq!(results.failed_procedures, 0, "no procedure may be abandoned");
    assert!(
        results.completed + results.skipped_busy >= 160,
        "every non-skipped arrival converges: completed={} skipped_busy={}",
        results.completed,
        results.skipped_busy
    );
    // Pin the fault counters to bands around the seed-11 values (24 drops,
    // 23 duplicates, 58 reorders): `> 0` alone would still pass if the
    // fault layer were silently disabled for one fault class, or if a
    // regression made it fire an order of magnitude too often.
    assert!(
        (12..=48).contains(&results.sim.dropped_loss),
        "loss drops out of band: {}",
        results.sim.dropped_loss
    );
    assert!(
        (11..=46).contains(&results.sim.duplicated),
        "duplicates out of band: {}",
        results.sim.duplicated
    );
    assert!(
        (29..=116).contains(&results.sim.reordered),
        "reorders out of band: {}",
        results.sim.reordered
    );
    assert_eq!(
        results.sim.dropped_partition, 0,
        "no partitions are configured in this run"
    );
    assert_eq!(
        results.cta.timeout_pruned, 0,
        "no procedure's replication may be pruned as timed out"
    );
    assert!(
        results.retransmissions > 0,
        "lost S1AP messages must surface as retransmissions"
    );
    let audit = results.audit.expect("failure runs carry an audit");
    assert!(
        audit.is_clean(),
        "Neutrino must audit clean even on faulty links: {:?}",
        audit.divergences
    );
    // Same seed ⇒ byte-identical replay, audit included.
    let again = run();
    assert_eq!(results.sim.events_processed, again.sim.events_processed);
    assert_eq!(Some(audit), again.audit);
}

#[test]
fn fast_handover_beats_handover_with_migration() {
    let run = |config: SystemConfig| {
        let spec = ExperimentSpec::new(
            config,
            workload(ProcedureKind::HandoverWithCpfChange, 100, 500),
        );
        let mut r = run_experiment(spec);
        // adapt_workload turns the kind into FastHandover under the
        // proactive policy; read whichever was executed.
        let fast = r.summary(ProcedureKind::FastHandover);
        let slow = r.summary(ProcedureKind::HandoverWithCpfChange);
        if fast.count > 0 {
            fast.p50
        } else {
            slow.p50
        }
    };
    let proactive = run(SystemConfig::neutrino());
    let on_demand = run(SystemConfig::neutrino_default_handover());
    assert!(
        on_demand > proactive + 0.9,
        "on-demand migration ({on_demand} ms) must pay at least the \
         inter-region round trip over proactive ({proactive} ms)"
    );
}

#[test]
fn per_message_replication_costs_more_than_per_procedure() {
    let run = |config: SystemConfig| {
        let spec = ExperimentSpec::new(config, workload(ProcedureKind::ServiceRequest, 150, 300));
        let mut r = run_experiment(spec);
        r.summary(ProcedureKind::ServiceRequest).p50
    };
    let per_proc = run(SystemConfig::neutrino());
    let per_msg = run(SystemConfig::neutrino_per_message());
    let no_rep = run(SystemConfig::neutrino_no_replication());
    assert!(
        per_msg > per_proc,
        "per-message ({per_msg} ms) must exceed per-procedure ({per_proc} ms)"
    );
    assert!(
        per_proc < per_msg && no_rep <= per_proc,
        "Fig. 15 ordering: NoRep ({no_rep}) <= PerProc ({per_proc}) < PerMsg ({per_msg})"
    );
}

#[test]
fn cta_log_stays_bounded_and_nonzero_for_neutrino() {
    let spec = ExperimentSpec::new(
        SystemConfig::neutrino(),
        workload(ProcedureKind::ServiceRequest, 100, 300),
    );
    let results = run_experiment(spec);
    assert!(
        results.max_log_bytes > 0,
        "the message log must have been used"
    );
    // With per-procedure ACK pruning it must stay tiny at this load.
    assert!(
        results.max_log_bytes < 1_000_000,
        "log exploded: {} bytes",
        results.max_log_bytes
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let spec = ExperimentSpec::new(
            SystemConfig::neutrino(),
            workload(ProcedureKind::ServiceRequest, 60, 400),
        );
        let mut r = run_experiment(spec);
        (
            r.completed,
            r.summary(ProcedureKind::ServiceRequest).p50,
            r.summary(ProcedureKind::InitialAttach).mean,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn same_seed_replays_identically_different_seed_does_not() {
    use neutrino_common::time::Duration;
    let run = |seed: u64| {
        let mut spec = ExperimentSpec::new(
            SystemConfig::neutrino(),
            workload(ProcedureKind::ServiceRequest, 60, 400),
        );
        // Jittered links make the seed observable; seeded runs must still
        // replay bit-for-bit.
        spec.links.jitter = Duration::from_micros(20);
        spec.seed = seed;
        let mut r = run_experiment(spec);
        (
            r.sim.events_processed,
            r.completed,
            r.summary(ProcedureKind::ServiceRequest).p50,
            r.summary(ProcedureKind::InitialAttach).mean,
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must give identical events and PCT");
    assert!(a.0 > 0, "engine reported no processed events");
    let c = run(8);
    assert_ne!(
        (a.2, a.3),
        (c.2, c.3),
        "a different seed must re-roll the jittered delays"
    );
}
