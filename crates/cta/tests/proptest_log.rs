//! Property-based tests of the CTA message log: byte accounting never
//! drifts, replay sets stay ordered, and pruning matches ACK coverage over
//! random operation sequences.

use neutrino_common::clock::ClockTick;
use neutrino_common::time::Instant;
use neutrino_common::{CpfId, ProcedureId, UeId};
use neutrino_cta::MessageLog;
use neutrino_messages::{Envelope, MessageKind, ProcedureKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Append { ue: u8, proc: u8, bytes: u16 },
    Complete { ue: u8, proc: u8 },
    Ack { ue: u8, proc: u8, replica: u8 },
    Drop { ue: u8, proc: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u8..5, 1u16..300).prop_map(|(ue, proc, bytes)| Op::Append { ue, proc, bytes }),
        (0u8..4, 1u8..5).prop_map(|(ue, proc)| Op::Complete { ue, proc }),
        (0u8..4, 1u8..5, 0u8..3).prop_map(|(ue, proc, replica)| Op::Ack { ue, proc, replica }),
        (0u8..4, 1u8..5).prop_map(|(ue, proc)| Op::Drop { ue, proc }),
    ]
}

fn env(ue: u8, proc: u8, clock: u64) -> Envelope {
    let mut e = Envelope::uplink(
        UeId::new(u64::from(ue)),
        ProcedureId::new(u64::from(proc)),
        ProcedureKind::ServiceRequest,
        MessageKind::ServiceRequest.sample(u64::from(ue)),
    );
    e.clock = ClockTick(clock);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn byte_accounting_never_drifts(ops in proptest::collection::vec(op(), 1..120)) {
        let mut log = MessageLog::new();
        let replicas = [CpfId::new(0), CpfId::new(1), CpfId::new(2)];
        let mut clock = 0u64;
        // Shadow model of each logged procedure: bytes, ACK set, completion.
        // ACKs are cumulative, so the model must retro-ACK completed
        // predecessors exactly like `MessageLog::ack` does.
        #[derive(Default)]
        struct Entry {
            bytes: usize,
            acks: std::collections::BTreeSet<u8>,
            completed: bool,
        }
        let mut shadow: std::collections::HashMap<(u8, u8), Entry> =
            std::collections::HashMap::new();
        for o in &ops {
            match *o {
                Op::Append { ue, proc, bytes } => {
                    clock += 1;
                    log.append(env(ue, proc, clock), bytes as usize, Instant::ZERO);
                    shadow.entry((ue, proc)).or_default().bytes += bytes as usize;
                }
                Op::Complete { ue, proc } => {
                    log.complete(
                        UeId::new(u64::from(ue)),
                        ProcedureId::new(u64::from(proc)),
                        ClockTick(clock),
                        Instant::ZERO,
                    );
                    // `complete` materializes the entry even if nothing was
                    // appended — mirror that.
                    shadow.entry((ue, proc)).or_default().completed = true;
                }
                Op::Ack { ue, proc, replica } => {
                    // Expect replicas {0, 1}: pruning needs either that exact
                    // set ACKed or two distinct ACKs (count-based convergence
                    // — replica 2 substitutes after a failover re-targets
                    // checkpoints); a single ACK must never prune.
                    log.ack(
                        UeId::new(u64::from(ue)),
                        ProcedureId::new(u64::from(proc)),
                        replicas[replica as usize],
                        &replicas[..2],
                    );
                    let covered: Vec<(u8, u8)> = shadow
                        .keys()
                        .filter(|&&(u, p)| u == ue && p <= proc)
                        .copied()
                        .collect();
                    for key in covered {
                        let e = shadow.get_mut(&key).expect("collected");
                        if key.1 == proc || e.completed {
                            e.acks.insert(replica);
                            if e.acks.len() >= 2 {
                                shadow.remove(&key);
                            }
                        }
                    }
                }
                Op::Drop { ue, proc } => {
                    log.drop_procedure(UeId::new(u64::from(ue)), ProcedureId::new(u64::from(proc)));
                    shadow.remove(&(ue, proc));
                }
            }
            let expected: usize = shadow.values().map(|e| e.bytes).sum();
            prop_assert_eq!(log.bytes(), expected, "byte accounting drifted");
            prop_assert!(log.max_bytes() >= log.bytes());
        }
    }

    #[test]
    fn replay_sets_are_clock_ordered_and_scoped(
        appends in proptest::collection::vec((0u8..3, 1u8..6), 1..60),
        since in 0u8..6,
    ) {
        let mut log = MessageLog::new();
        let mut clock = 0u64;
        for &(ue, proc) in &appends {
            clock += 1;
            log.append(env(ue, proc, clock), 10, Instant::ZERO);
        }
        for ue in 0u8..3 {
            let set = log.replay_set(UeId::new(u64::from(ue)), ProcedureId::new(u64::from(since)));
            // Scoped to the UE and to procedures after `since`.
            for e in &set {
                prop_assert_eq!(e.ue, UeId::new(u64::from(ue)));
                prop_assert!(e.procedure > ProcedureId::new(u64::from(since)));
            }
            // Ordered by logical clock within each procedure, and
            // procedures in ascending order.
            for w in set.windows(2) {
                prop_assert!(w[0].procedure <= w[1].procedure);
                if w[0].procedure == w[1].procedure {
                    prop_assert!(w[0].clock < w[1].clock);
                }
            }
        }
    }
}
