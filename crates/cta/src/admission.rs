//! CTA ingress admission control: priority-classed token-bucket shedding.
//!
//! The paper never takes Neutrino past saturation, but the signaling-storm
//! literature (synchronized IoT populations, regional blackout re-attach
//! waves) makes overload the common failure mode of real MMEs. This module
//! gives the CTA a deterministic ingress gate:
//!
//! * a single **token bucket** (integer nano-tokens, lazily refilled from
//!   the sim clock — no wall clock, no RNG) models the aggregate admission
//!   budget;
//! * each [`AdmissionClass`] admits only while the bucket holds at least a
//!   class-specific **reserve threshold**. Reserves grow with distance from
//!   the top priority, so as the bucket drains the classes shut off in
//!   strict priority order: detach first, then attach, then
//!   service-request, and handover last (it has no reserve at all).
//!
//! Shedding is explicit: the caller turns a [`AdmissionDecision::Shed`]
//! into a `SysMsg::Reject { class, retry_after_ms }` so the UE can back off
//! for a bounded, computed interval instead of blindly retransmitting into
//! the storm. Admission is charged **once per procedure**: retransmits and
//! later steps of an already-admitted procedure always pass, which is what
//! guarantees zero `failed_procedures` for admitted work.
//!
//! The bucket also records *evidence* for the `shed-priority-order`
//! invariant: the minimum token level at which each class was admitted and
//! the maximum level at which it was shed. Priority order holds iff every
//! higher class's worst shed happened at a strictly lower level than every
//! lower class's best admit.

use std::collections::BTreeMap;

use neutrino_common::time::Instant;
use neutrino_common::{ProcedureId, UeId};
use neutrino_messages::sysmsg::AdmissionClass;

/// Nano-tokens per whole token. One admitted procedure costs one token.
const TOKEN: u64 = 1_000_000_000;

/// Static parameters of the CTA ingress admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionParams {
    /// Sustained admission rate, in procedures per second.
    pub rate_pps: u64,
    /// Bucket capacity in whole tokens: the largest burst admitted at once.
    pub burst: u64,
    /// Engine-queue depth the admission gate is sized to keep every node
    /// under; the `bounded-queue` invariant checks observed depths against
    /// this cap.
    pub queue_cap: u64,
    /// Floor added to every computed `retry_after_ms` so rejected UEs never
    /// re-offer instantly even when the bucket is about to refill.
    pub retry_after_base_ms: u64,
}

impl AdmissionParams {
    /// Gate sized for a sustained `rate_pps` admission rate. The burst
    /// bucket holds an eighth of a second of work: everything the bucket
    /// admits at one instant lands in downstream queues, so the burst —
    /// not the rate — is what the queue cap (a quarter-second of work)
    /// must absorb.
    pub fn for_rate(rate_pps: u64) -> Self {
        let rate_pps = rate_pps.max(1);
        AdmissionParams {
            rate_pps,
            burst: (rate_pps / 8).max(8),
            queue_cap: (rate_pps / 4).max(64),
            retry_after_base_ms: 20,
        }
    }

    /// Reserve threshold for a class, in nano-tokens: the bucket level that
    /// must *remain* after admitting one procedure of this class. Handover
    /// runs the bucket to empty; each lower class keeps a progressively
    /// larger cushion for the classes above it.
    fn reserve(&self, class: AdmissionClass) -> u64 {
        let burst_nanos = self.burst.saturating_mul(TOKEN);
        match class {
            AdmissionClass::Handover => 0,
            AdmissionClass::ServiceRequest => burst_nanos / 8,
            AdmissionClass::Attach => burst_nanos / 4,
            AdmissionClass::Detach => burst_nanos / 2,
        }
    }
}

/// Outcome of one admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Let the uplink through (and remember the procedure as charged).
    Admit,
    /// Shed the uplink; the UE should wait at least this long before
    /// re-offering.
    Shed {
        /// Bounded hint: when the bucket is expected to readmit this class.
        retry_after_ms: u64,
    },
}

/// Deterministic token-bucket admission state for one CTA.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    params: AdmissionParams,
    /// Current bucket level in nano-tokens.
    tokens: u64,
    /// Sim time of the last lazy refill.
    refilled_at: Instant,
    /// Highest procedure id already admitted per UE: later steps and
    /// retransmits of these pass without spending tokens.
    charged: BTreeMap<UeId, ProcedureId>,
    /// Lowest post-refill token level at which each class was admitted.
    min_admit_tokens: [Option<u64>; 4],
    /// Highest post-refill token level at which each class was shed.
    max_shed_tokens: [Option<u64>; 4],
}

impl AdmissionControl {
    /// A full bucket at time zero.
    pub fn new(params: AdmissionParams) -> Self {
        AdmissionControl {
            params,
            tokens: params.burst.saturating_mul(TOKEN),
            refilled_at: Instant::ZERO,
            charged: BTreeMap::new(),
            min_admit_tokens: [None; 4],
            max_shed_tokens: [None; 4],
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &AdmissionParams {
        &self.params
    }

    /// Lazily refill the bucket up to `now`. `rate_pps` tokens/second is
    /// exactly `rate_pps` nano-tokens per nanosecond, so the arithmetic is
    /// integer and replay-exact.
    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_since(self.refilled_at).as_nanos();
        if dt > 0 {
            let cap = self.params.burst.saturating_mul(TOKEN);
            self.tokens = self.tokens.saturating_add(dt.saturating_mul(self.params.rate_pps)).min(cap);
            self.refilled_at = now;
        }
    }

    /// Decide whether to admit the first uplink of `(ue, procedure)` in
    /// `class` at `now`. Subsequent calls for an already-admitted procedure
    /// (retransmits, later steps routed through here) admit for free.
    pub fn decide(
        &mut self,
        ue: UeId,
        procedure: ProcedureId,
        class: AdmissionClass,
        now: Instant,
    ) -> AdmissionDecision {
        if self.charged.get(&ue).is_some_and(|&p| procedure <= p) {
            return AdmissionDecision::Admit;
        }
        self.refill(now);
        let need = self.params.reserve(class).saturating_add(TOKEN);
        let idx = class.raw() as usize;
        if self.tokens >= need {
            let level = self.tokens;
            self.min_admit_tokens[idx] =
                Some(self.min_admit_tokens[idx].map_or(level, |m| m.min(level)));
            self.tokens -= TOKEN;
            self.charged.insert(ue, procedure);
            AdmissionDecision::Admit
        } else {
            self.max_shed_tokens[idx] =
                Some(self.max_shed_tokens[idx].map_or(self.tokens, |m| m.max(self.tokens)));
            AdmissionDecision::Shed { retry_after_ms: self.retry_after_ms(need) }
        }
    }

    /// How long until the bucket refills from its current level to `need`,
    /// rounded up to whole milliseconds, plus the configured floor.
    fn retry_after_ms(&self, need: u64) -> u64 {
        let deficit = need.saturating_sub(self.tokens);
        let ns = deficit.div_ceil(self.params.rate_pps.max(1));
        self.params.retry_after_base_ms + ns.div_ceil(1_000_000)
    }

    /// True while the bucket is drained below the detach reserve — i.e. at
    /// least one class is currently being shed. The CTA uses this as its
    /// degradation signal (defer replication-ACK sweeps and resync chases).
    pub fn under_pressure(&mut self, now: Instant) -> bool {
        self.refill(now);
        self.tokens < self.params.reserve(AdmissionClass::Detach).saturating_add(TOKEN)
    }

    /// Forget the admission charge for a finished procedure so the map
    /// doesn't grow without bound across a long run.
    pub fn release(&mut self, ue: UeId, procedure: ProcedureId) {
        if self.charged.get(&ue).is_some_and(|&p| p <= procedure) {
            self.charged.remove(&ue);
        }
    }

    /// Evidence for `shed-priority-order`: per class (priority order), the
    /// lowest token level admitted at and the highest level shed at.
    pub fn priority_evidence(&self) -> ([Option<u64>; 4], [Option<u64>; 4]) {
        (self.min_admit_tokens, self.max_shed_tokens)
    }

    /// Test support: forge raw priority evidence for `class`. The public
    /// [`AdmissionControl::decide`] path cannot produce an inverted
    /// ladder (that is the property), so oracle kill-switch tests plant
    /// the evidence directly.
    pub fn force_priority_evidence(
        &mut self,
        class: AdmissionClass,
        min_admit: Option<u64>,
        max_shed: Option<u64>,
    ) {
        let idx = class.raw() as usize;
        if min_admit.is_some() {
            self.min_admit_tokens[idx] = min_admit;
        }
        if max_shed.is_some() {
            self.max_shed_tokens[idx] = max_shed;
        }
    }
}

/// Check the `shed-priority-order` property against recorded evidence:
/// for every pair of classes `(hi, lo)` with `hi` higher priority, every
/// shed of `hi` must have happened at a token level strictly below every
/// admit of `lo` — otherwise a higher class was turned away while a lower
/// class was still being served. Returns the first offending pair.
pub fn priority_order_violation(
    min_admit: &[Option<u64>; 4],
    max_shed: &[Option<u64>; 4],
) -> Option<(AdmissionClass, AdmissionClass)> {
    for hi in AdmissionClass::ALL {
        for lo in AdmissionClass::ALL {
            if hi.raw() >= lo.raw() {
                continue;
            }
            if let (Some(shed_hi), Some(admit_lo)) =
                (max_shed[hi.raw() as usize], min_admit[lo.raw() as usize])
            {
                if shed_hi >= admit_lo {
                    return Some((*hi, *lo));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::time::Duration;

    fn params() -> AdmissionParams {
        AdmissionParams { rate_pps: 100, burst: 8, queue_cap: 64, retry_after_base_ms: 20 }
    }

    #[test]
    fn full_bucket_admits_every_class() {
        let mut a = AdmissionControl::new(params());
        for (i, class) in AdmissionClass::ALL.iter().copied().enumerate() {
            let d = a.decide(UeId::new(i as u64), ProcedureId::new(1), class, Instant::ZERO);
            assert_eq!(d, AdmissionDecision::Admit, "{class:?}");
        }
    }

    #[test]
    fn classes_shut_off_in_priority_order_as_bucket_drains() {
        let mut a = AdmissionControl::new(params());
        // Drain with handovers (no reserve) and watch the reserved classes
        // shut off from lowest priority to highest.
        let mut cut_off = Vec::new();
        for i in 0..64u64 {
            for class in [AdmissionClass::Detach, AdmissionClass::Attach, AdmissionClass::ServiceRequest] {
                if cut_off.contains(&class) {
                    continue;
                }
                let probe = a
                    .clone()
                    .decide(UeId::new(1000 + i), ProcedureId::new(1), class, Instant::ZERO);
                if matches!(probe, AdmissionDecision::Shed { .. }) {
                    cut_off.push(class);
                }
            }
            let d = a.decide(UeId::new(i), ProcedureId::new(1), AdmissionClass::Handover, Instant::ZERO);
            if matches!(d, AdmissionDecision::Shed { .. }) {
                break;
            }
        }
        assert_eq!(
            cut_off,
            vec![AdmissionClass::Detach, AdmissionClass::Attach, AdmissionClass::ServiceRequest],
            "lower classes must shut off first"
        );
    }

    #[test]
    fn retransmit_of_admitted_procedure_is_free() {
        let mut a = AdmissionControl::new(params());
        let ue = UeId::new(7);
        assert_eq!(
            a.decide(ue, ProcedureId::new(3), AdmissionClass::Attach, Instant::ZERO),
            AdmissionDecision::Admit
        );
        let before = a.tokens;
        assert_eq!(
            a.decide(ue, ProcedureId::new(3), AdmissionClass::Attach, Instant::ZERO),
            AdmissionDecision::Admit
        );
        assert_eq!(a.tokens, before, "retransmit must not spend a token");
    }

    #[test]
    fn refill_is_deterministic_and_bounded() {
        let mut a = AdmissionControl::new(params());
        // Empty the bucket.
        for i in 0..8u64 {
            assert_eq!(
                a.decide(UeId::new(i), ProcedureId::new(1), AdmissionClass::Handover, Instant::ZERO),
                AdmissionDecision::Admit
            );
        }
        let d = a.decide(UeId::new(99), ProcedureId::new(1), AdmissionClass::Handover, Instant::ZERO);
        let AdmissionDecision::Shed { retry_after_ms } = d else {
            panic!("empty bucket must shed, got {d:?}")
        };
        // 1 token at 100/s = 10ms, plus the 20ms floor.
        assert_eq!(retry_after_ms, 30);
        // 10ms later exactly one token has accrued.
        let later = Instant::ZERO + Duration::from_millis(10);
        assert_eq!(
            a.decide(UeId::new(99), ProcedureId::new(1), AdmissionClass::Handover, later),
            AdmissionDecision::Admit
        );
        // Bucket never exceeds its cap.
        a.refill(Instant::ZERO + Duration::from_secs(3600));
        assert_eq!(a.tokens, 8 * TOKEN);
    }

    #[test]
    fn pressure_tracks_detach_reserve() {
        let mut a = AdmissionControl::new(params());
        assert!(!a.under_pressure(Instant::ZERO));
        for i in 0..5u64 {
            a.decide(UeId::new(i), ProcedureId::new(1), AdmissionClass::Handover, Instant::ZERO);
        }
        // 3 tokens left < detach reserve (4) + 1.
        assert!(a.under_pressure(Instant::ZERO));
    }

    #[test]
    fn evidence_violation_detector_works() {
        // Clean evidence: every shed below every lower-class admit.
        let min_admit = [None, Some(3 * TOKEN), Some(5 * TOKEN), Some(7 * TOKEN)];
        let max_shed = [Some(TOKEN / 2), Some(TOKEN), Some(2 * TOKEN), Some(4 * TOKEN)];
        assert_eq!(priority_order_violation(&min_admit, &max_shed), None);
        // Handover shed at a level where attach was still admitted.
        let bad_shed = [Some(6 * TOKEN), None, None, None];
        assert_eq!(
            priority_order_violation(&min_admit, &bad_shed),
            Some((AdmissionClass::Handover, AdmissionClass::ServiceRequest))
        );
    }

    #[test]
    fn release_forgets_charge() {
        let mut a = AdmissionControl::new(params());
        let ue = UeId::new(1);
        a.decide(ue, ProcedureId::new(2), AdmissionClass::Attach, Instant::ZERO);
        a.release(ue, ProcedureId::new(2));
        assert!(a.charged.is_empty());
    }
}
