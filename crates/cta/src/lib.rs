//! The Control Traffic Aggregator (CTA) — §4.2.3–4.2.5.
//!
//! The CTA sits between base stations and the CPF pool. It is
//! (i) the front-end load balancer (consistent hashing over the level-1
//! ring), (ii) the keeper of the in-memory message log that makes fast
//! failure recovery possible, and (iii) the failure-recovery coordinator
//! that picks (and if necessary catches up) a backup CPF when a primary
//! dies.
//!
//! [`CtaCore`] is a sans-IO state machine: drivers feed it messages and the
//! current time, it returns [`CtaOutput`]s. The discrete-event simulator and
//! the real-time driver both run the exact same code.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod admission;
pub mod core;
pub mod log;

pub use crate::core::{CtaConfig, CtaCore, CtaMetrics, CtaOutput, FailoverPolicy};
pub use admission::{AdmissionControl, AdmissionDecision, AdmissionParams};
pub use log::{set_replay_floor_bug, MessageLog, ProcedureLog};
