//! The CTA state machine.

use crate::admission::{AdmissionControl, AdmissionDecision, AdmissionParams};
use crate::log::MessageLog;
use neutrino_codec::CodecKind;
use neutrino_common::clock::ClockTick;
use neutrino_common::time::{Duration, Instant};
use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, UeId};
use neutrino_geo::RingStack;
use neutrino_messages::costs::CostTable;
use neutrino_messages::sysmsg::{AdmissionClass, MarkOutdated, Replay, SyncAck, SysMsg};
use neutrino_messages::{Direction, Envelope};
use std::collections::{BTreeMap, BTreeSet};

/// Consecutive unanswered resync chases to one CPF before the circuit
/// breaker opens (overload mode only).
const RESYNC_BREAKER_TRIP: u32 = 3;
/// How long an open breaker suppresses further chases to that CPF.
const RESYNC_BREAKER_COOLDOWN: Duration = Duration::from_secs(8);

/// What the CTA does when a UE's primary CPF is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Existing EPC / DPCM: the UE must re-attach (and the consistent-hash
    /// ring, minus the failed CPF, picks its new primary).
    ReAttach,
    /// Neutrino (§4.2.5): promote the most-synced backup, replaying the
    /// in-memory log when it is behind; re-attach only when no backup can be
    /// made consistent (scenario 3).
    ReplayFromLog,
    /// SkyCore: route to any live pool member (state was broadcast
    /// per-message; no consistency check).
    AnyPeer,
}

/// CTA configuration.
#[derive(Debug, Clone)]
pub struct CtaConfig {
    /// This CTA's id.
    pub id: CtaId,
    /// Whether the in-memory message log is maintained (§6.7.2 ablates it).
    pub logging: bool,
    /// Failure recovery policy.
    pub failover: FailoverPolicy,
    /// How long to wait for replica ACKs before declaring them outdated
    /// (§4.2.4 uses 30 s).
    pub ack_timeout: Duration,
    /// Base delay before a completed-but-unACKed procedure's checkpoint is
    /// re-requested from the primary. Doubles per attempt (exponential
    /// backoff) until [`CtaConfig::ack_timeout`] prunes the procedure.
    pub resync_base: Duration,
    /// The codec in use — determines the wire size the log charges per
    /// message.
    pub codec: CodecKind,
    /// Ingress admission gate (overload control). `None` — the default in
    /// every stock configuration — admits everything and leaves behavior
    /// byte-identical to the pre-overload-control tree.
    pub admission: Option<AdmissionParams>,
}

impl CtaConfig {
    /// Neutrino defaults (per-procedure replication, logging on, 30 s
    /// timeout).
    pub fn neutrino(id: CtaId, codec: CodecKind) -> Self {
        CtaConfig {
            id,
            logging: true,
            failover: FailoverPolicy::ReplayFromLog,
            ack_timeout: Duration::from_secs(30),
            resync_base: Duration::from_secs(4),
            codec,
            admission: None,
        }
    }

    /// Existing-EPC defaults: no log, re-attach on failure, ASN.1.
    pub fn epc(id: CtaId) -> Self {
        CtaConfig {
            id,
            logging: false,
            failover: FailoverPolicy::ReAttach,
            ack_timeout: Duration::from_secs(30),
            resync_base: Duration::from_secs(4),
            codec: CodecKind::Asn1Per,
            admission: None,
        }
    }
}

/// An action the CTA asks its driver to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum CtaOutput {
    /// Send to a CPF.
    ToCpf {
        /// Destination CPF.
        cpf: CpfId,
        /// Payload.
        msg: SysMsg,
    },
    /// Send toward a base station (and thus the UE).
    ToBs {
        /// Destination BS.
        bs: BsId,
        /// Payload.
        msg: SysMsg,
    },
}

/// Counters for tests and experiment output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtaMetrics {
    /// Uplink envelopes forwarded.
    pub forwarded_uplink: u64,
    /// Downlink envelopes forwarded.
    pub forwarded_downlink: u64,
    /// Failovers resolved with an already-up-to-date backup (scenario 1).
    pub failover_up_to_date: u64,
    /// Failovers resolved by replaying the log (scenario 2).
    pub failover_replayed: u64,
    /// Failovers that required a re-attach (scenario 3).
    pub failover_re_attach: u64,
    /// MarkOutdated notices sent.
    pub outdated_notices: u64,
    /// Procedures pruned by the ACK timeout scan.
    pub timeout_pruned: u64,
    /// Checkpoint resends requested from primaries (exponential backoff)
    /// for completed procedures still missing replica ACKs.
    pub resyncs_requested: u64,
    /// Log replays sent to a primary that reported itself *behind* the
    /// procedure a resync request named (it missed the messages, so it had
    /// nothing to re-checkpoint).
    pub resyncs_replayed: u64,
    /// Procedure-start uplinks admitted by the ingress gate, indexed by
    /// [`AdmissionClass::raw`] (highest priority first).
    pub admitted_by_class: [u64; 4],
    /// Procedure-start uplinks shed by the ingress gate, indexed by
    /// [`AdmissionClass::raw`].
    pub shed_by_class: [u64; 4],
    /// `Reject` frames sent back toward UEs (one per shed uplink).
    pub rejects_sent: u64,
    /// ACK-timeout scans skipped because the admission gate was under
    /// pressure (the level-2 replication sweep is deferred, not dropped).
    pub acks_deferred: u64,
    /// Times the resync-chase circuit breaker opened on a CPF.
    pub breaker_opened: u64,
    /// Resync chases suppressed by an open breaker.
    pub breaker_suppressed: u64,
    /// `SysMsg` variants delivered to this CTA that the flow contract says
    /// it never receives (misrouted traffic — counted, never silently
    /// swallowed; the flow lint pins the expected set).
    pub unexpected_msgs: u64,
}

/// The Control Traffic Aggregator state machine.
pub struct CtaCore {
    config: CtaConfig,
    ring: RingStack,
    clock: neutrino_common::LogicalClock,
    log: MessageLog,
    /// Sticky per-UE assignment: set from the ring on first contact, changed
    /// by failover promotions and re-attaches. Stable assignment is what
    /// lets a backup "become primary" (§4.1) instead of the ring silently
    /// remapping the UE to a CPF with no state.
    assigned: BTreeMap<UeId, CpfId>,
    /// Backup sets are ring-deterministic but cached for stable expectation
    /// sets even as the ring changes.
    backups_cache: BTreeMap<UeId, Vec<CpfId>>,
    failed: BTreeSet<CpfId>,
    costs: &'static CostTable,
    metrics: CtaMetrics,
    /// Ingress admission gate; `None` admits everything (stock behavior).
    admission: Option<AdmissionControl>,
    /// Consecutive resync chases per CPF since its last sign of life
    /// (a `SyncAck` routed through it or a `ResyncBehind` report).
    resync_chases: BTreeMap<CpfId, u32>,
    /// CPFs whose resync-chase breaker is open, and until when.
    resync_open_until: BTreeMap<CpfId, Instant>,
}

impl CtaCore {
    /// Creates a CTA over a region's ring stack.
    pub fn new(config: CtaConfig, ring: RingStack) -> Self {
        let admission = config.admission.map(AdmissionControl::new);
        CtaCore {
            config,
            ring,
            clock: neutrino_common::LogicalClock::new(),
            log: MessageLog::new(),
            assigned: BTreeMap::new(),
            backups_cache: BTreeMap::new(),
            failed: BTreeSet::new(),
            costs: CostTable::baked(),
            metrics: CtaMetrics::default(),
            admission,
            resync_chases: BTreeMap::new(),
            resync_open_until: BTreeMap::new(),
        }
    }

    /// This CTA's id.
    pub fn id(&self) -> CtaId {
        self.config.id
    }

    /// Counters.
    pub fn metrics(&self) -> CtaMetrics {
        self.metrics
    }

    /// The ingress admission gate, when overload control is enabled
    /// (invariants read its shed/admit evidence).
    pub fn admission(&self) -> Option<&AdmissionControl> {
        self.admission.as_ref()
    }

    /// Read-only view of the message log (consistency auditing).
    pub fn log(&self) -> &MessageLog {
        &self.log
    }

    /// Mutable log access. Test harnesses use this to plant watermark
    /// states that exercise oracle kill-switches; production drivers
    /// never mutate the log from outside.
    pub fn log_mut(&mut self) -> &mut MessageLog {
        &mut self.log
    }

    /// Mutable admission-gate access (same test-support caveat as
    /// [`CtaCore::log_mut`]).
    pub fn admission_mut(&mut self) -> Option<&mut AdmissionControl> {
        self.admission.as_mut()
    }

    /// The sticky UE → primary assignments (consistency auditing).
    pub fn assignments(&self) -> &BTreeMap<UeId, CpfId> {
        &self.assigned
    }

    /// Whether `cpf` is known to have failed.
    pub fn is_failed(&self, cpf: CpfId) -> bool {
        self.failed.contains(&cpf)
    }

    /// Current log footprint in bytes.
    pub fn log_bytes(&self) -> usize {
        self.log.bytes()
    }

    /// Peak log footprint in bytes (Fig. 17).
    pub fn max_log_bytes(&self) -> usize {
        self.log.max_bytes()
    }

    /// The primary CPF currently serving a UE (sticky; assigned from the
    /// level-1 ring on first contact).
    pub fn primary_for(&mut self, ue: UeId) -> Option<CpfId> {
        if let Some(p) = self.assigned.get(&ue) {
            return Some(*p);
        }
        let p = self.ring.primary(ue)?;
        self.assigned.insert(ue, p);
        Some(p)
    }

    /// The backup set for a UE (cached on first use).
    pub fn backups_for(&mut self, ue: UeId) -> Vec<CpfId> {
        if let Some(b) = self.backups_cache.get(&ue) {
            return b.clone();
        }
        let b = self.ring.backups(ue);
        self.backups_cache.insert(ue, b.clone());
        b
    }

    fn expected_ack_set(&mut self, ue: UeId) -> Vec<CpfId> {
        let primary = self.primary_for(ue);
        let failed = self.failed.clone();
        self.backups_for(ue)
            .into_iter()
            .filter(|b| Some(*b) != primary && !failed.contains(b))
            .collect()
    }

    fn wire_bytes(&self, env: &Envelope) -> usize {
        self.costs
            .get(self.config.codec, env.msg.kind())
            .map(|c| c.wire_bytes)
            .unwrap_or(64)
    }

    /// Handles any system message addressed to this CTA.
    pub fn handle(&mut self, msg: SysMsg, now: Instant) -> Vec<CtaOutput> {
        match msg {
            SysMsg::Control(env) => match env.direction {
                Direction::Uplink => self.on_uplink(env, now),
                Direction::Downlink => self.on_downlink(env, now),
            },
            SysMsg::SyncAck(ack) => self.on_sync_ack(ack, now),
            SysMsg::ResyncBehind { ue, have, cpf } => self.on_resync_behind(ue, have, cpf),
            SysMsg::DdnRequest { ue, upf } => self.on_ddn(ue, upf),
            SysMsg::CpfFailure { cpf } => self.on_cpf_failure(cpf, now),
            SysMsg::RelayReAttach { ue, bs } => {
                // A CPF asked the UE to re-attach (stale-state guard).
                vec![CtaOutput::ToBs {
                    bs,
                    msg: SysMsg::AskReAttach { ue },
                }]
            }
            // lint-allow(flow-wildcard): counted — a misrouted SysMsg increments unexpected_msgs instead of vanishing
            _ => {
                self.metrics.unexpected_msgs += 1;
                Vec::new()
            }
        }
    }

    /// Processes an uplink control message (§4.2.3 step 1): stamp the
    /// logical clock, log, and forward to the primary CPF — or run failure
    /// recovery when the primary is down.
    pub fn on_uplink(&mut self, mut env: Envelope, now: Instant) -> Vec<CtaOutput> {
        // Ingress admission (overload control): gate *procedure-start*
        // uplinks before any clock or log state is touched, so a shed
        // procedure leaves no trace. Mid-procedure messages always pass —
        // once work is admitted it is carried to completion (this is what
        // keeps `failed_procedures` at zero for admitted work), and the
        // gate itself admits retransmits of an already-charged start for
        // free.
        if env.msg.kind() == env.proc_kind.template().steps[0].kind {
            if let Some(gate) = self.admission.as_mut() {
                let class = AdmissionClass::of(env.proc_kind);
                match gate.decide(env.ue, env.procedure, class, now) {
                    AdmissionDecision::Admit => {
                        self.metrics.admitted_by_class[class.raw() as usize] += 1;
                    }
                    AdmissionDecision::Shed { retry_after_ms } => {
                        self.metrics.shed_by_class[class.raw() as usize] += 1;
                        self.metrics.rejects_sent += 1;
                        return vec![CtaOutput::ToBs {
                            bs: env.bs,
                            msg: SysMsg::Reject { ue: env.ue, class, retry_after_ms },
                        }];
                    }
                }
            }
        }
        let tick = self.clock.tick();
        env.clock = tick;
        env.via_cta = Some(self.config.id);
        let ue = env.ue;
        let mut out = Vec::new();

        {
            let ue_log = self.log.ue_mut(ue);
            ue_log.last_bs = env.bs;
            // A reordered or duplicated straggler from an already-completed
            // procedure must not (re-)mark the UE as mid-procedure: a stale
            // `in_flight` makes the failure handler "recover" a procedure
            // that already finished.
            if env.end_of_procedure {
                if ue_log.in_flight.is_none_or(|(p, _)| p <= env.procedure) {
                    ue_log.in_flight = None;
                }
            } else if env.procedure > ue_log.last_completed {
                ue_log.in_flight = Some((env.procedure, env.bs));
            }
        }

        if self.config.logging {
            // §4.2.4 step 4: a second procedure starting while the previous
            // one still lacks ACKs ⇒ notify the lagging replicas.
            let starting_new = self
                .log
                .ue(ue)
                .map(|l| {
                    !l.procedures.contains_key(&env.procedure)
                        && l.last_completed.raw() > 0
                        && l.procedures.contains_key(&l.last_completed)
                })
                .unwrap_or(false);
            if starting_new {
                let prev = self.log.ue(ue).map(|l| l.last_completed).expect("seen");
                out.extend(self.notify_outdated(ue, prev));
            }

            let bytes = self.wire_bytes(&env);
            self.log.append(env.clone(), bytes, now);
            if env.end_of_procedure {
                self.log.complete(ue, env.procedure, tick, now);
            }
        } else if env.end_of_procedure {
            self.log.complete(ue, env.procedure, tick, now);
        }

        // A (re-)attach binds the UE afresh to the ring's current choice —
        // the failed CPF is no longer on the ring.
        if matches!(
            env.proc_kind,
            neutrino_messages::ProcedureKind::InitialAttach
                | neutrino_messages::ProcedureKind::ReAttach
        ) && env.msg.kind() == env.proc_kind.template().steps[0].kind
        {
            self.assigned.remove(&ue);
        }
        let primary = match self.primary_for(ue) {
            Some(p) => p,
            None => return out, // no CPFs at all
        };
        if !self.failed.contains(&primary) {
            self.metrics.forwarded_uplink += 1;
            out.push(CtaOutput::ToCpf {
                cpf: primary,
                msg: SysMsg::Control(env),
            });
            return out;
        }
        out.extend(self.failover(env, now));
        out
    }

    /// Processes a downlink control message from a CPF: stamp, bookkeep
    /// procedure completion, forward to the UE's BS.
    pub fn on_downlink(&mut self, mut env: Envelope, now: Instant) -> Vec<CtaOutput> {
        let tick = self.clock.tick();
        env.clock = tick;
        env.via_cta = Some(self.config.id);
        if env.end_of_procedure {
            self.log.complete(env.ue, env.procedure, tick, now);
            let ue_log = self.log.ue_mut(env.ue);
            if ue_log.in_flight.is_none_or(|(p, _)| p <= env.procedure) {
                ue_log.in_flight = None;
            }
        }
        self.metrics.forwarded_downlink += 1;
        vec![CtaOutput::ToBs {
            bs: env.bs,
            msg: SysMsg::Control(env),
        }]
    }

    /// Records a replica ACK (§4.2.3 steps 3–4) and prunes fully-ACKed
    /// procedures.
    pub fn on_sync_ack(&mut self, ack: SyncAck, _now: Instant) -> Vec<CtaOutput> {
        let expected = self.expected_ack_set(ack.ue);
        self.log.ack(ack.ue, ack.procedure, ack.replica, &expected);
        // An ACK flowing for this UE means its primary's checkpoint path is
        // alive again: reset that CPF's resync-chase breaker.
        if self.admission.is_some() {
            if let Some(primary) = self.primary_for(ack.ue) {
                self.resync_chases.remove(&primary);
                self.resync_open_until.remove(&primary);
            }
        }
        Vec::new()
    }

    /// A primary answered a resync request by admitting its copy is *behind*
    /// the procedure the CTA is waiting on — it missed the messages (e.g.
    /// the final forward of the procedure was lost) and cannot re-checkpoint
    /// what it never saw. Replay the log to bring it up to date; processing
    /// the replayed messages makes the primary complete the procedure,
    /// commit, and checkpoint to its backups, whose ACKs then prune the log.
    pub fn on_resync_behind(&mut self, ue: UeId, have: ProcedureId, cpf: CpfId) -> Vec<CtaOutput> {
        // The CPF answered a chase — alive, just behind. Close its breaker.
        if self.admission.is_some() {
            self.resync_chases.remove(&cpf);
            self.resync_open_until.remove(&cpf);
        }
        if !self.config.logging
            || self.failed.contains(&cpf)
            || self.primary_for(ue) != Some(cpf)
            || !self.log.replay_covers(ue, have)
        {
            return Vec::new();
        }
        let messages = self.log.replay_set(ue, have);
        if messages.is_empty() {
            return Vec::new();
        }
        self.metrics.resyncs_replayed += 1;
        vec![CtaOutput::ToCpf {
            cpf,
            msg: SysMsg::Replay(Replay { ue, messages }),
        }]
    }

    /// Reacts to a CPF failure notice: takes the CPF out of the rings, then
    /// immediately recovers every UE that was mid-procedure on it (those UEs
    /// are waiting for a response that will never come — the last logged
    /// message is re-driven through failover so the new primary answers it).
    /// UEs with no procedure in flight recover lazily on their next message.
    pub fn on_cpf_failure(&mut self, cpf: CpfId, now: Instant) -> Vec<CtaOutput> {
        let mut stuck: Vec<Envelope> = Vec::new();
        let mut stuck_no_log: Vec<(UeId, BsId)> = Vec::new();
        for (ue, ue_log) in self.log.ues() {
            let primary = self
                .assigned
                .get(ue)
                .copied()
                .or_else(|| self.ring.primary(*ue));
            if primary != Some(cpf) {
                continue;
            }
            let (in_proc, bs) = match ue_log.in_flight {
                Some(x) => x,
                None => continue,
            };
            let last_logged = ue_log
                .procedures
                .get(&in_proc)
                .and_then(|p| p.messages.last());
            match last_logged {
                Some(last) => stuck.push(last.clone()),
                None => stuck_no_log.push((*ue, bs)),
            }
        }
        self.failed.insert(cpf);
        self.ring.remove(cpf);
        // The dead CPF's copies died with it: drop its ACKs so they never
        // count toward convergence or get offered as fetch sources.
        self.log.purge_replica_acks(cpf);
        // Backup sets shift for every UE whose successor list held the dead
        // CPF; stale cache entries would make `expected_ack_set` disagree
        // with what primaries (whose rings get the same removal) now sync.
        self.backups_cache.clear();
        // The log map iterates in UE-id order (BTreeMap), but keep the
        // ordering explicit so the failover message sequence stays pinned
        // even if the collection strategy changes again.
        stuck.sort_unstable_by_key(|env| env.ue);
        stuck_no_log.sort_unstable_by_key(|&(ue, _)| ue);
        let mut out = Vec::new();
        for env in stuck {
            out.extend(self.failover(env, now));
        }
        for (ue, bs) in stuck_no_log {
            // No log to recover from (EPC / logging off): re-attach.
            self.metrics.failover_re_attach += 1;
            self.log.ue_mut(ue).in_flight = None;
            out.push(CtaOutput::ToBs {
                bs,
                msg: SysMsg::AskReAttach { ue },
            });
        }
        out
    }

    /// Routes a Downlink Data Notification to the UE's current primary so
    /// it can page the UE (§3.1's reachability path). A dead primary runs
    /// the same recovery selection as control traffic: promote a synced
    /// backup (Neutrino) or wake the UE by re-attach (EPC).
    pub fn on_ddn(&mut self, ue: UeId, upf: neutrino_common::UpfId) -> Vec<CtaOutput> {
        let primary = match self.primary_for(ue) {
            Some(p) => p,
            None => return Vec::new(),
        };
        if !self.failed.contains(&primary) {
            return vec![CtaOutput::ToCpf {
                cpf: primary,
                msg: SysMsg::DdnRequest { ue, upf },
            }];
        }
        // Primary is down: pick the most-synced live backup, as in
        // `failover`, without a message to replay.
        let candidates = self.backups_for(ue);
        let failed = self.failed.clone();
        let best = candidates
            .into_iter()
            .filter(|b| !failed.contains(b))
            .filter_map(|b| {
                let synced = self
                    .log
                    .ue(ue)
                    .and_then(|l| l.synced_through.get(&b).copied())
                    .unwrap_or(ProcedureId(0));
                (synced.raw() > 0).then_some((b, synced))
            })
            .max_by_key(|(_, s)| *s);
        match best {
            Some((replica, _)) if self.config.failover == FailoverPolicy::ReplayFromLog => {
                self.assigned.insert(ue, replica);
                self.metrics.failover_up_to_date += 1;
                vec![CtaOutput::ToCpf {
                    cpf: replica,
                    msg: SysMsg::DdnRequest { ue, upf },
                }]
            }
            _ => {
                // Nothing consistent to page from: wake the UE directly.
                self.metrics.failover_re_attach += 1;
                let bs = self.log.ue(ue).map(|l| l.last_bs).unwrap_or(BsId::new(0));
                vec![CtaOutput::ToBs {
                    bs,
                    msg: SysMsg::AskReAttach { ue },
                }]
            }
        }
    }

    /// The ACK-timeout scan (§4.2.4 step 1): run periodically by the driver.
    ///
    /// Before a procedure's ACKs time out entirely, the scan asks the UE's
    /// primary to re-send the checkpoint (a lost `StateSync` or `SyncAck`
    /// otherwise leaves the replicas permanently behind), backing off
    /// exponentially from [`CtaConfig::resync_base`] per attempt.
    pub fn scan(&mut self, now: Instant) -> Vec<CtaOutput> {
        // Graceful degradation: while the admission gate is shedding, the
        // level-2 replication sweep (converged pruning, resync chases, and
        // ACK-timeout expiry) is *deferred* — the log keeps every
        // unconverged procedure, so the consistency audit stays clean, and
        // the sweep resumes untouched once the storm drains.
        if let Some(gate) = self.admission.as_mut() {
            if gate.under_pressure(now) {
                self.metrics.acks_deferred += 1;
                return Vec::new();
            }
        }
        let timeout = self.config.ack_timeout;
        let base = self.config.resync_base.as_nanos();
        let mut completed: Vec<(UeId, ProcedureId, Instant, u32)> = Vec::new();
        for (ue, ue_log) in self.log.ues() {
            for (proc, entry) in &ue_log.procedures {
                if let Some(done) = entry.completed_at {
                    completed.push((*ue, *proc, done, entry.resync_attempts));
                }
            }
        }
        // Act in (ue, procedure) order so the message sequence is
        // identical on every run (the log map already iterates in id order;
        // the sort keeps that invariant explicit).
        completed.sort_unstable();
        let mut expired: Vec<(UeId, ProcedureId)> = Vec::new();
        let mut lagging: Vec<(UeId, ProcedureId)> = Vec::new();
        for (ue, proc, done, attempts) in completed {
            // Converged sweep: after a failover the expected-ACK set can
            // shrink or shift *after* the ACKs arrived, so `ack()` never got
            // a chance to prune. Enough distinct live replicas holding the
            // state is convergence regardless of which ring slots they sit
            // on — drop the entry without chasing or counting a timeout.
            let expected = self.expected_ack_set(ue);
            let converged = !expected.is_empty()
                && self
                    .log
                    .ue(ue)
                    .and_then(|l| l.procedures.get(&proc))
                    .is_some_and(|e| {
                        expected.iter().all(|r| e.acks.contains(r))
                            || e.acks.len() >= expected.len()
                    });
            if converged {
                self.log.drop_procedure(ue, proc);
                continue;
            }
            if done + timeout <= now {
                expired.push((ue, proc));
            } else if base > 0 {
                let wait = Duration::from_nanos(base.saturating_mul(1u64 << attempts.min(20)));
                if done + wait <= now {
                    lagging.push((ue, proc));
                }
            }
        }
        let mut out = Vec::new();
        let mut asked: BTreeSet<UeId> = BTreeSet::new();
        // `lagging` is (ue, proc)-sorted, so the *last* entry per UE is its
        // highest pending procedure; cumulative ACKs make one re-checkpoint
        // of the current state cover every earlier procedure too. Bump the
        // backoff on all of them, but send one request per UE.
        for i in 0..lagging.len() {
            let (ue, proc) = lagging[i];
            let expected = self.expected_ack_set(ue);
            let entry = match self.log.ue(ue).and_then(|l| l.procedures.get(&proc)) {
                Some(e) => e,
                None => continue,
            };
            if expected.is_empty() || expected.iter().all(|r| entry.acks.contains(r)) {
                continue; // nothing to chase (the timeout will reap it)
            }
            if let Some(e) = self.log.ue_mut(ue).procedures.get_mut(&proc) {
                e.resync_attempts += 1;
            }
            let last_for_ue = lagging[i + 1..].iter().all(|(u, _)| *u != ue);
            if !last_for_ue || asked.contains(&ue) {
                continue;
            }
            let primary = match self.primary_for(ue) {
                Some(p) if !self.failed.contains(&p) => p,
                _ => continue, // failover will rebuild state instead
            };
            // Circuit breaker (overload mode only): a primary that has
            // soaked up several chases without a sign of life is struggling
            // — hammering it with more re-checkpoint requests only deepens
            // its queue. Suppress chases to it for a cooldown instead.
            if self.admission.is_some() {
                if self.resync_open_until.get(&primary).is_some_and(|&until| now < until) {
                    self.metrics.breaker_suppressed += 1;
                    continue;
                }
                let chases = self.resync_chases.entry(primary).or_insert(0);
                *chases += 1;
                if *chases >= RESYNC_BREAKER_TRIP {
                    *chases = 0;
                    self.resync_open_until.insert(primary, now + RESYNC_BREAKER_COOLDOWN);
                    self.metrics.breaker_opened += 1;
                }
            }
            asked.insert(ue);
            self.metrics.resyncs_requested += 1;
            out.push(CtaOutput::ToCpf {
                cpf: primary,
                msg: SysMsg::ResyncRequest {
                    ue,
                    procedure: proc,
                    cta: self.config.id,
                },
            });
        }
        for (ue, proc) in expired {
            out.extend(self.notify_outdated(ue, proc));
            self.log.drop_procedure(ue, proc);
            self.metrics.timeout_pruned += 1;
        }
        out
    }

    /// Tells replicas lagging on `proc` that their state is outdated,
    /// listing who does hold fresh state (§4.2.4 step 1a).
    fn notify_outdated(&mut self, ue: UeId, proc: ProcedureId) -> Vec<CtaOutput> {
        let (end_clock, acked) = match self.log.ue(ue).and_then(|l| l.procedures.get(&proc)) {
            Some(entry) => (
                entry.end_clock.unwrap_or(ClockTick::ZERO),
                entry.acks.clone(),
            ),
            None => return Vec::new(),
        };
        let expected = self.expected_ack_set(ue);
        let mut up_to_date: Vec<CpfId> = acked.iter().copied().collect();
        up_to_date.sort_unstable();
        if let Some(p) = self.primary_for(ue) {
            if !self.failed.contains(&p) {
                up_to_date.push(p);
            }
        }
        let mut out = Vec::new();
        for replica in expected {
            if !acked.contains(&replica) {
                self.metrics.outdated_notices += 1;
                out.push(CtaOutput::ToCpf {
                    cpf: replica,
                    msg: SysMsg::MarkOutdated(MarkOutdated {
                        ue,
                        clock: end_clock,
                        up_to_date: up_to_date.clone(),
                    }),
                });
            }
        }
        out
    }

    /// Failure recovery for one uplink message whose primary is down
    /// (§4.2.5).
    fn failover(&mut self, env: Envelope, _now: Instant) -> Vec<CtaOutput> {
        let ue = env.ue;
        match self.config.failover {
            FailoverPolicy::ReAttach => {
                self.metrics.failover_re_attach += 1;
                vec![CtaOutput::ToBs {
                    bs: env.bs,
                    msg: SysMsg::AskReAttach { ue },
                }]
            }
            FailoverPolicy::AnyPeer => match self.ring.primary(ue) {
                Some(peer) => {
                    self.assigned.insert(ue, peer);
                    self.metrics.failover_up_to_date += 1;
                    vec![CtaOutput::ToCpf {
                        cpf: peer,
                        msg: SysMsg::Control(env),
                    }]
                }
                None => Vec::new(),
            },
            FailoverPolicy::ReplayFromLog => {
                // Pick the live backup synced furthest ahead.
                let candidates = self.backups_for(ue);
                let failed = self.failed.clone();
                let mut best: Option<(CpfId, ProcedureId)> = None;
                for b in candidates {
                    if failed.contains(&b) {
                        continue;
                    }
                    let synced = self
                        .log
                        .ue(ue)
                        .and_then(|l| l.synced_through.get(&b).copied())
                        .unwrap_or(ProcedureId(0));
                    if synced.raw() == 0 {
                        continue; // never held this UE's state: ineligible
                    }
                    if best.map(|(_, s)| synced > s).unwrap_or(true) {
                        best = Some((b, synced));
                    }
                }
                match best {
                    Some((replica, synced)) if self.log.replay_covers(ue, synced) => {
                        // Everything after `synced` (including the current
                        // procedure's earlier messages, and this message —
                        // appended before routing) replays onto the backup.
                        let mut messages = self.log.replay_set(ue, synced);
                        // The message we are routing right now must not be
                        // replayed *and* forwarded.
                        messages.retain(|m| m.clock != env.clock);
                        self.assigned.insert(ue, replica);
                        let mut out = Vec::new();
                        if messages.is_empty() {
                            self.metrics.failover_up_to_date += 1;
                        } else {
                            self.metrics.failover_replayed += 1;
                            out.push(CtaOutput::ToCpf {
                                cpf: replica,
                                msg: SysMsg::Replay(Replay { ue, messages }),
                            });
                        }
                        self.metrics.forwarded_uplink += 1;
                        out.push(CtaOutput::ToCpf {
                            cpf: replica,
                            msg: SysMsg::Control(env),
                        });
                        out
                    }
                    _ => {
                        // Scenario 3: nobody can be made consistent.
                        self.metrics.failover_re_attach += 1;
                        vec![CtaOutput::ToBs {
                            bs: env.bs,
                            msg: SysMsg::AskReAttach { ue },
                        }]
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_messages::{MessageKind, ProcedureKind};

    fn ring() -> RingStack {
        let l1: Vec<CpfId> = (0..5).map(CpfId::new).collect();
        let l2: Vec<CpfId> = (5..20).map(CpfId::new).collect();
        RingStack::new(&l1, &l2, 2)
    }

    fn cta() -> CtaCore {
        CtaCore::new(
            CtaConfig::neutrino(CtaId::new(0), CodecKind::FastbufOptimized),
            ring(),
        )
    }

    fn ul(ue: u64, proc: u64, kind: MessageKind, eop: bool) -> Envelope {
        let e = Envelope::uplink(
            UeId::new(ue),
            ProcedureId::new(proc),
            ProcedureKind::ServiceRequest,
            kind.sample(ue),
        )
        .from_bs(BsId::new(1));
        if eop {
            e.ending_procedure()
        } else {
            e
        }
    }

    fn route_target(outs: &[CtaOutput]) -> CpfId {
        outs.iter()
            .find_map(|o| match o {
                CtaOutput::ToCpf {
                    cpf,
                    msg: SysMsg::Control(_),
                } => Some(*cpf),
                _ => None,
            })
            .expect("a control forward")
    }

    #[test]
    fn stamps_strictly_increasing_clocks() {
        let mut c = cta();
        let o1 = c.on_uplink(ul(1, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        let o2 = c.on_uplink(ul(1, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        let get_clock = |outs: &[CtaOutput]| match &outs[0] {
            CtaOutput::ToCpf {
                msg: SysMsg::Control(e),
                ..
            } => e.clock,
            other => panic!("unexpected {other:?}"),
        };
        assert!(get_clock(&o2) > get_clock(&o1));
    }

    #[test]
    fn routes_to_ring_primary_consistently() {
        let mut c = cta();
        let t1 =
            route_target(&c.on_uplink(ul(7, 1, MessageKind::ServiceRequest, false), Instant::ZERO));
        let t2 =
            route_target(&c.on_uplink(ul(7, 1, MessageKind::ServiceRequest, false), Instant::ZERO));
        assert_eq!(t1, t2);
        assert!(t1.raw() < 5, "primary must be a level-1 CPF");
    }

    #[test]
    fn logs_and_prunes_on_full_acks() {
        let mut c = cta();
        let ue = UeId::new(3);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        c.on_uplink(
            ul(3, 1, MessageKind::InitialContextSetupResponse, true),
            Instant::ZERO,
        );
        assert!(c.log_bytes() > 0);
        let backups = c.backups_for(ue);
        assert_eq!(backups.len(), 2);
        for b in &backups {
            c.on_sync_ack(
                SyncAck {
                    ue,
                    replica: *b,
                    procedure: ProcedureId::new(1),
                    end_clock: ClockTick(2),
                },
                Instant::ZERO,
            );
        }
        assert_eq!(c.log_bytes(), 0, "fully acked procedure must be pruned");
        assert!(c.max_log_bytes() > 0);
    }

    #[test]
    fn failover_scenario1_routes_to_synced_backup_without_replay() {
        let mut c = cta();
        let ue = UeId::new(3);
        // Complete procedure 1, both backups ack.
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let backups = c.backups_for(ue);
        for b in &backups {
            c.on_sync_ack(
                SyncAck {
                    ue,
                    replica: *b,
                    procedure: ProcedureId::new(1),
                    end_clock: ClockTick(1),
                },
                Instant::ZERO,
            );
        }
        let primary = c.primary_for(ue).unwrap();
        c.on_cpf_failure(primary, Instant::ZERO);
        // Next message fails over with no replay.
        let outs = c.on_uplink(ul(3, 2, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert!(backups.contains(&route_target(&outs)));
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                CtaOutput::ToCpf {
                    msg: SysMsg::Replay(_),
                    ..
                }
            )),
            "scenario 1 must not replay"
        );
        assert_eq!(c.metrics().failover_up_to_date, 1);
    }

    #[test]
    fn failover_scenario2_replays_ongoing_procedure() {
        let mut c = cta();
        let ue = UeId::new(3);
        // Procedure 1 completes and is acked.
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let backups = c.backups_for(ue);
        for b in &backups {
            c.on_sync_ack(
                SyncAck {
                    ue,
                    replica: *b,
                    procedure: ProcedureId::new(1),
                    end_clock: ClockTick(1),
                },
                Instant::ZERO,
            );
        }
        // Procedure 2 starts (two messages logged), then the primary dies.
        // The failure notice itself must recover the stuck UE: replay the
        // earlier message(s) and re-drive the unanswered last one.
        c.on_uplink(ul(3, 2, MessageKind::ServiceRequest, false), Instant::ZERO);
        c.on_uplink(
            ul(3, 2, MessageKind::InitialContextSetupResponse, false),
            Instant::ZERO,
        );
        let primary = c.primary_for(ue).unwrap();
        let outs = c.on_cpf_failure(primary, Instant::ZERO);
        let replay = outs.iter().find_map(|o| match o {
            CtaOutput::ToCpf {
                cpf,
                msg: SysMsg::Replay(r),
            } => Some((*cpf, r.clone())),
            _ => None,
        });
        let (replica, replay) = replay.expect("scenario 2 must replay");
        assert_eq!(replay.messages.len(), 1, "only the earlier message replays");
        assert_eq!(replay.messages[0].procedure, ProcedureId::new(2));
        assert_eq!(
            route_target(&outs),
            replica,
            "the unanswered message is re-driven to the new primary"
        );
        assert_eq!(c.metrics().failover_replayed, 1);
        // The UE's next message routes to the promoted replica, no replay.
        let outs = c.on_uplink(ul(3, 2, MessageKind::AttachComplete, false), Instant::ZERO);
        assert_eq!(route_target(&outs), replica);
        assert!(!outs.iter().any(|o| matches!(
            o,
            CtaOutput::ToCpf {
                msg: SysMsg::Replay(_),
                ..
            }
        )));
    }

    #[test]
    fn failover_scenario3_asks_re_attach_when_nobody_synced() {
        let mut c = cta();
        let ue = UeId::new(3);
        // Procedure in flight, no acks ever.
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        let primary = c.primary_for(ue).unwrap();
        let outs = c.on_cpf_failure(primary, Instant::ZERO);
        assert!(
            outs.iter().any(|o| matches!(
                o,
                CtaOutput::ToBs {
                    msg: SysMsg::AskReAttach { .. },
                    ..
                }
            )),
            "scenario 3 must re-attach, got {outs:?}"
        );
        assert_eq!(c.metrics().failover_re_attach, 1);
        let _ = ue;
    }

    #[test]
    fn epc_policy_always_re_attaches() {
        let mut c = CtaCore::new(CtaConfig::epc(CtaId::new(0)), ring());
        let ue = UeId::new(3);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let primary = c.primary_for(ue).unwrap();
        // EPC logs nothing, so the notice alone produces no outputs; the
        // next uplink triggers the re-attach.
        assert!(c.on_cpf_failure(primary, Instant::ZERO).is_empty());
        let outs = c.on_uplink(ul(3, 2, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert!(outs.iter().any(|o| matches!(
            o,
            CtaOutput::ToBs {
                msg: SysMsg::AskReAttach { .. },
                ..
            }
        )));
    }

    #[test]
    fn logging_disabled_keeps_log_empty() {
        let mut cfg = CtaConfig::neutrino(CtaId::new(0), CodecKind::FastbufOptimized);
        cfg.logging = false;
        let mut c = CtaCore::new(cfg, ring());
        for i in 0..50 {
            c.on_uplink(
                ul(3, i + 1, MessageKind::ServiceRequest, true),
                Instant::ZERO,
            );
        }
        assert_eq!(c.log_bytes(), 0);
        assert_eq!(c.max_log_bytes(), 0);
    }

    #[test]
    fn scan_times_out_unacked_procedures() {
        let mut c = cta();
        let ue = UeId::new(3);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let backups = c.backups_for(ue);
        // Only one of two backups acks.
        c.on_sync_ack(
            SyncAck {
                ue,
                replica: backups[0],
                procedure: ProcedureId::new(1),
                end_clock: ClockTick(1),
            },
            Instant::ZERO,
        );
        // Before the timeout: only a resync request to the primary, no
        // MarkOutdated yet, log intact.
        let early = c.scan(Instant::from_secs(10));
        assert!(early.iter().all(|o| matches!(
            o,
            CtaOutput::ToCpf {
                msg: SysMsg::ResyncRequest { .. },
                ..
            }
        )));
        assert!(c.log_bytes() > 0);
        // After the timeout: MarkOutdated to the laggard, log dropped.
        let outs = c.scan(Instant::from_secs(31));
        let notices: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                CtaOutput::ToCpf {
                    cpf,
                    msg: SysMsg::MarkOutdated(m),
                } => Some((*cpf, m.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].0, backups[1]);
        assert!(notices[0].1.up_to_date.contains(&backups[0]));
        assert_eq!(c.log_bytes(), 0);
        assert_eq!(c.metrics().timeout_pruned, 1);
    }

    #[test]
    fn scan_requests_resync_with_exponential_backoff() {
        let mut c = cta();
        let ue = UeId::new(3);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let primary = c.primary_for(ue).unwrap();
        // Too early: the base backoff (4s) has not elapsed.
        assert!(c.scan(Instant::from_secs(2)).is_empty());
        // First request fires after the base delay, aimed at the primary.
        let outs = c.scan(Instant::from_secs(5));
        assert!(
            outs.iter().any(|o| matches!(
                o,
                CtaOutput::ToCpf { cpf, msg: SysMsg::ResyncRequest { ue: u, .. } }
                    if *cpf == primary && *u == ue
            )),
            "expected a resync request: {outs:?}"
        );
        // Backoff doubled to 8s from completion: quiet at 6s, fires by 9s.
        assert!(c.scan(Instant::from_secs(6)).is_empty());
        assert!(!c.scan(Instant::from_secs(9)).is_empty());
        assert_eq!(c.metrics().resyncs_requested, 2);
        // Once every expected replica ACKs, the chase stops.
        for b in c.backups_for(ue) {
            c.on_sync_ack(
                SyncAck {
                    ue,
                    replica: b,
                    procedure: ProcedureId::new(1),
                    end_clock: ClockTick(1),
                },
                Instant::ZERO,
            );
        }
        assert!(c.scan(Instant::from_secs(20)).is_empty());
        assert_eq!(c.log_bytes(), 0);
    }

    #[test]
    fn resync_behind_primary_gets_a_log_replay() {
        let mut c = cta();
        let ue = UeId::new(3);
        // Procedure 1 completes at the CTA, but the primary missed its
        // final message (lost in transit): its copy never reached v1, so
        // the resync chase's re-checkpoint request cannot be answered.
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        c.on_uplink(
            ul(3, 1, MessageKind::InitialContextSetupResponse, true),
            Instant::ZERO,
        );
        let primary = c.primary_for(ue).unwrap();
        let outs = c.on_resync_behind(ue, ProcedureId::new(0), primary);
        let replay = outs
            .iter()
            .find_map(|o| match o {
                CtaOutput::ToCpf {
                    cpf,
                    msg: SysMsg::Replay(r),
                } => Some((*cpf, r.clone())),
                _ => None,
            })
            .expect("behind primary must get a replay");
        assert_eq!(replay.0, primary);
        assert_eq!(replay.1.messages.len(), 2, "both logged messages replay");
        assert_eq!(c.metrics().resyncs_replayed, 1);
        // A report from a CPF that is no longer the UE's primary is stale:
        // replaying to it would fork the serving copy.
        assert!(c.on_resync_behind(ue, ProcedureId::new(0), CpfId::new(99)).is_empty());
    }

    #[test]
    fn straggler_from_completed_procedure_does_not_mark_ue_in_flight() {
        let mut c = cta();
        let ue = UeId::new(3);
        // Procedure 1 completes, then a reordered non-final message of the
        // same procedure arrives late.
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert_eq!(
            c.log().ue(ue).unwrap().in_flight,
            None,
            "a straggler from a finished procedure must not re-open it"
        );
        // A genuinely new procedure still marks the UE in flight, and a
        // late end-of-procedure straggler from procedure 1 must not clear
        // the newer procedure's marker.
        c.on_uplink(ul(3, 2, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert_eq!(
            c.log().ue(ue).unwrap().in_flight.map(|(p, _)| p),
            Some(ProcedureId::new(2))
        );
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        assert_eq!(
            c.log().ue(ue).unwrap().in_flight.map(|(p, _)| p),
            Some(ProcedureId::new(2))
        );
    }

    #[test]
    fn new_procedure_with_missing_acks_notifies_laggards() {
        let mut c = cta();
        let ue = UeId::new(3);
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        let backups = c.backups_for(ue);
        c.on_sync_ack(
            SyncAck {
                ue,
                replica: backups[0],
                procedure: ProcedureId::new(1),
                end_clock: ClockTick(1),
            },
            Instant::ZERO,
        );
        // Second procedure starts while backup[1] never acked (§4.2.4(4)).
        let outs = c.on_uplink(ul(3, 2, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert!(
            outs.iter().any(|o| matches!(
                o,
                CtaOutput::ToCpf { cpf, msg: SysMsg::MarkOutdated(_) } if *cpf == backups[1]
            )),
            "laggard must be notified: {outs:?}"
        );
    }

    fn cta_with_admission(params: AdmissionParams) -> CtaCore {
        let mut cfg = CtaConfig::neutrino(CtaId::new(0), CodecKind::FastbufOptimized);
        cfg.admission = Some(params);
        CtaCore::new(cfg, ring())
    }

    fn tight_params() -> AdmissionParams {
        // Service-request reserve is burst/8 (0.5 tokens): with 4 tokens of
        // burst, exactly 3 service-request starts admit before shedding.
        AdmissionParams { rate_pps: 10, burst: 4, queue_cap: 16, retry_after_base_ms: 20 }
    }

    #[test]
    fn admission_sheds_with_reject_and_leaves_no_log_trace() {
        let mut c = cta_with_admission(tight_params());
        for ue in 0..3u64 {
            let outs = c.on_uplink(ul(ue, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
            assert!(matches!(outs[0], CtaOutput::ToCpf { .. }), "{outs:?}");
        }
        let bytes_before = c.log_bytes();
        let outs = c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert!(
            matches!(
                outs.as_slice(),
                [CtaOutput::ToBs {
                    bs,
                    msg: SysMsg::Reject { ue, class: AdmissionClass::ServiceRequest, .. },
                }] if *bs == BsId::new(1) && *ue == UeId::new(3)
            ),
            "fourth start must shed explicitly: {outs:?}"
        );
        assert_eq!(c.log_bytes(), bytes_before, "a shed uplink must leave no log trace");
        assert_eq!(c.metrics().rejects_sent, 1);
        assert_eq!(c.metrics().shed_by_class[AdmissionClass::ServiceRequest.raw() as usize], 1);
        assert_eq!(c.metrics().admitted_by_class[AdmissionClass::ServiceRequest.raw() as usize], 3);
    }

    #[test]
    fn admission_passes_mid_procedure_messages_of_admitted_work() {
        let mut c = cta_with_admission(tight_params());
        // Admit UE 0's procedure, then drain the remaining budget.
        c.on_uplink(ul(0, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        c.on_uplink(ul(1, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        c.on_uplink(ul(2, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        // Budget exhausted — but UE 0's later step and its retransmitted
        // start both pass.
        let outs = c.on_uplink(
            ul(0, 1, MessageKind::InitialContextSetupResponse, true),
            Instant::ZERO,
        );
        assert!(matches!(outs.last(), Some(CtaOutput::ToCpf { .. })), "{outs:?}");
        let outs = c.on_uplink(ul(0, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        assert!(
            matches!(outs.last(), Some(CtaOutput::ToCpf { .. })),
            "retransmit of an admitted start must pass: {outs:?}"
        );
        assert_eq!(c.metrics().rejects_sent, 0);
    }

    #[test]
    fn scan_defers_under_pressure_and_resumes_after_drain() {
        let mut c = cta_with_admission(tight_params());
        c.on_uplink(ul(3, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        // Drain the bucket below the detach reserve.
        c.on_uplink(ul(4, 1, MessageKind::ServiceRequest, false), Instant::ZERO);
        // 50ms later only half a token has refilled — still under pressure.
        assert!(c.scan(Instant::from_millis(50)).is_empty(), "scan must defer under pressure");
        assert_eq!(c.metrics().acks_deferred, 1);
        assert!(c.log_bytes() > 0, "deferred sweep must not prune the log");
        // After refill the sweep resumes and chases the missing ACKs.
        let outs = c.scan(Instant::from_secs(10));
        assert!(
            outs.iter().any(|o| matches!(
                o,
                CtaOutput::ToCpf { msg: SysMsg::ResyncRequest { .. }, .. }
            )),
            "sweep must resume after the storm drains: {outs:?}"
        );
    }

    #[test]
    fn resync_breaker_opens_after_repeated_chases_and_resets_on_ack() {
        let mut params = tight_params();
        // Plenty of budget so pressure never defers the scan itself.
        params.rate_pps = 100_000;
        params.burst = 100_000;
        let mut c = cta_with_admission(params);
        // Find two UEs sharing a primary; the lower id trips the breaker
        // and the higher id's chase is then suppressed in the same scan.
        let mut by_primary: BTreeMap<CpfId, Vec<u64>> = BTreeMap::new();
        for ue in 0..50u64 {
            let p = c.primary_for(UeId::new(ue)).unwrap();
            by_primary.entry(p).or_default().push(ue);
        }
        let (primary, ues) =
            by_primary.into_iter().find(|(_, v)| v.len() >= 2).expect("shared primary");
        let (ua, ub) = (ues[0], ues[1]);
        // ua completes at t=0: chases due at 4s, 8s, 16s (trip on the 3rd).
        c.on_uplink(ul(ua, 1, MessageKind::ServiceRequest, true), Instant::ZERO);
        assert!(!c.scan(Instant::from_secs(5)).is_empty());
        assert!(!c.scan(Instant::from_secs(9)).is_empty());
        // ub completes at t=13: its first chase is due at 17s — the same
        // scan in which ua's third chase trips the breaker.
        c.on_uplink(ul(ub, 1, MessageKind::ServiceRequest, true), Instant::from_secs(13));
        let outs = c.scan(Instant::from_secs(17));
        let chased: Vec<UeId> = outs
            .iter()
            .filter_map(|o| match o {
                CtaOutput::ToCpf { msg: SysMsg::ResyncRequest { ue, .. }, .. } => Some(*ue),
                _ => None,
            })
            .collect();
        assert_eq!(chased, vec![UeId::new(ua)], "ub's chase must be suppressed: {outs:?}");
        assert_eq!(c.metrics().breaker_opened, 1);
        assert_eq!(c.metrics().breaker_suppressed, 1);
        // A sync ACK through the shared primary closes the breaker.
        let replica = c.backups_for(UeId::new(ua))[0];
        c.on_sync_ack(
            SyncAck {
                ue: UeId::new(ua),
                replica,
                procedure: ProcedureId::new(1),
                end_clock: ClockTick(1),
            },
            Instant::from_secs(18),
        );
        assert!(!c.resync_open_until.contains_key(&primary));
        assert!(!c.resync_chases.contains_key(&primary));
    }

    #[test]
    fn downlink_routes_to_bs_and_completes_procedures() {
        let mut c = cta();
        let env = Envelope::downlink(
            UeId::new(4),
            ProcedureId::new(1),
            ProcedureKind::TrackingAreaUpdate,
            MessageKind::TauAccept.sample(4),
        )
        .from_bs(BsId::new(9))
        .ending_procedure();
        let outs = c.on_downlink(env, Instant::ZERO);
        assert!(matches!(
            &outs[0],
            CtaOutput::ToBs { bs, msg: SysMsg::Control(e) }
                if *bs == BsId::new(9) && e.clock > ClockTick::ZERO
        ));
        assert_eq!(c.metrics().forwarded_downlink, 1);
    }

    #[test]
    fn misrouted_sysmsg_is_counted_not_swallowed() {
        let mut c = cta();
        // The flow contract says a CTA never receives MigrationAck (it is a
        // CPF→CPF message) — it must land in the counter, not vanish.
        let outs = c.handle(SysMsg::MigrationAck { ue: UeId::new(7) }, Instant::ZERO);
        assert!(outs.is_empty());
        assert_eq!(c.metrics().unexpected_msgs, 1);
    }
}
