//! The CTA's in-memory message log (§4.2.3).
//!
//! Per UE, per procedure: the logged uplink messages (what a replay
//! reconstructs state from), the end-of-procedure logical clock, and the set
//! of replicas that have ACKed the procedure's state checkpoint. The log
//! tracks its own byte footprint — Fig. 17 reports exactly this number.

use neutrino_common::clock::ClockTick;
use neutrino_common::time::Instant;
use neutrino_common::{CpfId, ProcedureId, UeId};
use neutrino_messages::Envelope;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Test-only lever: when set, [`MessageLog::replay_covers`] reverts to its
/// original contiguity-scan implementation — the bug the replay-floor
/// rework fixed, where a *phantom* procedure id (consumed by a UE whose
/// every message was lost before reaching this CTA) reads as a permanent,
/// unclosable gap and wrongly fails coverage forever after. The exhaustive
/// checker's seeded-bug regression test flips this to prove it can
/// rediscover the violation; production code must never touch it.
static REPLAY_FLOOR_BUG: AtomicBool = AtomicBool::new(false);

/// Enables or disables the seeded `replay_covers` bug (see
/// [`REPLAY_FLOOR_BUG`]). Test-only; affects every CTA in the process.
pub fn set_replay_floor_bug(enabled: bool) {
    REPLAY_FLOOR_BUG.store(enabled, Ordering::SeqCst);
}

/// Log of one procedure's messages and replication progress.
#[derive(Debug, Clone)]
pub struct ProcedureLog {
    /// Logged uplink messages in logical-clock order.
    pub messages: Vec<Envelope>,
    /// Wire bytes those messages occupy.
    pub bytes: usize,
    /// Clock of the procedure's last message, once seen.
    pub end_clock: Option<ClockTick>,
    /// Replicas that ACKed the checkpoint of this procedure.
    pub acks: BTreeSet<CpfId>,
    /// When the procedure completed (for the ACK timeout scan).
    pub completed_at: Option<Instant>,
    /// When the first message was logged.
    pub started_at: Instant,
    /// Checkpoint resend requests issued for this procedure (exponential
    /// backoff: the next resend waits `base << resync_attempts`).
    pub resync_attempts: u32,
}

impl ProcedureLog {
    /// Whether this procedure's logged messages begin with the first step of
    /// an attach-class procedure. Such a procedure rebuilds the UE's state
    /// *from scratch* (§4.2.1) — replaying it needs no prior copy, so its
    /// presence in the log re-anchors replay coverage regardless of how far
    /// behind the target replica is.
    pub fn is_attach_reset(&self) -> bool {
        self.messages.first().is_some_and(|env| {
            matches!(
                env.proc_kind,
                neutrino_messages::ProcedureKind::InitialAttach
                    | neutrino_messages::ProcedureKind::ReAttach
            ) && env.msg.kind() == env.proc_kind.template().steps[0].kind
        })
    }

    fn new(now: Instant) -> Self {
        ProcedureLog {
            messages: Vec::new(),
            bytes: 0,
            end_clock: None,
            acks: BTreeSet::new(),
            completed_at: None,
            started_at: now,
            resync_attempts: 0,
        }
    }
}

/// Per-UE log state.
#[derive(Debug, Clone)]
pub struct UeLog {
    /// Procedures with still-logged messages (pruned once fully ACKed).
    pub procedures: BTreeMap<ProcedureId, ProcedureLog>,
    /// Last procedure each replica is known (via ACK) to be synced through.
    pub synced_through: BTreeMap<CpfId, ProcedureId>,
    /// Last procedure observed to complete.
    pub last_completed: ProcedureId,
    /// Highest procedure whose messages were removed from the log (pruned
    /// on ACK convergence or timeout). A replay can fully rebuild state
    /// only from a base at or above this floor — anything below would need
    /// messages no longer held. Procedure ids *never seen here* (the UE
    /// consumed an id without any message reaching this CTA) are not gaps:
    /// only actual removals raise the floor.
    pub replay_floor: ProcedureId,
    /// The procedure currently in flight (set on uplink, cleared when the
    /// end-of-procedure message passes), with the UE's BS — used to recover
    /// stuck UEs after a CPF failure even when message logging is off.
    pub in_flight: Option<(ProcedureId, neutrino_common::BsId)>,
    /// The BS the UE was last heard from (paging / re-attach routing).
    pub last_bs: neutrino_common::BsId,
}

impl Default for UeLog {
    fn default() -> Self {
        UeLog {
            procedures: BTreeMap::new(),
            synced_through: BTreeMap::new(),
            last_completed: ProcedureId(0),
            replay_floor: ProcedureId(0),
            in_flight: None,
            last_bs: neutrino_common::BsId::new(0),
        }
    }
}

/// The whole in-memory message store, with byte accounting.
#[derive(Debug, Default)]
pub struct MessageLog {
    ues: BTreeMap<UeId, UeLog>,
    bytes: usize,
    max_bytes: usize,
}

impl MessageLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Largest footprint ever observed (Fig. 17's y-axis).
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Per-UE view (creating it if absent).
    pub fn ue_mut(&mut self, ue: UeId) -> &mut UeLog {
        self.ues.entry(ue).or_default()
    }

    /// Per-UE view, read-only.
    pub fn ue(&self, ue: UeId) -> Option<&UeLog> {
        self.ues.get(&ue)
    }

    /// Appends an uplink message of `wire_bytes` to its procedure's log.
    pub fn append(&mut self, env: Envelope, wire_bytes: usize, now: Instant) {
        let entry = self
            .ues
            .entry(env.ue)
            .or_default()
            .procedures
            .entry(env.procedure)
            .or_insert_with(|| ProcedureLog::new(now));
        entry.messages.push(env);
        entry.bytes += wire_bytes;
        self.bytes += wire_bytes;
        if self.bytes > self.max_bytes {
            self.max_bytes = self.bytes;
        }
    }

    /// Marks a procedure complete (its last message just passed through).
    pub fn complete(&mut self, ue: UeId, proc: ProcedureId, end_clock: ClockTick, now: Instant) {
        let ue_log = self.ues.entry(ue).or_default();
        if proc > ue_log.last_completed {
            ue_log.last_completed = proc;
        }
        let entry = ue_log
            .procedures
            .entry(proc)
            .or_insert_with(|| ProcedureLog::new(now));
        entry.end_clock = Some(end_clock);
        entry.completed_at = Some(now);
    }

    /// Records a replica ACK; prunes the procedure's messages once the
    /// checkpoint is durable enough. Returns `true` when pruning happened.
    ///
    /// ACKs are **cumulative**: a checkpoint carries the UE's full state,
    /// so a replica ACKing procedure `proc` is synced through every earlier
    /// procedure too — the ACK is recorded on (and may prune) all still-
    /// logged entries up to and including `proc`. That makes a single
    /// resync round converge even after earlier SyncAcks were lost.
    ///
    /// A procedure counts as converged when every replica in `expected` has
    /// ACKed **or** when at least `expected.len()` distinct replicas have —
    /// after a failover the acting primary may checkpoint to a different
    /// (but equally durable) replica set than the ring now predicts, and
    /// identity-matching alone would chase ACKs that can never come.
    pub fn ack(&mut self, ue: UeId, proc: ProcedureId, replica: CpfId, expected: &[CpfId]) -> bool {
        let ue_log = self.ues.entry(ue).or_default();
        let prev = ue_log
            .synced_through
            .entry(replica)
            .or_insert(ProcedureId(0));
        if proc > *prev {
            *prev = proc;
        }
        // Earlier procedures count only once completed (an in-flight
        // predecessor still needs its messages for replay); the ACKed
        // procedure itself counts unconditionally, as before.
        let covered: Vec<ProcedureId> = ue_log
            .procedures
            .range(..=proc)
            .filter(|(p, e)| **p == proc || e.completed_at.is_some())
            .map(|(p, _)| *p)
            .collect();
        let mut pruned = false;
        for p in covered {
            let entry = ue_log.procedures.get_mut(&p).expect("collected above");
            entry.acks.insert(replica);
            if !expected.is_empty()
                && (expected.iter().all(|r| entry.acks.contains(r))
                    || entry.acks.len() >= expected.len())
            {
                let freed = entry.bytes;
                let had_messages = !entry.messages.is_empty();
                ue_log.procedures.remove(&p);
                self.bytes -= freed;
                if had_messages && p > ue_log.replay_floor {
                    ue_log.replay_floor = p;
                }
                pruned = true;
            }
        }
        pruned
    }

    /// Forgets a failed replica's ACKs across every logged procedure — its
    /// copies died with it, so it must not count toward convergence or be
    /// offered as an up-to-date holder. Its `synced_through` entry survives
    /// (failover filters candidates to live replicas itself).
    pub fn purge_replica_acks(&mut self, replica: CpfId) {
        for ue_log in self.ues.values_mut() {
            for entry in ue_log.procedures.values_mut() {
                entry.acks.remove(&replica);
            }
        }
    }

    /// Drops a procedure's messages unconditionally (timeout path, §4.2.4
    /// step 1d). Returns the freed byte count.
    pub fn drop_procedure(&mut self, ue: UeId, proc: ProcedureId) -> usize {
        if let Some(ue_log) = self.ues.get_mut(&ue) {
            if let Some(entry) = ue_log.procedures.remove(&proc) {
                self.bytes -= entry.bytes;
                if !entry.messages.is_empty() && proc > ue_log.replay_floor {
                    ue_log.replay_floor = proc;
                }
                return entry.bytes;
            }
        }
        0
    }

    /// All logged messages for procedures strictly after `since`, in order —
    /// the replay set for a replica synced through `since`.
    pub fn replay_set(&self, ue: UeId, since: ProcedureId) -> Vec<Envelope> {
        let mut out = Vec::new();
        if let Some(ue_log) = self.ues.get(&ue) {
            for (proc, entry) in ue_log.procedures.range(ProcedureId(since.raw() + 1)..) {
                debug_assert!(*proc > since);
                out.extend(entry.messages.iter().cloned());
            }
        }
        out
    }

    /// True when a replay from base `since` can rebuild the UE's state up to
    /// `last_completed` — i.e. the log still holds everything the replica
    /// would miss.
    ///
    /// Coverage is judged against [`UeLog::replay_floor`], not by scanning
    /// for contiguous procedure ids: UEs consume ids for attempts whose
    /// messages never reach the CTA (abandoned before the first send, or
    /// every message lost), and such *phantom* ids must not read as
    /// unclosable gaps. Only messages actually removed from the log raise
    /// the floor. A logged attach-class procedure additionally re-anchors
    /// coverage from scratch (see [`ProcedureLog::is_attach_reset`]), since
    /// replaying it needs no base at all.
    pub fn replay_covers(&self, ue: UeId, since: ProcedureId) -> bool {
        let ue_log = match self.ues.get(&ue) {
            Some(l) => l,
            None => return false,
        };
        if REPLAY_FLOOR_BUG.load(Ordering::Relaxed) {
            // Seeded-bug mode: the pre-fix contiguity scan. Phantom ids —
            // consumed by the UE but never logged here — read as gaps and
            // poison coverage permanently.
            let mut need = since.raw() + 1;
            while need <= ue_log.last_completed.raw() {
                if !ue_log.procedures.contains_key(&ProcedureId(need)) {
                    return false;
                }
                need += 1;
            }
            return true;
        }
        since >= ue_log.replay_floor
            || ue_log
                .procedures
                .iter()
                .any(|(p, e)| *p >= ue_log.replay_floor && e.is_attach_reset())
    }

    /// Iterates UEs with logged state (for the pruning scan).
    pub fn ues(&self) -> impl Iterator<Item = (&UeId, &UeLog)> {
        self.ues.iter()
    }

    /// Number of UEs tracked.
    pub fn ue_count(&self) -> usize {
        self.ues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_messages::{MessageKind, ProcedureKind};

    fn env(ue: u64, proc: u64, clock: u64) -> Envelope {
        let mut e = Envelope::uplink(
            UeId::new(ue),
            ProcedureId::new(proc),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(ue),
        );
        e.clock = ClockTick(clock);
        e
    }

    #[test]
    fn byte_accounting_tracks_appends_and_prunes() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.append(env(1, 1, 1), 100, Instant::ZERO);
        log.append(env(1, 1, 2), 50, Instant::ZERO);
        assert_eq!(log.bytes(), 150);
        log.complete(ue, ProcedureId::new(1), ClockTick(2), Instant::ZERO);
        let replicas = [CpfId::new(10), CpfId::new(11)];
        assert!(!log.ack(ue, ProcedureId::new(1), replicas[0], &replicas));
        assert_eq!(log.bytes(), 150, "waiting for second ack");
        assert!(log.ack(ue, ProcedureId::new(1), replicas[1], &replicas));
        assert_eq!(log.bytes(), 0, "fully acked → pruned");
        assert_eq!(log.max_bytes(), 150);
    }

    #[test]
    fn replay_set_orders_across_procedures() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(1), ClockTick(1), Instant::ZERO);
        log.append(env(1, 2, 2), 10, Instant::ZERO);
        log.append(env(1, 2, 3), 10, Instant::ZERO);
        let all = log.replay_set(ue, ProcedureId(0));
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].clock < w[1].clock));
        let tail = log.replay_set(ue, ProcedureId::new(1));
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|e| e.procedure == ProcedureId::new(2)));
    }

    #[test]
    fn replay_covers_detects_gaps() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(1), ClockTick(1), Instant::ZERO);
        log.append(env(1, 2, 2), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(2), ClockTick(2), Instant::ZERO);
        assert!(log.replay_covers(ue, ProcedureId(0)));
        assert!(log.replay_covers(ue, ProcedureId::new(1)));
        // Prune procedure 1 (timeout path): replay from 0 now has a gap.
        log.drop_procedure(ue, ProcedureId::new(1));
        assert!(!log.replay_covers(ue, ProcedureId(0)));
        assert!(log.replay_covers(ue, ProcedureId::new(1)));
    }

    #[test]
    fn phantom_procedure_ids_are_not_replay_gaps() {
        // The UE consumed procedure id 2 without a single message reaching
        // the CTA (abandoned before the first send, or all messages lost),
        // then completed procedure 3. The missing id must not read as an
        // unclosable gap: nothing was ever logged for it, so nothing was
        // lost.
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(1), ClockTick(1), Instant::ZERO);
        log.append(env(1, 3, 2), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(3), ClockTick(2), Instant::ZERO);
        assert!(log.replay_covers(ue, ProcedureId(0)));
        assert!(log.replay_covers(ue, ProcedureId::new(1)));
        // Once procedure 1's messages are actually removed, bases below it
        // genuinely cannot close any more.
        log.drop_procedure(ue, ProcedureId::new(1));
        assert!(!log.replay_covers(ue, ProcedureId(0)));
        assert!(log.replay_covers(ue, ProcedureId::new(1)));
    }

    #[test]
    fn logged_attach_re_anchors_replay_coverage() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        // Procedure 1 completed and its messages were pruned: the floor
        // rises to 1 and a base of 0 cannot normally close.
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(1), ClockTick(1), Instant::ZERO);
        log.drop_procedure(ue, ProcedureId::new(1));
        assert!(!log.replay_covers(ue, ProcedureId(0)));
        // A logged re-attach rebuilds state from scratch: coverage holds
        // again from any base, including none at all.
        let mut attach = Envelope::uplink(
            ue,
            ProcedureId::new(2),
            ProcedureKind::ReAttach,
            ProcedureKind::ReAttach.template().steps[0].kind.sample(1),
        );
        attach.clock = ClockTick(2);
        log.append(attach, 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(2), ClockTick(2), Instant::ZERO);
        assert!(log.replay_covers(ue, ProcedureId(0)));
        // Pruning the attach itself removes the anchor again.
        log.drop_procedure(ue, ProcedureId::new(2));
        assert!(!log.replay_covers(ue, ProcedureId(0)));
        assert!(log.replay_covers(ue, ProcedureId::new(2)));
    }

    #[test]
    fn drop_procedure_frees_bytes() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.append(env(1, 1, 1), 77, Instant::ZERO);
        assert_eq!(log.drop_procedure(ue, ProcedureId::new(1)), 77);
        assert_eq!(log.bytes(), 0);
        assert_eq!(log.drop_procedure(ue, ProcedureId::new(1)), 0);
    }

    #[test]
    fn ack_for_pruned_procedure_is_harmless() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        assert!(!log.ack(ue, ProcedureId::new(5), CpfId::new(1), &[CpfId::new(1)]));
        // But synced_through still advances — late ACKs count for failover.
        assert_eq!(
            log.ue(ue).unwrap().synced_through[&CpfId::new(1)],
            ProcedureId::new(5)
        );
    }

    #[test]
    fn ack_is_cumulative_over_completed_procedures() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        let replicas = [CpfId::new(10), CpfId::new(11)];
        // Two completed procedures; the ACKs for procedure 1 were lost.
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(1), ClockTick(1), Instant::ZERO);
        log.append(env(1, 2, 2), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(2), ClockTick(2), Instant::ZERO);
        // An ACK for procedure 2 covers procedure 1 too (full-state sync).
        assert!(!log.ack(ue, ProcedureId::new(2), replicas[0], &replicas));
        assert!(log.ack(ue, ProcedureId::new(2), replicas[1], &replicas));
        assert_eq!(log.bytes(), 0, "both procedures pruned by one ACK round");
    }

    #[test]
    fn cumulative_ack_spares_in_flight_predecessors() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        let replicas = [CpfId::new(10)];
        // Procedure 1 never completed (still needs replay coverage).
        log.append(env(1, 1, 1), 10, Instant::ZERO);
        log.append(env(1, 2, 2), 10, Instant::ZERO);
        log.complete(ue, ProcedureId::new(2), ClockTick(2), Instant::ZERO);
        log.ack(ue, ProcedureId::new(2), replicas[0], &replicas);
        assert!(
            log.ue(ue).unwrap().procedures.contains_key(&ProcedureId::new(1)),
            "in-flight procedure 1 must keep its messages"
        );
    }

    #[test]
    fn synced_through_never_regresses() {
        let mut log = MessageLog::new();
        let ue = UeId::new(1);
        log.ack(ue, ProcedureId::new(5), CpfId::new(1), &[]);
        log.ack(ue, ProcedureId::new(3), CpfId::new(1), &[]);
        assert_eq!(
            log.ue(ue).unwrap().synced_through[&CpfId::new(1)],
            ProcedureId::new(5)
        );
    }
}
