//! Identity-chooser property: `run_until_chosen` with [`IdentityChooser`]
//! dispatches random multi-region topologies in exactly the `(at, seq)`
//! order of the uninstrumented sequential engine — observed through
//! per-node arrival logs (sender, payload, virtual time), final clock,
//! event counts, and drop counters. This is the instrumentation layer's
//! whole contract (ISSUE 9): goldens, corpus pins, and shard-identity
//! suites must not be able to observe chosen mode.
//!
//! The generators are the same family as `shard_identity.rs`: equal-time
//! ties, zero-delay self-sends, timers, and crash/recover barriers mixed
//! into every run. A final deterministic test drives a *non*-identity
//! chooser through an equal-time tie and asserts the delivery order
//! actually changes — proving the mechanism can express a reordering at
//! all (a chooser that was silently never consulted would pass the
//! identity property vacuously).

use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{
    ChoiceCtx, Chooser, Enabled, IdentityChooser, LinkSpec, Links, Node, NodeEvent, NodeId, Outbox,
    Sim,
};
use proptest::prelude::*;
use std::any::Any;

/// Splitmix step used to derandomize per-hop routing decisions.
fn mix(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Same walker as `shard_identity.rs`: logs every arrival and forwards
/// along a deterministic pseudo-random walk, with timer detours on
/// even-TTL hops so non-delivery events interleave with deliveries.
struct Walker {
    all: Vec<NodeId>,
    service: Duration,
    timer_delay: Duration,
    log: Vec<(NodeId, u64, Instant)>,
    pending: Vec<u64>,
}

const TTL_SHIFT: u32 = 48;

impl Node<u64> for Walker {
    fn service_time(&self, _msg: &u64) -> Duration {
        self.service
    }

    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        match event {
            NodeEvent::Message { from, msg } => {
                self.log.push((from, msg, out.now()));
                let ttl = msg >> TTL_SHIFT;
                if ttl == 0 {
                    return;
                }
                let state = mix(msg);
                let next = ((ttl - 1) << TTL_SHIFT) | (state & ((1 << TTL_SHIFT) - 1));
                if ttl.is_multiple_of(2) {
                    self.pending.push(next);
                    out.set_timer(self.timer_delay, next);
                } else {
                    let to = self.all[(state % self.all.len() as u64) as usize];
                    out.send(to, next);
                }
            }
            NodeEvent::Timer { id } => {
                if let Some(pos) = self.pending.iter().position(|&m| m == id) {
                    self.pending.swap_remove(pos);
                    let state = mix(id);
                    let to = self.all[(state % self.all.len() as u64) as usize];
                    out.send(to, id);
                }
            }
            NodeEvent::Recovered => {
                out.send(self.all[0], 1 << TTL_SHIFT);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A generated topology plus its workload schedule.
#[derive(Clone, Debug)]
struct Scenario {
    region_sizes: Vec<usize>,
    intra_us: Vec<u64>,
    cross_us: u64,
    service_ns: u64,
    timer_us: u64,
    injections: Vec<(u64, usize, u64, u64)>,
    fault: Option<(usize, u64, u64)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (
            proptest::collection::vec(1usize..4, 2..5),
            proptest::collection::vec(1u64..80, 4usize),
            100u64..600,
        ),
        (1u64..5_000, 1u64..400),
        proptest::collection::vec((0u64..2_000, 0usize..64, 1u64..24, any::<u64>()), 1..8),
        proptest::option::of((0usize..64, 100u64..3_000, 1u64..2_000)),
    )
        .prop_map(
            |((region_sizes, intra_us, cross_us), (service_ns, timer_us), injections, fault)| {
                Scenario {
                    region_sizes,
                    intra_us,
                    cross_us,
                    service_ns,
                    timer_us,
                    injections,
                    fault,
                }
            },
        )
}

fn node_ids(region_sizes: &[usize]) -> Vec<(NodeId, usize)> {
    let mut out = Vec::new();
    for (r, &size) in region_sizes.iter().enumerate() {
        for i in 0..size {
            out.push((NodeId::new(1 + r as u64 * 1000 + i as u64), r));
        }
    }
    out
}

fn build(sc: &Scenario) -> (Sim<u64>, Vec<NodeId>) {
    let ids = node_ids(&sc.region_sizes);
    let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(sc.cross_us)));
    for (a, ra) in &ids {
        for (b, rb) in &ids {
            if a != b && ra == rb {
                links.set(
                    *a,
                    *b,
                    LinkSpec::fixed(Duration::from_micros(sc.intra_us[*ra])),
                );
            }
        }
    }
    let mut sim = Sim::new(links);
    let all: Vec<NodeId> = ids.iter().map(|(id, _)| *id).collect();
    for (id, _) in &ids {
        sim.add_node(
            *id,
            Box::new(Walker {
                all: all.clone(),
                service: Duration::from_nanos(sc.service_ns),
                timer_delay: Duration::from_micros(sc.timer_us),
                log: Vec::new(),
                pending: Vec::new(),
            }),
        );
    }
    for &(at_us, node, ttl, seed) in &sc.injections {
        let to = all[node % all.len()];
        let msg = (ttl << TTL_SHIFT) | (seed & ((1 << TTL_SHIFT) - 1));
        sim.inject_at(Instant::from_micros(at_us), to, msg);
    }
    if let Some((node, crash_us, down_us)) = sc.fault {
        let victim = all[node % all.len()];
        sim.crash_at(Instant::from_micros(crash_us), victim);
        sim.recover_at(Instant::from_micros(crash_us + down_us), victim);
    }
    (sim, all)
}

type Observables = (
    Vec<Vec<(NodeId, u64, Instant)>>,
    Instant,
    u64,
    (u64, u64, u64),
);

fn observe(sim: &mut Sim<u64>, all: &[NodeId]) -> Observables {
    let logs = all
        .iter()
        .map(|&id| sim.node_as::<Walker>(id).unwrap().log.clone())
        .collect();
    let st = sim.sim_stats();
    (
        logs,
        sim.now(),
        sim.events_processed(),
        (st.dropped_unroutable, st.dropped_partition, st.dropped_loss),
    )
}

/// Runs through the plain sequential loop.
fn run_plain(sc: &Scenario) -> Observables {
    let (mut sim, all) = build(sc);
    sim.run_to_completion();
    observe(&mut sim, &all)
}

/// Runs through the chosen-mode loop with the identity chooser, pausing
/// at an arbitrary mid-run deadline to also cover resume behaviour.
fn run_chosen(sc: &Scenario) -> Observables {
    let (mut sim, all) = build(sc);
    let mut id = IdentityChooser;
    sim.run_until_chosen(Instant::from_micros(900), &mut id);
    sim.run_until_chosen(Instant::FAR_FUTURE, &mut id);
    observe(&mut sim, &all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multi-region topologies observe byte-identical behaviour
    /// under `run_until` and `run_until_chosen(IdentityChooser)`.
    #[test]
    fn identity_chooser_matches_sequential(sc in scenario_strategy()) {
        prop_assert_eq!(run_plain(&sc), run_chosen(&sc));
    }
}

/// A chooser that always picks the *last* enabled delivery, recording how
/// often it was actually consulted.
struct ReverseChooser {
    consulted: usize,
}

impl Chooser<u64> for ReverseChooser {
    fn choose(&mut self, _ctx: &ChoiceCtx, enabled: &[Enabled<'_, u64>]) -> usize {
        self.consulted += 1;
        enabled.len() - 1
    }
}

/// Two messages injected at the same tick to the same node: the reverse
/// chooser must be consulted and must flip the arrival order relative to
/// the sequential engine — the mechanism demonstrably expresses a
/// reordering (and only reorders; the delivered *set* is unchanged).
#[test]
fn reverse_chooser_flips_an_equal_time_tie() {
    let sc = Scenario {
        region_sizes: vec![2],
        intra_us: vec![10, 10, 10, 10],
        cross_us: 100,
        service_ns: 100,
        timer_us: 50,
        injections: vec![(500, 0, 1, 7), (500, 0, 1, 9)],
        fault: None,
    };
    let (mut sim, all) = build(&sc);
    let mut rev = ReverseChooser { consulted: 0 };
    sim.run_until_chosen(Instant::FAR_FUTURE, &mut rev);
    let chosen = observe(&mut sim, &all);
    let plain = run_plain(&sc);
    assert!(rev.consulted > 0, "tie never reached the chooser");
    assert_ne!(
        plain.0, chosen.0,
        "reverse chooser did not change any delivery order"
    );
    // Same multiset of arrivals per node, just reordered.
    let canon = |logs: &[Vec<(NodeId, u64, Instant)>]| {
        logs.iter()
            .map(|l| {
                let mut l: Vec<_> = l.iter().map(|&(f, m, _)| (f, m)).collect();
                l.sort_unstable();
                l
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(canon(&plain.0), canon(&chosen.0));
    assert_eq!(plain.2, chosen.2, "event count must not change");
}
