//! Property-based tests of the discrete-event engine: conservation, queue
//! discipline, and work accounting over random workloads.

use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, Sim};
use proptest::prelude::*;
use std::any::Any;

/// Records everything it processes.
struct Sink {
    service_us: u64,
    cores: usize,
    seen: Vec<(u64, Instant)>,
}

impl Node<u64> for Sink {
    fn service_time(&self, _msg: &u64) -> Duration {
        Duration::from_micros(self.service_us)
    }
    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        if let NodeEvent::Message { msg, .. } = event {
            self.seen.push((msg, out.now()));
        }
    }
    fn cores(&self) -> usize {
        self.cores
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected message is processed exactly once, in FIFO order for
    /// a single-core node, and the makespan matches total work.
    #[test]
    fn conservation_and_fifo(
        arrivals in proptest::collection::vec(0u64..1_000, 1..60),
        service_us in 1u64..50,
    ) {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let node = NodeId::new(1);
        sim.add_node(node, Box::new(Sink { service_us, cores: 1, seen: Vec::new() }));
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        for (i, &at) in sorted.iter().enumerate() {
            sim.inject_at(Instant::from_micros(at), node, i as u64);
        }
        let end = sim.run_to_completion();
        let stats = sim.stats(node).unwrap().clone();
        prop_assert_eq!(stats.processed, sorted.len() as u64);
        // Single core: completion no earlier than total work, no later than
        // last arrival + total work.
        let total_work = service_us * sorted.len() as u64;
        prop_assert!(end.as_nanos() >= Duration::from_micros(total_work).as_nanos());
        let bound = sorted.last().unwrap() + total_work;
        prop_assert!(end <= Instant::from_micros(bound));
        prop_assert_eq!(stats.busy, Duration::from_micros(total_work));
        // FIFO: messages complete in injection order (ties broken by seq).
        let sink = sim.node_as::<Sink>(node).unwrap();
        let ids: Vec<u64> = sink.seen.iter().map(|(m, _)| *m).collect();
        let mut expect: Vec<u64> = (0..sorted.len() as u64).collect();
        expect.sort_by_key(|&i| (sorted[i as usize], i));
        prop_assert_eq!(ids, expect);
    }

    /// More cores never increase the makespan; `cores >= n` pins it to
    /// last-arrival + service.
    #[test]
    fn multicore_speedup(
        n in 1usize..40,
        service_us in 1u64..40,
        spacing_us in 0u64..10,
    ) {
        let run = |cores: usize| {
            let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
            let mut sim = Sim::new(links);
            let node = NodeId::new(1);
            sim.add_node(node, Box::new(Sink { service_us, cores, seen: Vec::new() }));
            for i in 0..n {
                sim.inject_at(Instant::from_micros(i as u64 * spacing_us), node, i as u64);
            }
            sim.run_to_completion()
        };
        let one = run(1);
        let many = run(4);
        let all = run(n.max(1));
        prop_assert!(many <= one);
        prop_assert!(all <= many);
        let last_arrival = (n as u64 - 1) * spacing_us;
        prop_assert_eq!(
            all,
            Instant::from_micros(last_arrival + service_us)
                .max(Instant::from_micros((n as u64 - 1) * spacing_us + service_us))
        );
    }

    /// Crashing a node mid-run loses exactly the queued + in-flight work;
    /// dropped + processed accounts for every injection.
    #[test]
    fn crash_accounting(
        n in 1u64..50,
        service_us in 5u64..50,
        crash_at_us in 0u64..2_000,
    ) {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let node = NodeId::new(1);
        sim.add_node(node, Box::new(Sink { service_us, cores: 1, seen: Vec::new() }));
        for i in 0..n {
            sim.inject_at(Instant::from_micros(i * 10), node, i);
        }
        sim.crash_at(Instant::from_micros(crash_at_us), node);
        sim.run_to_completion();
        let stats = sim.stats(node).unwrap();
        prop_assert_eq!(
            stats.processed + stats.dropped_crash + stats.dropped_down,
            n,
            "every message is either processed or accounted as dropped"
        );
    }
}
