//! Order-equivalence property: the calendar-queue wheel dispatches in
//! exactly the `(at, seq)` order of the binary-heap reference, over
//! arbitrary interleavings of pushes and pops.
//!
//! This is the wheel's whole contract — the engine swapped its
//! `BinaryHeap` for `Wheel` on the promise that no golden, corpus
//! replay, or `--jobs` identity could observe the difference. The
//! generators deliberately stress the wheel's internal regimes: exact
//! ties in `at` (broken by `seq`), zero-delay self-sends landing on the
//! cursor tick (the spill path), sub-tick timestamps, far-future delays
//! beyond the wheel span (the `far` overflow heap plus re-admission
//! clamping), and pushes issued *after* pops have advanced the cursor.

use neutrino_common::time::Instant;
use neutrino_netsim::{ReferenceHeap, SchedKey, Wheel};
use proptest::prelude::*;

/// A delay drawn from every regime the wheel treats differently.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),                          // same-instant self-send
        1u64..256,                           // sub-tick (one 256 ns tick)
        256u64..2_000_000,                   // near-future hop
        2_000_000u64..200_000_000,           // timer band
        200_000_000u64..(1u64 << 41),        // around the wheel span (2^40 ns)
        (1u64 << 41)..(1u64 << 50),          // deep overflow territory
        // Far delays whose admission tick (event tick minus span-1) lands
        // exactly on a slot-block boundary: the admit clamp must yield to
        // the boundary cascade on equality, not jump past it.
        (1u64..1 << 16).prop_map(|k| ((k << 8) + ((1u64 << 32) - 1)) << 8),
    ]
}

/// One scripted scheduler operation: push an event `delay` ns after the
/// key of the most recent pop (engine-style successor scheduling), or
/// pop the minimum.
#[derive(Clone, Debug)]
enum Op {
    Push { delay: u64 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => delay_strategy().prop_map(|delay| Op::Push { delay }),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replaying an arbitrary op script through the wheel and the
    /// reference heap yields identical pop sequences, identical
    /// `peek_key`/`min_key` answers before every op, and identical
    /// residual drain order at the end.
    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut wheel: Wheel<u64> = Wheel::new();
        let mut heap: ReferenceHeap<u64> = ReferenceHeap::new();
        let mut seq = 0u64;
        let mut base = 0u64; // at-nanos of the latest pop (cursor proxy)
        for op in &ops {
            prop_assert_eq!(wheel.min_key(), heap.peek_key());
            prop_assert_eq!(wheel.peek_key(), heap.peek_key());
            match *op {
                Op::Push { delay } => {
                    let key = SchedKey {
                        at: Instant::from_nanos(base.saturating_add(delay)),
                        seq,
                    };
                    wheel.push(key, seq);
                    heap.push(key, seq);
                    seq += 1;
                }
                Op::Pop => {
                    let got = wheel.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want);
                    if let Some((k, _)) = got {
                        base = k.at.as_nanos();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain what remains: the full residual orders must agree too.
        while let Some(want) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(want));
        }
        prop_assert!(wheel.is_empty());
    }

    /// Ties in `at` are broken strictly by `seq`, in both directions of
    /// insertion order, including many-way ties on one instant.
    #[test]
    fn ties_dispatch_in_seq_order(
        at_us in proptest::collection::vec(0u64..50, 2..40),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let mut keys: Vec<SchedKey> = at_us
            .iter()
            .enumerate()
            .map(|(i, &us)| SchedKey { at: Instant::from_micros(us), seq: i as u64 })
            .collect();
        // Deterministic Fisher-Yates on a splitmix stream so insertion
        // order is decoupled from dispatch order.
        let mut state = shuffle_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..keys.len()).rev() {
            keys.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let mut wheel: Wheel<u64> = Wheel::new();
        for k in &keys {
            wheel.push(*k, k.seq);
        }
        let mut sorted = keys.clone();
        sorted.sort();
        for want in sorted {
            let (k, v) = wheel.pop().expect("len matches pushes");
            prop_assert_eq!(k, want);
            prop_assert_eq!(v, want.seq);
        }
        prop_assert!(wheel.is_empty());
    }
}
