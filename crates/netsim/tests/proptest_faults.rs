//! Property-based tests of the link fault layer: a retrying protocol
//! converges under any random fault plan (loss, duplication, bounded
//! reorder, timed partitions), and the same plan + seed replays
//! byte-identically.

use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{FaultSpec, LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, Sim};
use proptest::prelude::*;
use std::any::Any;
use std::collections::HashSet;

const ACK_BIT: u64 = 1 << 32;
const START: u64 = u64::MAX;
const RETRY_TIMER: u64 = 0;

/// Sends requests `0..total` to `server`, retransmitting unACKed ones on a
/// fixed timer until every request is ACKed (then goes quiet, so the sim
/// drains). Duplicated ACKs are idempotent.
struct Client {
    server: NodeId,
    total: u64,
    retry: Duration,
    acked: HashSet<u64>,
    acked_at: Vec<(u64, Instant)>,
    sends: u64,
}

impl Node<u64> for Client {
    fn service_time(&self, _msg: &u64) -> Duration {
        Duration::from_micros(1)
    }
    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        match event {
            NodeEvent::Message { msg, .. } if msg == START => {
                self.resend_missing(out);
            }
            NodeEvent::Message { msg, .. } => {
                let req = msg & !ACK_BIT;
                if self.acked.insert(req) {
                    self.acked_at.push((req, out.now()));
                }
            }
            NodeEvent::Timer { id: RETRY_TIMER } => self.resend_missing(out),
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

impl Client {
    fn resend_missing(&mut self, out: &mut Outbox<u64>) {
        let mut pending = false;
        for i in 0..self.total {
            if !self.acked.contains(&i) {
                out.send(self.server, i);
                self.sends += 1;
                pending = true;
            }
        }
        if pending {
            out.set_timer(self.retry, RETRY_TIMER);
        }
    }
}

/// ACKs every copy of every request it sees (the client dedups).
struct Server {
    log: Vec<(u64, Instant)>,
}

impl Node<u64> for Server {
    fn service_time(&self, _msg: &u64) -> Duration {
        Duration::from_micros(1)
    }
    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        if let NodeEvent::Message { from, msg } = event {
            self.log.push((msg, out.now()));
            out.send(from, msg | ACK_BIT);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A randomly drawn fault plan for one client–server pair.
#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    total: u64,
    loss: f64,
    duplicate: f64,
    reorder: f64,
    reorder_window_us: u64,
    // Partition window `[from, from + len)` in microseconds; `len == 0`
    // means no partition.
    partition_from_us: u64,
    partition_len_us: u64,
}

fn plan() -> impl Strategy<Value = Plan> {
    (
        (any::<u64>(), 1u64..24),
        (0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.4, 0u64..500),
        (0u64..30_000, 0u64..50_000),
    )
        .prop_map(
            |(
                (seed, total),
                (loss, duplicate, reorder, reorder_window_us),
                (partition_from_us, partition_len_us),
            )| Plan {
                seed,
                total,
                loss,
                duplicate,
                reorder,
                reorder_window_us,
                partition_from_us,
                partition_len_us,
            },
        )
}

/// Everything observable about one run, for replay comparison.
#[derive(Debug, PartialEq)]
struct Trace {
    end: Instant,
    acked_at: Vec<(u64, Instant)>,
    client_sends: u64,
    server_log: Vec<(u64, Instant)>,
    events_processed: u64,
    dropped_loss: u64,
    dropped_partition: u64,
    duplicated: u64,
    reordered: u64,
}

fn run(plan: &Plan) -> Trace {
    let client_id = NodeId::new(1);
    let server_id = NodeId::new(2);
    let mut links = Links::with_default(LinkSpec {
        latency: Duration::from_micros(50),
        jitter: Duration::from_micros(20),
    });
    links.set_seed(plan.seed);
    links.set_fault_default(FaultSpec {
        loss: plan.loss,
        duplicate: plan.duplicate,
        reorder: plan.reorder,
        reorder_window: Duration::from_micros(plan.reorder_window_us),
    });
    if plan.partition_len_us > 0 {
        links.add_partition(
            client_id,
            server_id,
            Instant::from_micros(plan.partition_from_us),
            Instant::from_micros(plan.partition_from_us + plan.partition_len_us),
        );
    }
    let mut sim = Sim::new(links);
    sim.add_node(
        client_id,
        Box::new(Client {
            server: server_id,
            total: plan.total,
            retry: Duration::from_millis(10),
            acked: HashSet::new(),
            acked_at: Vec::new(),
            sends: 0,
        }),
    );
    sim.add_node(server_id, Box::new(Server { log: Vec::new() }));
    sim.inject_at(Instant::ZERO, client_id, START);
    let end = sim.run_to_completion();
    let stats = sim.sim_stats();
    let server_log = sim.node_as::<Server>(server_id).unwrap().log.clone();
    let client = sim.node_as::<Client>(client_id).unwrap();
    Trace {
        end,
        acked_at: client.acked_at.clone(),
        client_sends: client.sends,
        server_log,
        events_processed: stats.events_processed,
        dropped_loss: stats.dropped_loss,
        dropped_partition: stats.dropped_partition,
        duplicated: stats.duplicated,
        reordered: stats.reordered,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any fault plan the retrying client converges: every request is
    /// ACKed, the server saw each request at least once, and partitions
    /// (which always end) only delay — never prevent — convergence.
    #[test]
    fn retrying_protocol_converges_under_any_fault_plan(p in plan()) {
        let trace = run(&p);
        prop_assert_eq!(trace.acked_at.len() as u64, p.total, "every request ACKed");
        let distinct: HashSet<u64> = trace.server_log.iter().map(|(m, _)| *m).collect();
        prop_assert_eq!(distinct.len() as u64, p.total, "server saw every request");
        // Retries mean the client never sends fewer datagrams than requests.
        prop_assert!(trace.client_sends >= p.total);
        // Fault accounting only moves when the plan can produce that fault.
        if p.loss == 0.0 {
            prop_assert_eq!(trace.dropped_loss, 0);
        }
        if p.partition_len_us == 0 {
            prop_assert_eq!(trace.dropped_partition, 0);
        }
    }

    /// The same plan (seed included) replays byte-identically: traces,
    /// stats, and virtual end time all match across runs.
    #[test]
    fn same_seed_fault_plan_replays_identically(p in plan()) {
        let first = run(&p);
        let second = run(&p);
        prop_assert_eq!(first, second, "same plan + seed must replay identically");
    }
}
