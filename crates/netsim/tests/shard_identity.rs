//! Shards-identity property: the region-sharded PDES engine dispatches
//! random multi-region topologies in exactly the `(at, seq)` order of the
//! sequential engine — observed through per-node arrival logs (sender,
//! payload, virtual time), final clock, event counts, and drop counters —
//! across `shards = 1 / 2 / 4`.
//!
//! This is the sharded engine's whole contract, the same bar
//! `wheel_order.rs` holds the calendar wheel to: the engine runs shards
//! in parallel on the promise that no golden, corpus replay, or identity
//! pin can observe the difference. The generators deliberately stress the
//! merge machinery: equal-time ties across shards (broken by the
//! reconstructed global push order), zero-delay self-sends inside a
//! window, timers straddling window bounds, crash/recover events owned by
//! a single shard, and fan-out chains that hop between regions on every
//! step.

use neutrino_common::time::{Duration, Instant};
use neutrino_netsim::{LinkSpec, Links, Node, NodeEvent, NodeId, Outbox, ShardedSim};
use proptest::prelude::*;
use std::any::Any;

/// Splitmix step used to derandomize per-hop routing decisions.
fn mix(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A node that logs every arrival and forwards messages along a
/// deterministic pseudo-random walk over the whole topology. The message
/// word packs a TTL in the high bits and a routing state in the low bits,
/// so the walk is a pure function of the injected seed — identical in any
/// engine that delivers in the same order.
struct Walker {
    all: Vec<NodeId>,
    service: Duration,
    /// Self-timer delay; TTL-even hops arm a timer that re-sends, putting
    /// `Timer` events and window-bound straddles into every run.
    timer_delay: Duration,
    log: Vec<(NodeId, u64, Instant)>,
    pending: Vec<u64>,
}

const TTL_SHIFT: u32 = 48;

impl Node<u64> for Walker {
    fn service_time(&self, _msg: &u64) -> Duration {
        self.service
    }

    fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
        match event {
            NodeEvent::Message { from, msg } => {
                self.log.push((from, msg, out.now()));
                let ttl = msg >> TTL_SHIFT;
                if ttl == 0 {
                    return;
                }
                let state = mix(msg);
                let next = ((ttl - 1) << TTL_SHIFT) | (state & ((1 << TTL_SHIFT) - 1));
                if ttl.is_multiple_of(2) {
                    // Detour through a timer so Timer events interleave
                    // with deliveries at reconstructed global order.
                    self.pending.push(next);
                    out.set_timer(self.timer_delay, next);
                } else {
                    let to = self.all[(state % self.all.len() as u64) as usize];
                    out.send(to, next);
                }
            }
            NodeEvent::Timer { id } => {
                // `id` carries the message to forward.
                if let Some(pos) = self.pending.iter().position(|&m| m == id) {
                    self.pending.swap_remove(pos);
                    let state = mix(id);
                    let to = self.all[(state % self.all.len() as u64) as usize];
                    out.send(to, id);
                }
            }
            NodeEvent::Recovered => {
                // Self-enqueued recovery work (pins the Recover
                // try_start_jobs fix in the sharded path too).
                out.send(self.all[0], 1 << TTL_SHIFT);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A generated topology plus its workload schedule.
#[derive(Clone, Debug)]
struct Scenario {
    /// Nodes per region (region index = position).
    region_sizes: Vec<usize>,
    /// Intra-region link latency in µs (per region).
    intra_us: Vec<u64>,
    /// Cross-region default latency in µs (the lookahead floor).
    cross_us: u64,
    /// Per-node service time in ns.
    service_ns: u64,
    /// Timer detour delay in µs.
    timer_us: u64,
    /// Seed injections: (time µs, node index, ttl, seed).
    injections: Vec<(u64, usize, u64, u64)>,
    /// Optional crash/recover on one node: (node index, crash µs, down µs).
    fault: Option<(usize, u64, u64)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (
            proptest::collection::vec(1usize..4, 2..5),
            // One intra-region latency per possible region (extras unused).
            proptest::collection::vec(1u64..80, 4usize),
            100u64..600,
        ),
        (1u64..5_000, 1u64..400),
        proptest::collection::vec((0u64..2_000, 0usize..64, 1u64..24, any::<u64>()), 1..8),
        proptest::option::of((0usize..64, 100u64..3_000, 1u64..2_000)),
    )
        .prop_map(
            |((region_sizes, intra_us, cross_us), (service_ns, timer_us), injections, fault)| {
                Scenario {
                    region_sizes,
                    intra_us,
                    cross_us,
                    service_ns,
                    timer_us,
                    injections,
                    fault,
                }
            },
        )
}

/// Node ids band by region like the cluster does (region r, index i →
/// 1 + r·1000 + i), exercising the sparse raw-id → shard map.
fn node_ids(region_sizes: &[usize]) -> Vec<(NodeId, usize)> {
    let mut out = Vec::new();
    for (r, &size) in region_sizes.iter().enumerate() {
        for i in 0..size {
            out.push((NodeId::new(1 + r as u64 * 1000 + i as u64), r));
        }
    }
    out
}

/// Builds the scenario against `shards` shards and runs it to completion;
/// returns every observable: per-node logs, clock, event count, and the
/// order-sensitive drop counters.
#[allow(clippy::type_complexity)]
fn run(
    sc: &Scenario,
    shards: usize,
) -> (
    Vec<Vec<(NodeId, u64, Instant)>>,
    Instant,
    u64,
    (u64, u64, u64),
) {
    let ids = node_ids(&sc.region_sizes);
    let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(sc.cross_us)));
    for (a, ra) in &ids {
        for (b, rb) in &ids {
            if a != b && ra == rb {
                links.set(
                    *a,
                    *b,
                    LinkSpec::fixed(Duration::from_micros(sc.intra_us[*ra])),
                );
            }
        }
    }
    let mut sim = ShardedSim::new(links, shards);
    assert_eq!(sim.is_sharded(), shards > 1);
    let all: Vec<NodeId> = ids.iter().map(|(id, _)| *id).collect();
    for (id, region) in &ids {
        sim.add_node(
            *id,
            Box::new(Walker {
                all: all.clone(),
                service: Duration::from_nanos(sc.service_ns),
                timer_delay: Duration::from_micros(sc.timer_us),
                log: Vec::new(),
                pending: Vec::new(),
            }),
            region % shards.max(1),
        );
    }
    for &(at_us, node, ttl, seed) in &sc.injections {
        let to = all[node % all.len()];
        let msg = (ttl << TTL_SHIFT) | (seed & ((1 << TTL_SHIFT) - 1));
        sim.inject_at(Instant::from_micros(at_us), to, msg);
    }
    if let Some((node, crash_us, down_us)) = sc.fault {
        let victim = all[node % all.len()];
        sim.crash_at(Instant::from_micros(crash_us), victim);
        sim.recover_at(Instant::from_micros(crash_us + down_us), victim);
    }
    sim.run_to_completion();
    let logs = all
        .iter()
        .map(|&id| sim.node_as::<Walker>(id).unwrap().log.clone())
        .collect();
    let st = sim.sim_stats();
    (
        logs,
        sim.now(),
        sim.events_processed(),
        (st.dropped_unroutable, st.dropped_partition, st.dropped_loss),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multi-region topologies observe byte-identical behaviour
    /// under `shards = 1`, `2`, and `4`.
    #[test]
    fn sharded_dispatch_matches_sequential(sc in scenario_strategy()) {
        let sequential = run(&sc, 1);
        let two = run(&sc, 2);
        prop_assert_eq!(&sequential, &two);
        let four = run(&sc, 4);
        prop_assert_eq!(&sequential, &four);
    }
}
