//! A deterministic discrete-event network simulator.
//!
//! This crate is the substitute for the paper's two-server DPDK testbed
//! (§6.1). It models exactly what the procedure-completion-time experiments
//! depend on:
//!
//! * **per-node service queues** — every node is a multi-core FIFO server;
//!   each message charges a service time the node declares (in our system,
//!   the calibrated serialization + state-update cost), which is what makes
//!   saturation knees appear at the right arrival rates;
//! * **links** — point-to-point propagation delays with optional
//!   deterministic jitter;
//! * **failure injection** — crash/recover events that drop a node's queue
//!   and in-flight work, for the §6.4 experiments;
//! * **timers** — zero-cost internal events (log pruning scans, ACK
//!   timeouts).
//!
//! The engine is generic over the message type `M`, carries no cellular
//! logic, and is fully deterministic: same nodes + same schedule + same seed
//! → identical event trace.
//!
//! Protocol state machines implement [`Node`] and communicate only through
//! the [`Outbox`] handed to them — the sans-IO idiom: the same state
//! machines run under the real-time driver in `neutrino-net`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod alloc_count;
pub mod choice;
pub mod engine;
pub mod links;
pub mod shard;
pub mod stats;
pub mod wheel;

pub use choice::{ChoiceCtx, Chooser, Enabled, IdentityChooser};
pub use engine::{DeliveryTap, Node, NodeEvent, NodeId, Outbox, Sim, SimConfig};
pub use shard::ShardedSim;
pub use links::{Delivery, FaultSpec, LinkSpec, Links};
pub use stats::{NodeStats, SimStats};
pub use wheel::{ReferenceHeap, SchedKey, Wheel};
