//! Choice-point interposition for bounded exhaustive interleaving checks.
//!
//! [`Sim::run_until_chosen`](crate::Sim::run_until_chosen) is a second
//! dispatch loop next to `run_until` that, whenever **two or more
//! deliveries are simultaneously enabled at the same tick**, asks a
//! [`Chooser`] which one to dispatch first. The [`IdentityChooser`] always
//! picks the lowest global sequence number, which reproduces the
//! sequential `(at, seq)` stream exactly — so instrumented runs with the
//! identity chooser are byte-identical to `run_until` and no golden,
//! corpus pin, or shard-identity suite can observe the instrumentation.
//!
//! A model checker (see `crates/check`, `mcheck`) drives this with a
//! scripted chooser to enumerate delivery interleavings of a small
//! configuration; the engine only supplies the mechanism (which orders are
//! *schedulable*), never the search policy (which orders are *worth
//! exploring*).

use crate::engine::NodeId;
use neutrino_common::time::Instant;

/// Splitmix64 finalizer used by the choice-state hash chains.
#[inline]
pub(crate) fn mix64(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One delivery the engine could dispatch next at the current tick.
///
/// Entries are presented in ascending `seq` order, so index 0 is always
/// the delivery the sequential engine would run first.
#[derive(Debug)]
pub struct Enabled<'a, M> {
    /// Global push sequence (the sequential tie-break within a tick).
    pub seq: u64,
    /// Sending node ([`NodeId::EXTERNAL`] for injected messages).
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Borrowed message payload, so a policy can key on content (e.g.
    /// per-UE FIFO streams) without the engine knowing the protocol.
    pub msg: &'a M,
}

/// Context handed to a [`Chooser`] at each choice point.
#[derive(Debug, Clone, Copy)]
pub struct ChoiceCtx {
    /// The tick every enabled delivery is scheduled at.
    pub now: Instant,
    /// Deliveries dispatched so far in chosen mode (the depth coordinate
    /// a bounded search counts against).
    pub deliveries: u64,
    /// Order-canonical hash of the dispatch history so far — see
    /// [`crate::Sim::choice_state_hash`] for what it does and does not
    /// distinguish.
    pub state_hash: u64,
    /// True when a non-delivery event (timer, job completion, crash,
    /// recover) is also staged at this tick. Orders across such a barrier
    /// do **not** commute (delivering before vs. after a crash differs),
    /// so independence-based pruning must be disabled here.
    pub barrier: bool,
}

/// Picks which of several simultaneously-enabled deliveries runs next.
pub trait Chooser<M> {
    /// Returns an index into `enabled`. Called only when
    /// `enabled.len() >= 2`; an out-of-range index panics the run.
    fn choose(&mut self, ctx: &ChoiceCtx, enabled: &[Enabled<'_, M>]) -> usize;
}

/// The chooser that reproduces the sequential engine exactly: always the
/// lowest-`seq` enabled delivery, i.e. the event `run_until` would pop.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityChooser;

impl<M> Chooser<M> for IdentityChooser {
    fn choose(&mut self, _ctx: &ChoiceCtx, _enabled: &[Enabled<'_, M>]) -> usize {
        0
    }
}

/// Per-engine bookkeeping for chosen mode, lazily created on the first
/// `run_until_chosen` call and persisting across pause/resume calls.
pub(crate) struct ChoiceState {
    /// Per-slot dispatch-history hash chains. Each dispatched event is
    /// folded into its *target* node's chain, so the chain encodes that
    /// node's event order while saying nothing about how events at
    /// different nodes interleaved.
    pub(crate) chains: Vec<u64>,
    /// Deliveries dispatched in chosen mode.
    pub(crate) deliveries: u64,
}

impl ChoiceState {
    pub(crate) fn new(slots: usize) -> Self {
        ChoiceState {
            chains: vec![0; slots],
            deliveries: 0,
        }
    }
}
