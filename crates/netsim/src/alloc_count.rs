//! Process-wide allocation counter hook for the allocs-per-event metric.
//!
//! This crate forbids `unsafe`, so the counting `GlobalAlloc` wrapper
//! lives in `crates/bench` behind its `count-allocs` feature; it reports
//! every allocation here. The engine samples the counter around
//! [`crate::Sim::run_until`] (two relaxed loads per call) and surfaces
//! the delta as [`crate::SimStats::allocs`]. Without a counting allocator
//! installed the counter stays at zero and the metric reads 0.
//!
//! The counter never feeds simulated state — it is observability-only,
//! like the wall-clock events/sec timer.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records `n` heap allocations. Called by a counting global allocator.
#[inline]
pub fn record(n: u64) {
    ALLOCS.fetch_add(n, Ordering::Relaxed);
}

/// Current process-wide allocation count (monotonic; callers diff it).
#[inline]
pub fn current() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}
