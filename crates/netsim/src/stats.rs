//! Per-node service statistics.

use neutrino_common::time::Duration;
use serde::{Deserialize, Serialize};

/// Counters the engine maintains for every node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeStats {
    /// Messages fully serviced.
    pub processed: u64,
    /// Messages dropped because the node was down.
    pub dropped_down: u64,
    /// Messages discarded from the queue by a crash.
    pub dropped_crash: u64,
    /// Total time messages spent waiting in the queue (not being serviced).
    pub total_wait: Duration,
    /// Total busy time across all cores.
    pub busy: Duration,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
    /// Timers fired.
    pub timers: u64,
}

impl NodeStats {
    /// Mean queueing delay per processed message.
    pub fn mean_wait(&self) -> Duration {
        self.total_wait
            .as_nanos()
            .checked_div(self.processed)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }

    /// Utilization of one core over `elapsed` (can exceed 1.0 for multicore
    /// nodes; divide by core count for per-core utilization).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed == Duration::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// Engine-level throughput counters: how fast the simulator itself runs,
/// as opposed to what happens inside the simulated time line.
///
/// Not serialized into figure outputs — wall-clock numbers vary run to run
/// and would break byte-identical result files.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events popped from the queue since the simulation was created.
    pub events_processed: u64,
    /// Host time spent inside `run_until` across all calls.
    pub wall: std::time::Duration,
    /// Transmissions dropped by the fault layer's loss probability.
    pub dropped_loss: u64,
    /// Transmissions dropped inside a partition window.
    pub dropped_partition: u64,
    /// Extra copies delivered by the fault layer's duplication draw.
    pub duplicated: u64,
    /// Transmissions held back by the fault layer's reorder draw.
    pub reordered: u64,
    /// Deliveries addressed to a node id that was never registered. Always
    /// zero in a correctly wired cluster — nonzero means misrouting.
    pub dropped_unroutable: u64,
    /// Largest per-node queue depth observed anywhere in the simulation —
    /// the quantity the overload-control `bounded-queue` invariant caps.
    pub max_queue_depth: usize,
    /// Peak number of simultaneously scheduled events in the calendar
    /// queue (scheduler pressure, distinct from per-node backlog above).
    pub max_sched_depth: u64,
    /// Heap allocations observed during `run_until`, when the bench
    /// crate's `count-allocs` counting allocator is installed; 0 otherwise.
    pub allocs: u64,
}

impl SimStats {
    /// Simulator throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events_processed as f64 / secs
        }
    }

    /// Mean heap allocations per processed event (0 unless counting).
    pub fn allocs_per_event(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.allocs as f64 / self.events_processed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_per_sec_guards_zero_wall() {
        let s = SimStats::default();
        assert_eq!(s.events_per_sec(), 0.0);
        let s = SimStats {
            events_processed: 1000,
            wall: std::time::Duration::from_millis(500),
            ..SimStats::default()
        };
        assert!((s.events_per_sec() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn mean_wait_handles_empty() {
        let s = NodeStats::default();
        assert_eq!(s.mean_wait(), Duration::ZERO);
    }

    #[test]
    fn mean_wait_divides() {
        let s = NodeStats {
            processed: 4,
            total_wait: Duration::from_micros(40),
            ..NodeStats::default()
        };
        assert_eq!(s.mean_wait(), Duration::from_micros(10));
    }

    #[test]
    fn utilization_ratio() {
        let s = NodeStats {
            busy: Duration::from_millis(500),
            ..NodeStats::default()
        };
        let u = s.utilization(Duration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(Duration::ZERO), 0.0);
    }
}
