//! Region-sharded conservative PDES driver with byte-identical merge.
//!
//! [`ShardedSim`] partitions the node slab into per-shard [`Sim`]
//! sub-engines (one calendar wheel each) and advances them in parallel
//! inside conservative time windows, while guaranteeing that the global
//! `(at, seq)` dispatch order — and therefore every observable output —
//! is **byte-identical** to the sequential engine. The sequential path
//! (`--shards 1`, or any sequence-sensitive link table) runs a single
//! plain [`Sim`] and is the executable specification, exactly like
//! `ReferenceHeap` is for the wheel.
//!
//! # Window-barrier protocol
//!
//! The paper's two-region topology (5 µs intra-region vs 500 µs
//! inter-region links) provides the *lookahead* conservative PDES needs:
//! an event dispatched at time `t` can only schedule work on another
//! shard at `t + L` or later, where `L` is the minimum latency over all
//! cross-shard links. Each round:
//!
//! 1. The coordinator reads the globally earliest pending event time
//!    `t0` from its *mirror wheel* (see below) and opens a window with
//!    inclusive bound `min(deadline, t0 + L − 1 ns)`.
//! 2. Every shard, on its own worker thread, dispatches all of its
//!    pending events with `at <= bound`. By the lookahead argument none
//!    of those events can be affected by another shard's work inside the
//!    same window. Cross-shard sends are buffered, not delivered; every
//!    push is logged.
//! 3. At the barrier the coordinator *symbolically replays* the window
//!    (below), assigns global sequence numbers, routes buffered events
//!    to their destination shards, and opens the next window. Every
//!    window advances `t0` by at least `L`, so a run needs at most
//!    `horizon / L` barriers.
//!
//! # Why determinism survives: the mirror replay
//!
//! The sequential engine breaks equal-time ties by a single global push
//! counter. A parallel run cannot observe the interleaved counter while
//! shards execute — so the coordinator reconstructs it afterwards. It
//! keeps a persistent **mirror wheel**: the set of every pending event's
//! `(at, gseq)` key and owning shard (bodies live in the shard wheels).
//! At a barrier it pops mirror keys with `at <= bound` in true global
//! order; each pop consumes the owning shard's next dispatch-log record
//! (a shard's local dispatch order equals the global order restricted to
//! that shard, by induction) and assigns fresh, globally ordered `gseq`
//! values to that dispatch's logged pushes — exactly the values the
//! sequential engine's counter would have produced. Intra-window local
//! pushes re-enter the mirror and are replayed in turn; deferred
//! (past-bound) and exported (cross-shard) bodies are routed back to
//! their owners keyed by their assigned `gseq`.
//!
//! Inside a window a shard keys its own intra-window pushes with
//! *provisional* sequence numbers starting at `1 << 63` — above every
//! real `gseq` — so already-pending events win equal-time ties against
//! events pushed during the window, matching the sequential push-order
//! tiebreak. Ties among intra-window pushes break in local push order,
//! which equals global push order restricted to the shard.
//!
//! # Sequential degradation
//!
//! Link-level jitter and probabilistic faults draw from a hash keyed on
//! a *globally interleaved* per-send sequence number; no parallel
//! execution can reproduce that interleaving without serializing, and
//! re-keying the draws would change every pinned golden. When
//! [`Links::sequence_sensitive`] reports such draws are possible (or
//! `shards <= 1`), `ShardedSim` runs one sequential `Sim` — identity is
//! trivial, and fault-grid runs stay byte-for-byte what they were.
//! Timed partitions key on virtual time only and shard fine.

use crate::engine::{DispatchRec, EventKind, Node, NodeId, PushRec, Sim, SimConfig, WindowOut};
use crate::engine::NO_SHARD;
use crate::links::Links;
use crate::stats::{NodeStats, SimStats};
use crate::wheel::{SchedKey, Wheel};
use neutrino_common::time::{Duration, Instant};
use std::sync::mpsc;
use std::sync::Arc;
// lint-allow(thread): audited PDES coordinator — shards run in lockstep conservative windows and merge at deterministic barriers; identity with the sequential engine is pinned by the shards-identity suite
use std::thread;

/// A panic payload carried from a shard worker back to the coordinator.
type Panic = Box<dyn std::any::Any + Send + 'static>;

/// One command sent to a shard worker thread.
enum Cmd<M> {
    /// Run one window up to the inclusive bound and report the log.
    Window(Instant),
    /// Admit barrier-merged events under coordinator-assigned keys.
    Finalize(Vec<(SchedKey, EventKind<M>)>),
}

/// A shard's window log re-packaged for in-order consumption.
struct ShardLog<M> {
    dispatches: std::vec::IntoIter<DispatchRec>,
    pushes: std::vec::IntoIter<PushRec>,
    deferred: std::vec::IntoIter<(Instant, EventKind<M>)>,
    exports: std::vec::IntoIter<(u32, Instant, EventKind<M>)>,
}

impl<M> ShardLog<M> {
    fn new(out: WindowOut<M>) -> Self {
        ShardLog {
            dispatches: out.dispatches.into_iter(),
            pushes: out.pushes.into_iter(),
            deferred: out.deferred.into_iter(),
            exports: out.exports.into_iter(),
        }
    }
}

/// The multi-shard state. Boxed inside [`ShardedSim`] so the common
/// sequential mode doesn't pay for its footprint.
struct Sharded<M> {
    shards: Vec<Sim<M>>,
    /// Raw node id → owning shard; shared read-only with every shard.
    shard_of: Arc<Vec<u32>>,
    /// Registered node ids per shard, for the lookahead scan.
    members: Vec<Vec<NodeId>>,
    /// The global pending set: every scheduled event's key → owning
    /// shard. Bodies stay in the shard wheels; this is keys only.
    mirror: Wheel<u32>,
    /// The reconstructed global push counter (equals the sequential
    /// engine's `seq` after every barrier).
    gseq: u64,
    /// Virtual time of the last globally dispatched event.
    now: Instant,
    /// Globally dispatched events (equals the sum over shards).
    events: u64,
    config: SimConfig,
    /// Master link table; shards hold clones, refreshed when dirty.
    links: Links,
    links_dirty: bool,
    /// Shard maps need (re-)installing before the next run.
    maps_dirty: bool,
    /// `None` = recompute; `Some(None)` = no cross-shard pairs exist.
    lookahead: Option<Option<Duration>>,
    /// Host time inside `run_until` (the shards never read the clock).
    wall: std::time::Duration,
    allocs: u64,
}

/// A drop-in engine front end that runs one [`Sim`] per region shard.
///
/// Construct with [`ShardedSim::new`] (or
/// [`ShardedSim::with_config`]) and register every node with an owning
/// shard. With `shards <= 1` — or whenever the link table is
/// sequence-sensitive (jitter / probabilistic faults) — it transparently
/// runs the plain sequential engine. The public surface mirrors [`Sim`].
pub struct ShardedSim<M> {
    mode: Mode<M>,
}

enum Mode<M> {
    /// The executable spec: one engine, zero window machinery.
    Sequential(Box<Sim<M>>),
    Sharded(Box<Sharded<M>>),
}

impl<M: Clone + Send + 'static> ShardedSim<M> {
    /// Creates a sharded simulator over the given link table. Falls back
    /// to sequential execution when `shards <= 1` or the links make
    /// delivery decisions from the global send sequence (see module
    /// docs).
    pub fn new(links: Links, shards: usize) -> Self {
        Self::with_config(links, SimConfig::default(), shards)
    }

    /// [`ShardedSim::new`] with an explicit engine config.
    pub fn with_config(links: Links, config: SimConfig, shards: usize) -> Self {
        if shards <= 1 || links.sequence_sensitive() {
            return ShardedSim {
                mode: Mode::Sequential(Box::new(Sim::with_config(links, config))),
            };
        }
        let sims = (0..shards)
            .map(|_| Sim::with_config(links.clone(), config.clone()))
            .collect();
        ShardedSim {
            mode: Mode::Sharded(Box::new(Sharded {
                shards: sims,
                shard_of: Arc::new(Vec::new()),
                members: vec![Vec::new(); shards],
                mirror: Wheel::new(),
                gseq: 0,
                now: Instant::ZERO,
                events: 0,
                config,
                links,
                links_dirty: false,
                maps_dirty: true,
                lookahead: None,
                wall: std::time::Duration::ZERO,
                allocs: 0,
            })),
        }
    }

    /// Whether this simulator actually runs multiple shards (false when
    /// construction degraded to the sequential engine).
    pub fn is_sharded(&self) -> bool {
        matches!(self.mode, Mode::Sharded(_))
    }

    /// Number of shard engines (1 in sequential mode).
    pub fn shard_count(&self) -> usize {
        match &self.mode {
            Mode::Sequential(_) => 1,
            Mode::Sharded(s) => s.shards.len(),
        }
    }

    /// Registers a node on `shard`. The shard index is ignored in
    /// sequential mode. Panics on duplicate ids or out-of-range shards.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn Node<M>>, shard: usize) {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.add_node(id, node),
            Mode::Sharded(s) => {
                assert!(
                    shard < s.shards.len(),
                    "shard {shard} out of range (have {})",
                    s.shards.len()
                );
                s.shards[shard].add_node(id, node);
                let raw = id.raw() as usize;
                let map = Arc::make_mut(&mut s.shard_of);
                if map.len() <= raw {
                    map.resize(raw + 1, NO_SHARD);
                }
                map[raw] = shard as u32;
                s.members[shard].push(id);
                s.maps_dirty = true;
                s.lookahead = None;
            }
        }
    }

    /// Injects a message from outside the simulated network (see
    /// [`Sim::inject_at`]). Inject only to already-registered nodes in
    /// sharded mode: an unknown target is dispatched (and counted
    /// unroutable) on shard 0.
    pub fn inject_at(&mut self, at: Instant, to: NodeId, msg: M) {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.inject_at(at, to, msg),
            Mode::Sharded(s) => s.push_global(
                at,
                EventKind::Deliver {
                    to,
                    from: NodeId::EXTERNAL,
                    msg,
                },
            ),
        }
    }

    /// Schedules a crash (see [`Sim::crash_at`]).
    pub fn crash_at(&mut self, at: Instant, node: NodeId) {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.crash_at(at, node),
            Mode::Sharded(s) => s.push_global(at, EventKind::Crash { node }),
        }
    }

    /// Schedules a recovery (see [`Sim::recover_at`]).
    pub fn recover_at(&mut self, at: Instant, node: NodeId) {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.recover_at(at, node),
            Mode::Sharded(s) => s.push_global(at, EventKind::Recover { node }),
        }
    }

    /// Runs until all queues drain or `deadline` passes; returns the time
    /// of the last dispatched event (see [`Sim::run_until`]).
    pub fn run_until(&mut self, deadline: Instant) -> Instant {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.run_until(deadline),
            Mode::Sharded(s) => s.run_until(deadline),
        }
    }

    /// Runs until every queue is fully drained.
    pub fn run_to_completion(&mut self) -> Instant {
        self.run_until(Instant::FAR_FUTURE)
    }

    /// Chosen-mode run (see [`Sim::run_until_chosen`]). Interleaving
    /// choice needs the one global event stream only the sequential
    /// engine has, so this panics on a sharded engine — a checker must
    /// build its cluster at `shards = 1`.
    pub fn run_until_chosen(
        &mut self,
        deadline: Instant,
        chooser: &mut dyn crate::Chooser<M>,
    ) -> Instant {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.run_until_chosen(deadline, chooser),
            Mode::Sharded(_) => panic!("run_until_chosen requires shards = 1"),
        }
    }

    /// Installs a delivery witness on the underlying sequential engine (see
    /// [`Sim::set_delivery_tap`]). A sharded engine has no single delivery
    /// order to witness, so this panics there — flow-coverage runs build
    /// their cluster at `shards = 1`.
    pub fn set_delivery_tap(&mut self, tap: crate::engine::DeliveryTap<M>) {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.set_delivery_tap(tap),
            Mode::Sharded(_) => panic!("set_delivery_tap requires shards = 1"),
        }
    }

    /// Order-canonical chosen-mode state hash (see
    /// [`Sim::choice_state_hash`]); zero for sharded engines, which never
    /// enter chosen mode.
    pub fn choice_state_hash(&self) -> u64 {
        match &self.mode {
            Mode::Sequential(sim) => sim.choice_state_hash(),
            Mode::Sharded(_) => 0,
        }
    }

    /// Current virtual time (last dispatched event).
    pub fn now(&self) -> Instant {
        match &self.mode {
            Mode::Sequential(sim) => sim.now(),
            Mode::Sharded(s) => s.now,
        }
    }

    /// Total events dispatched so far across all shards.
    pub fn events_processed(&self) -> u64 {
        match &self.mode {
            Mode::Sequential(sim) => sim.events_processed(),
            Mode::Sharded(s) => s.events,
        }
    }

    /// Engine-level counters aggregated across shards. Event and drop
    /// counters are exact sums and identical to a sequential run;
    /// `wall`/`allocs` are measured once around the whole sharded run;
    /// `max_sched_depth` and `max_queue_depth` are maxima over shards.
    pub fn sim_stats(&self) -> SimStats {
        match &self.mode {
            Mode::Sequential(sim) => sim.sim_stats(),
            Mode::Sharded(s) => {
                let mut agg = SimStats {
                    events_processed: 0,
                    wall: s.wall,
                    dropped_loss: 0,
                    dropped_partition: 0,
                    duplicated: 0,
                    reordered: 0,
                    dropped_unroutable: 0,
                    max_queue_depth: 0,
                    max_sched_depth: 0,
                    allocs: s.allocs,
                };
                for sim in &s.shards {
                    let st = sim.sim_stats();
                    agg.events_processed += st.events_processed;
                    agg.dropped_loss += st.dropped_loss;
                    agg.dropped_partition += st.dropped_partition;
                    agg.duplicated += st.duplicated;
                    agg.reordered += st.reordered;
                    agg.dropped_unroutable += st.dropped_unroutable;
                    agg.max_queue_depth = agg.max_queue_depth.max(st.max_queue_depth);
                    agg.max_sched_depth = agg.max_sched_depth.max(st.max_sched_depth);
                }
                debug_assert_eq!(agg.events_processed, s.events, "mirror out of step");
                agg
            }
        }
    }

    /// Statistics of a node (see [`Sim::stats`]).
    pub fn stats(&self, node: NodeId) -> Option<&NodeStats> {
        match &self.mode {
            Mode::Sequential(sim) => sim.stats(node),
            Mode::Sharded(s) => s.shards[s.shard_for(node)?].stats(node),
        }
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        match &self.mode {
            Mode::Sequential(sim) => sim.is_up(node),
            Mode::Sharded(s) => s
                .shard_for(node)
                .map(|i| s.shards[i].is_up(node))
                .unwrap_or(false),
        }
    }

    /// Downcasts a node to retrieve results (see [`Sim::node_as`]).
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.node_as(id),
            Mode::Sharded(s) => {
                let shard = s.shard_for(id)?;
                s.shards[shard].node_as(id)
            }
        }
    }

    /// Time of the next scheduled event, if any (see
    /// [`Sim::next_event_at`]). In sharded mode the mirror wheel holds
    /// exactly the global pending set, so this is the true global
    /// minimum.
    pub fn next_event_at(&self) -> Option<Instant> {
        match &self.mode {
            Mode::Sequential(sim) => sim.next_event_at(),
            Mode::Sharded(s) => s.mirror.min_key().map(|k| k.at),
        }
    }

    /// Mutable access to the link table. In sharded mode this edits the
    /// master copy; shards resync before the next run. Panics at that
    /// resync if the edit made the links sequence-sensitive (configure
    /// jitter/faults before construction so the engine can degrade to
    /// sequential execution instead).
    pub fn links_mut(&mut self) -> &mut Links {
        match &mut self.mode {
            Mode::Sequential(sim) => sim.links_mut(),
            Mode::Sharded(s) => {
                s.links_dirty = true;
                &mut s.links
            }
        }
    }
}

impl<M: Clone + Send + 'static> Sharded<M> {
    /// Owning shard of a registered node.
    fn shard_for(&self, node: NodeId) -> Option<usize> {
        match self.shard_of.get(node.raw() as usize) {
            Some(&s) if s != NO_SHARD => Some(s as usize),
            _ => None,
        }
    }

    /// Coordinator-side push (injections between runs): assigns the next
    /// global sequence and records the event in both the mirror and its
    /// owning shard's wheel — mirroring exactly what the sequential
    /// engine's own `push` would have assigned.
    fn push_global(&mut self, at: Instant, kind: EventKind<M>) {
        let target = kind.target();
        let dest = self
            .shard_of
            .get(target.raw() as usize)
            .copied()
            .unwrap_or(NO_SHARD);
        // Unregistered target: dispatch on shard 0, where it counts as
        // unroutable exactly once, like the sequential engine would.
        let dest = if dest == NO_SHARD { 0 } else { dest as usize };
        let key = SchedKey { at, seq: self.gseq };
        self.gseq += 1;
        self.mirror.push(key, dest as u32);
        self.shards[dest].push_keyed(key, kind);
    }

    /// Re-propagates a dirty master link table and refreshed shard maps.
    fn resync(&mut self) {
        if self.links_dirty {
            assert!(
                !self.links.sequence_sensitive(),
                "link table became sequence-sensitive (jitter or fault probabilities) \
                 after a sharded simulation was built; configure faults before \
                 constructing the ShardedSim so it can degrade to sequential execution"
            );
            for sim in &mut self.shards {
                *sim.links_mut() = self.links.clone();
            }
            self.links_dirty = false;
            self.lookahead = None;
        }
        if self.maps_dirty {
            for (i, sim) in self.shards.iter_mut().enumerate() {
                sim.set_window(i as u32, Arc::clone(&self.shard_of));
            }
            self.maps_dirty = false;
        }
    }

    /// Minimum latency over all directed cross-shard node pairs — the
    /// conservative lookahead. `None` when no cross-shard pair exists
    /// (only one shard is populated): windows are then bounded by the
    /// deadline alone. The O(N²) scan over registered nodes runs only
    /// when nodes or links changed; N is the cluster node count (tens),
    /// not the UE population.
    fn lookahead(&mut self) -> Option<Duration> {
        if let Some(cached) = self.lookahead {
            return cached;
        }
        let mut min: Option<Duration> = None;
        for (i, from_members) in self.members.iter().enumerate() {
            for (j, to_members) in self.members.iter().enumerate() {
                if i == j {
                    continue;
                }
                for &a in from_members {
                    for &b in to_members {
                        let lat = self.links.get(a, b).latency;
                        min = Some(min.map_or(lat, |m| m.min(lat)));
                    }
                }
            }
        }
        if let Some(l) = min {
            assert!(
                l != Duration::ZERO,
                "cross-shard links must have non-zero latency to derive a conservative \
                 window; co-locate zero-latency neighbors on one shard or run with \
                 shards = 1"
            );
        }
        self.lookahead = Some(min);
        min
    }

    fn run_until(&mut self, deadline: Instant) -> Instant {
        // The coordinator's only wall-clock read: one start sample per
        // call, observability-only, never feeds simulated state.
        // lint-allow(wall-clock): observability-only events/sec wall timer; never feeds simulated state
        let wall_start = std::time::Instant::now();
        let alloc_start = crate::alloc_count::current();
        self.resync();
        let lookahead = self.lookahead();
        let due = self.mirror.min_key().map(|k| k.at <= deadline).unwrap_or(false);
        if due {
            self.run_windows(deadline, lookahead);
        }
        self.wall += wall_start.elapsed();
        self.allocs += crate::alloc_count::current().wrapping_sub(alloc_start);
        self.now
    }

    /// The window loop: one scoped worker thread per shard, commands and
    /// results over channels, a barrier replay between windows.
    fn run_windows(&mut self, deadline: Instant, lookahead: Option<Duration>) {
        let Sharded {
            shards,
            mirror,
            gseq,
            now,
            events,
            config,
            ..
        } = self;
        let n = shards.len();
        let max_events = config.max_events;
        thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, Result<WindowOut<M>, Panic>)>();
            let mut cmd_txs = Vec::with_capacity(n);
            for (idx, sim) in shards.iter_mut().enumerate() {
                let (tx, rx) = mpsc::channel::<Cmd<M>>();
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || worker(idx, sim, rx, res_tx));
            }
            drop(res_tx);
            while let Some(first) = mirror.min_key() {
                if first.at > deadline {
                    break;
                }
                let bound = window_bound(first.at, lookahead, deadline);
                for tx in &cmd_txs {
                    tx.send(Cmd::Window(bound)).expect("shard worker alive");
                }
                let mut outs: Vec<Option<ShardLog<M>>> = (0..n).map(|_| None).collect();
                let mut failure: Option<(usize, Panic)> = None;
                for _ in 0..n {
                    let (idx, res) = res_rx.recv().expect("shard worker alive");
                    match res {
                        Ok(out) => outs[idx] = Some(ShardLog::new(out)),
                        Err(p) => {
                            // Keep the lowest shard index so a multi-shard
                            // failure surfaces deterministically.
                            if failure.as_ref().map(|(i, _)| idx < *i).unwrap_or(true) {
                                failure = Some((idx, p));
                            }
                        }
                    }
                }
                if let Some((_, payload)) = failure {
                    // Dropping the command channels lets surviving workers
                    // exit before the scope joins them during unwind.
                    drop(cmd_txs);
                    std::panic::resume_unwind(payload);
                }
                let mut outs: Vec<ShardLog<M>> = outs
                    .into_iter()
                    .map(|o| o.expect("every shard reported"))
                    .collect();

                // Barrier replay: reconstruct the global dispatch order
                // and assign the sequence numbers the sequential engine
                // would have handed out (module docs).
                let mut inbound: Vec<Vec<(SchedKey, EventKind<M>)>> =
                    (0..n).map(|_| Vec::new()).collect();
                while let Some(k) = mirror.peek_key() {
                    if k.at > bound {
                        break;
                    }
                    let (key, shard) = mirror.pop().expect("peeked");
                    *events += 1;
                    *now = key.at;
                    let log = &mut outs[shard as usize];
                    let rec = log
                        .dispatches
                        .next()
                        .expect("shard dispatched every due event");
                    debug_assert_eq!(rec.at, key.at, "dispatch log out of step");
                    for _ in 0..rec.pushes {
                        let p = log.pushes.next().expect("push log out of step");
                        let pkey = SchedKey {
                            at: p.at(),
                            seq: *gseq,
                        };
                        *gseq += 1;
                        match p {
                            PushRec::Local { .. } => mirror.push(pkey, shard),
                            PushRec::Deferred { .. } => {
                                let (at, kind) = log.deferred.next().expect("deferred body");
                                debug_assert_eq!(at, pkey.at);
                                mirror.push(pkey, shard);
                                inbound[shard as usize].push((pkey, kind));
                            }
                            PushRec::Export { dest, .. } => {
                                let (d, at, kind) = log.exports.next().expect("export body");
                                debug_assert_eq!(d, dest);
                                debug_assert_eq!(at, pkey.at);
                                debug_assert!(
                                    at > bound,
                                    "conservative lookahead violated: cross-shard event \
                                     lands inside its own window"
                                );
                                mirror.push(pkey, dest);
                                inbound[dest as usize].push((pkey, kind));
                            }
                        }
                    }
                }
                for log in &mut outs {
                    debug_assert!(
                        log.dispatches.next().is_none()
                            && log.pushes.next().is_none()
                            && log.deferred.next().is_none()
                            && log.exports.next().is_none(),
                        "window log not fully consumed"
                    );
                }
                // Shards check the budget per event against their local
                // count (catching one shard in a feedback loop); the sum
                // is checked here so the combined run can't exceed it.
                if *events > max_events {
                    panic!(
                        "event budget of {max_events} exhausted at virtual time {:.3}ms \
                         summed across {n} shards — runaway feedback loop, or raise \
                         SimConfig::max_events",
                        now.as_millis_f64(),
                    );
                }
                for (idx, batch) in inbound.into_iter().enumerate() {
                    if !batch.is_empty() {
                        cmd_txs[idx]
                            .send(Cmd::Finalize(batch))
                            .expect("shard worker alive");
                    }
                }
            }
            // Closing the command channels ends the worker loops; the
            // scope joins them (any pending Finalize drains first).
            drop(cmd_txs);
        });
    }
}

/// Inclusive window bound: `min(deadline, t0 + L − 1 ns)`, saturating.
fn window_bound(t0: Instant, lookahead: Option<Duration>, deadline: Instant) -> Instant {
    let horizon = match lookahead {
        None => Instant::FAR_FUTURE,
        Some(l) => Instant::from_nanos(
            t0.as_nanos()
                .saturating_add(l.as_nanos())
                .saturating_sub(1),
        ),
    };
    horizon.min(deadline)
}

/// A shard worker: runs windows and admits merged events on command.
/// Panics inside a window (event budget, node handler bugs) are caught
/// and shipped to the coordinator so sibling shards shut down cleanly
/// instead of deadlocking the barrier.
fn worker<M: Clone + 'static>(
    idx: usize,
    sim: &mut Sim<M>,
    rx: mpsc::Receiver<Cmd<M>>,
    res_tx: mpsc::Sender<(usize, Result<WindowOut<M>, Panic>)>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Window(bound) => {
                let res =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_window(bound)));
                let dead = res.is_err();
                if res_tx.send((idx, res)).is_err() || dead {
                    break;
                }
            }
            Cmd::Finalize(batch) => {
                for (key, kind) in batch {
                    sim.push_keyed(key, kind);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{NodeEvent, Outbox};
    use crate::links::{FaultSpec, LinkSpec};
    use std::any::Any;

    /// Forwards every message to a fixed peer after a service time,
    /// recording `(msg, at)` in arrival order.
    struct Relay {
        peer: NodeId,
        service: Duration,
        seen: Vec<(u64, Instant)>,
        hops_left: u64,
    }

    impl Node<u64> for Relay {
        fn service_time(&self, _msg: &u64) -> Duration {
            self.service
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            if let NodeEvent::Message { msg, .. } = event {
                self.seen.push((msg, out.now()));
                if self.hops_left > 0 {
                    self.hops_left -= 1;
                    out.send(self.peer, msg + 1);
                }
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cross_shard_links() -> Links {
        // 500µs everywhere: every hop crosses the window bound.
        Links::with_default(LinkSpec::fixed(Duration::from_micros(500)))
    }

    /// Two relays ping-ponging across shards must see the same messages
    /// at the same times as the sequential engine.
    #[test]
    fn two_shard_ping_pong_matches_sequential() {
        let build = |shards: usize| {
            let mut sim = ShardedSim::new(cross_shard_links(), shards);
            let a = NodeId::new(1);
            let b = NodeId::new(1000);
            sim.add_node(
                a,
                Box::new(Relay {
                    peer: b,
                    service: Duration::from_micros(3),
                    seen: Vec::new(),
                    hops_left: 20,
                }),
                0,
            );
            sim.add_node(
                b,
                Box::new(Relay {
                    peer: a,
                    service: Duration::from_micros(7),
                    seen: Vec::new(),
                    hops_left: 20,
                }),
                shards.saturating_sub(1),
            );
            sim.inject_at(Instant::ZERO, a, 0);
            sim.run_to_completion();
            let seen_a = sim.node_as::<Relay>(a).unwrap().seen.clone();
            let seen_b = sim.node_as::<Relay>(b).unwrap().seen.clone();
            (seen_a, seen_b, sim.now(), sim.events_processed())
        };
        let sequential = build(1);
        let sharded = build(2);
        assert_eq!(sequential, sharded);
    }

    /// A sequence-sensitive link table (fault probabilities) must degrade
    /// to sequential execution.
    #[test]
    fn faulty_links_degrade_to_sequential() {
        let mut links = cross_shard_links();
        links.set_fault_default(FaultSpec {
            loss: 0.1,
            ..FaultSpec::NONE
        });
        let sim: ShardedSim<u64> = ShardedSim::new(links, 4);
        assert!(!sim.is_sharded());
        assert_eq!(sim.shard_count(), 1);
        // Jitter-free, fault-free links shard for real.
        let sim: ShardedSim<u64> = ShardedSim::new(cross_shard_links(), 4);
        assert!(sim.is_sharded());
        assert_eq!(sim.shard_count(), 4);
    }

    /// Zero-latency cross-shard links cannot derive a window; the run
    /// must refuse loudly rather than diverge.
    #[test]
    #[should_panic(expected = "non-zero latency")]
    fn zero_lookahead_panics_with_guidance() {
        let mut sim = ShardedSim::new(Links::with_default(LinkSpec::fixed(Duration::ZERO)), 2);
        for (i, shard) in [(1u64, 0usize), (2, 1)] {
            sim.add_node(
                NodeId::new(i),
                Box::new(Relay {
                    peer: NodeId::new(3 - i),
                    service: Duration::ZERO,
                    seen: Vec::new(),
                    hops_left: 1,
                }),
                shard,
            );
        }
        sim.inject_at(Instant::ZERO, NodeId::new(1), 0);
        sim.run_to_completion();
    }

    /// Crash/recover injected through the coordinator must land on the
    /// owning shard and replay like the sequential engine.
    #[test]
    fn crash_recover_across_shards_matches_sequential() {
        let run = |shards: usize| {
            let mut sim = ShardedSim::new(cross_shard_links(), shards);
            let a = NodeId::new(1);
            let b = NodeId::new(1000);
            sim.add_node(
                a,
                Box::new(Relay {
                    peer: b,
                    service: Duration::from_micros(5),
                    seen: Vec::new(),
                    hops_left: 50,
                }),
                0,
            );
            sim.add_node(
                b,
                Box::new(Relay {
                    peer: a,
                    service: Duration::from_micros(5),
                    seen: Vec::new(),
                    hops_left: 50,
                }),
                shards.saturating_sub(1),
            );
            sim.inject_at(Instant::ZERO, a, 0);
            // Kill b mid-conversation, then bring it back.
            sim.crash_at(Instant::from_micros(1_800), b);
            sim.recover_at(Instant::from_micros(2_600), b);
            sim.run_to_completion();
            let st = sim.sim_stats();
            (
                sim.node_as::<Relay>(a).unwrap().seen.clone(),
                sim.now(),
                st.events_processed,
                st.dropped_unroutable,
            )
        };
        assert_eq!(run(1), run(2));
    }

    /// The sharded run must pause exactly at a deadline and resume — the
    /// check harness drives the engine in segments.
    #[test]
    fn segmented_runs_match_one_shot() {
        let build = |shards: usize| {
            let mut sim = ShardedSim::new(cross_shard_links(), shards);
            let a = NodeId::new(1);
            let b = NodeId::new(1000);
            sim.add_node(
                a,
                Box::new(Relay {
                    peer: b,
                    service: Duration::from_micros(3),
                    seen: Vec::new(),
                    hops_left: 30,
                }),
                0,
            );
            sim.add_node(
                b,
                Box::new(Relay {
                    peer: a,
                    service: Duration::from_micros(3),
                    seen: Vec::new(),
                    hops_left: 30,
                }),
                shards.saturating_sub(1),
            );
            sim.inject_at(Instant::ZERO, a, 0);
            sim
        };
        let mut one_shot = build(2);
        one_shot.run_to_completion();
        let mut segmented = build(2);
        let mut t = Instant::from_micros(700);
        loop {
            segmented.run_until(t);
            let Some(next) = segmented.next_event_at() else { break };
            t = next.max(t + Duration::from_micros(700));
        }
        segmented.run_to_completion();
        assert_eq!(
            one_shot.node_as::<Relay>(NodeId::new(1)).unwrap().seen,
            segmented.node_as::<Relay>(NodeId::new(1)).unwrap().seen,
        );
        assert_eq!(one_shot.events_processed(), segmented.events_processed());
    }
}
